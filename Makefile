# Developer entry points.  The python toolchain is assumed present; every
# target runs against the in-tree sources via PYTHONPATH=src.

PY := PYTHONPATH=src python

.PHONY: test test-prop bench serve-demo obs-demo docs-check

## Tier-1 verification: the full test suite in benchmark smoke mode.
test:
	$(PY) -m pytest -x -q

## Property suites only (hypothesis), pinned to a fixed seed so a red
## run reproduces exactly; the serve/fleet invariants additionally set
## derandomize=True and are deterministic under plain tier-1 too.
test-prop:
	$(PY) -m pytest tests/property -q --hypothesis-seed=0

## Measure the micro-benchmarks, refresh BENCH_micro.json and append a
## dated entry to BENCH_history.jsonl (the cross-PR perf trajectory).
bench:
	$(PY) benchmarks/record_bench.py

## Online-serving demo: 600 s Poisson trace through the three replan
## policies, with evaluation-cache persistence between runs.
serve-demo:
	$(PY) examples/serve_trace.py

## Telemetry demo: one observed trace, recorder on/off report identity,
## JSONL export summarized through tools/trace_summary.py.
obs-demo:
	$(PY) examples/observe_serve.py

## Validate every intra-repo link in README.md, ROADMAP.md and docs/*.md
## (tests/test_docs.py runs the same check under tier-1).
docs-check:
	python tools/check_links.py
