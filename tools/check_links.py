#!/usr/bin/env python
"""Validate that intra-repo markdown links resolve to real files.

Scans ``README.md``, ``ROADMAP.md`` and every ``docs/*.md`` for inline
markdown links, skips external schemes (http/https/mailto) and pure
anchors, resolves the rest relative to the containing file, and reports
every target that does not exist.  Exit status 1 on any broken link, so
``make docs-check`` can gate on it; ``tests/test_docs.py`` runs the same
check under tier-1.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown link: [text](target) — target up to the first ')' or
#: whitespace (titles like `(x "y")` keep only the path part).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)")

#: Link targets that never resolve to a repo file.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root: Path) -> list[Path]:
    """The markdown set the repo's docs subsystem guarantees link-clean."""
    files = [root / "README.md", root / "ROADMAP.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [f for f in files if f.is_file()]


def check_links(root: Path) -> list[str]:
    """Return one error string per broken intra-repo link under ``root``."""
    errors: list[str] = []
    for source in markdown_files(root):
        for target in LINK_RE.findall(source.read_text()):
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:          # pure in-page anchor
                continue
            resolved = (source.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{source.relative_to(root)}: broken link -> {target}")
    return errors


def main() -> int:
    """CLI entry point: print broken links, exit 1 when any exist."""
    root = Path(__file__).resolve().parents[1]
    files = markdown_files(root)
    errors = check_links(root)
    for error in errors:
        print(error)
    print(f"docs-check: {len(files)} markdown files, "
          f"{len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
