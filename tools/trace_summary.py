#!/usr/bin/env python
"""Summarize a ``repro.obs`` JSONL trace on the terminal.

Reads a trace written by :func:`repro.obs.write_trace` and prints three
views of the run:

* the **counter table** — every counter, grouped by metric, labels
  indented under their totals;
* the **admission funnel** — per-tier verdict counts parsed from the
  ``serve.admission.verdict`` counter's ``"<tier>/<verdict>"`` labels,
  with an admit rate per tier;
* the **slowest decisions** — the top-N retained spans by modeled
  decision seconds, with their simulated timestamps and attributes.

Usage:
    PYTHONPATH=src python tools/trace_summary.py trace.jsonl [--top N]

Runs from a plain checkout too: when ``repro`` is not importable the
script retries with the repo's ``src/`` on ``sys.path``.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from pathlib import Path

try:
    from repro.obs import TelemetrySnapshot, read_trace
except ImportError:  # plain checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs import TelemetrySnapshot, read_trace

from repro.obs.registry import ADMISSION_VERDICT


def format_counters(snapshot: TelemetrySnapshot) -> list[str]:
    """The counter table: metric totals with labeled rows indented."""
    by_name: dict[str, list[tuple[str, float]]] = defaultdict(list)
    for name, label, value in snapshot.counters:
        by_name[name].append((label, value))
    lines = ["counters:"]
    if not by_name:
        return lines + ["  (none)"]
    width = max(len(name) for name in by_name) + 2
    for name in sorted(by_name):
        rows = by_name[name]
        total = sum(v for _, v in rows)
        lines.append(f"  {name:<{width}}{total:>12g}")
        if len(rows) > 1 or rows[0][0]:
            for label, value in sorted(rows):
                lines.append(f"    {label or '(unlabeled)':<{width}}"
                             f"{value:>10g}")
    return lines


def admission_funnel(snapshot: TelemetrySnapshot) -> list[str]:
    """Per-tier verdict counts from the admission-verdict counter labels."""
    funnel: dict[str, dict[str, float]] = defaultdict(dict)
    for name, label, value in snapshot.counters:
        if name != ADMISSION_VERDICT or "/" not in label:
            continue
        tier, verdict = label.split("/", 1)
        funnel[tier][verdict] = funnel[tier].get(verdict, 0.0) + value
    lines = ["admission funnel (per tier):"]
    if not funnel:
        return lines + ["  (no admission activity recorded)"]
    for tier in sorted(funnel):
        verdicts = funnel[tier]
        total = sum(verdicts.values())
        # A "preempt" verdict is an admission too (the arrival displaces
        # a lower-tier resident), so it counts toward the admit rate.
        admitted = verdicts.get("admit", 0.0) + verdicts.get("preempt", 0.0)
        parts = "  ".join(f"{verdict}={verdicts[verdict]:g}"
                          for verdict in sorted(verdicts))
        rate = admitted / total if total else 0.0
        lines.append(f"  {tier:<10} arrivals={total:g}  {parts}  "
                     f"(admit rate {rate:.0%})")
    return lines


def slowest_spans(snapshot: TelemetrySnapshot, top: int) -> list[str]:
    """The ``top`` slowest retained spans, slowest first."""
    lines = [f"slowest decisions (top {top} of {len(snapshot.spans)} "
             "retained spans):"]
    spans = sorted(snapshot.spans,
                   key=lambda s: (-s.duration_s, s.t_s, s.name))[:top]
    if not spans:
        return lines + ["  (no spans recorded)"]
    for span in spans:
        attrs = " ".join(f"{k}={v}" for k, v in span.attrs)
        lines.append(f"  t={span.t_s:>10.3f}s  {span.duration_s:>8.4f}s  "
                     f"{span.name}  {attrs}")
    return lines


def summarize(snapshot: TelemetrySnapshot, top: int = 10) -> str:
    """The full report for one snapshot, as a printable string."""
    header = [f"trace from {snapshot.where or '(unnamed)'}"]
    sections = [format_counters(snapshot), admission_funnel(snapshot),
                slowest_spans(snapshot, top)]
    return "\n".join(header + [line for section in sections
                               for line in [""] + section])


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        description="Summarize a repro.obs JSONL telemetry trace.")
    parser.add_argument("trace", type=Path,
                        help="path to a write_trace() JSONL file")
    parser.add_argument("--top", type=int, default=10,
                        help="how many slowest spans to show (default 10)")
    args = parser.parse_args(argv)
    try:
        snapshot = read_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(summarize(snapshot, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
