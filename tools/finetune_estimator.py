#!/usr/bin/env python
"""Fine-tune an estimator artifact offline from recorded JSONL traces.

The command-line face of the closed loop: traces written by
:func:`repro.obs.write_trace` (e.g. through ``DynamicResult.telemetry``
dumps or :mod:`tools.trace_summary`'s inputs) carry the realized
``(workload, mapping, rates)`` segments a served run actually produced.
This tool folds them through a :class:`repro.estimator.FinetuneBuffer`
(deduplicated, order-independent) and warm-starts the newest generation
of the named artifact family, writing the next ``.gen<N>`` sibling with
full lineage (:func:`repro.estimator.refresh_artifact`).

Usage:
    PYTHONPATH=src python tools/finetune_estimator.py \\
        results/estimator_fast_orange_pi_5.pkl trace1.jsonl trace2.jsonl \\
        [--platform orange_pi_5] [--epochs 4] [--lr 2e-4] [--seed 0]

The refreshed generation is picked up automatically by any scenario
whose ``estimator_path`` names the family base
(:func:`repro.runner.resolve_predictor` prefers the newest compatible
generation).  Runs from a plain checkout too: when ``repro`` is not
importable the script retries with the repo's ``src/`` on ``sys.path``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    from repro.estimator import FinetuneBuffer, FinetuneConfig, refresh_artifact
except ImportError:  # plain checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.estimator import FinetuneBuffer, FinetuneConfig, refresh_artifact

from repro.estimator import latest_artifact_generation, load_estimator_artifact
from repro.obs import export_segments, read_trace
from repro.runner import PLATFORM_SPECS


def collect_rows(traces: list[Path], max_rows: int) -> FinetuneBuffer:
    """Ingest every trace's segments into one deduplicating buffer."""
    buffer = FinetuneBuffer(max_rows=max_rows)
    for trace in traces:
        snapshot = read_trace(trace)
        fresh = buffer.ingest(export_segments(snapshot))
        print(f"  {trace}: {len(snapshot.segments)} segments "
              f"({fresh} new)")
    return buffer


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        description="Fine-tune an estimator artifact from JSONL traces.")
    parser.add_argument("artifact", type=Path,
                        help="estimator artifact family base path "
                             "(the file estimator scenarios name)")
    parser.add_argument("traces", type=Path, nargs="+",
                        help="write_trace() JSONL files with segments")
    parser.add_argument("--platform", default="orange_pi_5",
                        choices=sorted(PLATFORM_SPECS),
                        help="platform preset the artifact was trained "
                             "for (default orange_pi_5)")
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=16)
    parser.add_argument("--lr", type=float, default=2e-4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-rows", type=int, default=4096,
                        help="fine-tune buffer bound (default 4096)")
    args = parser.parse_args(argv)

    config = FinetuneConfig(epochs=args.epochs, batch_size=args.batch_size,
                            lr=args.lr, seed=args.seed)
    try:
        buffer = collect_rows(args.traces, args.max_rows)
        rows = buffer.rows()
        if not rows:
            print("error: no segments found in the given traces — was "
                  "the run recorded with telemetry (observe=True)?",
                  file=sys.stderr)
            return 1
        out_path, report = refresh_artifact(
            args.artifact, rows, PLATFORM_SPECS[args.platform](),
            config=config)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    artifact = load_estimator_artifact(
        out_path, PLATFORM_SPECS[args.platform]())
    lineage = artifact.lineage
    print(f"fine-tuned on {report.rows} unique segments "
          f"({buffer.dropped} evicted), {report.steps} steps")
    if report.train_loss:
        print(f"  loss {report.train_loss[0]:.4f} -> "
              f"{report.train_loss[-1]:.4f}")
    print(f"wrote {out_path} (generation "
          f"{latest_artifact_generation(args.artifact)}, epoch "
          f"{lineage.finetune_epoch}, parent {lineage.parent_hash[:12]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
