#!/usr/bin/env python
"""Quickstart: map a 3-DNN workload with RankMap and inspect the result.

Uses the simulator-oracle predictor so it runs in seconds without training
the estimator; see ``train_estimator.py`` for the full learned pipeline.
"""

import numpy as np

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import COMPONENT_NAMES, orange_pi_5
from repro.mapping import gpu_only_mapping
from repro.search import MCTSConfig
from repro.sim import simulate
from repro.zoo import get_model


def main() -> None:
    # 1. The platform: a calibrated Orange Pi 5 model (Mali-G610 GPU +
    #    big.LITTLE CPU clusters).
    platform = orange_pi_5()

    # 2. A multi-DNN workload: three concurrent vision models.
    workload = [get_model(n)
                for n in ("squeezenet_v2", "resnet50", "inception_v4")]
    print("Workload:")
    for model in workload:
        print(f"  {model.name:15s} {model.num_blocks:3d} blocks, "
              f"{model.macs / 1e9:5.2f} GMACs, "
              f"ideal {platform.ideal_throughput(model):5.1f} inf/s")

    # 3. The paper's baseline: everything on the GPU.
    base = simulate(workload, gpu_only_mapping(workload), platform)
    print(f"\nBaseline (all on GPU): T={base.average_throughput:.2f} inf/s, "
          f"P={np.round(base.potentials, 3)}")

    # 4. RankMap in dynamic mode (priorities follow computational demand).
    manager = RankMap(
        platform,
        OraclePredictor(platform),
        RankMapConfig(mode="dynamic",
                      mcts=MCTSConfig(iterations=80, rollouts_per_leaf=4)),
    )
    decision = manager.plan(workload)

    # 5. Inspect the mapping: pipeline stages per DNN.
    print("\nRankMap_D mapping:")
    for model, assignment in zip(workload, decision.mapping.assignments):
        pretty = " ".join(COMPONENT_NAMES[c][0].upper() for c in assignment)
        print(f"  {model.name:15s} [{pretty}]")

    result = simulate(workload, decision.mapping, platform)
    print(f"\nRankMap_D: T={result.average_throughput:.2f} inf/s "
          f"({result.average_throughput / base.average_throughput:.1f}x "
          f"baseline), P={np.round(result.potentials, 3)}")
    print(f"Starved DNNs: {(result.potentials < 0.02).sum()} "
          f"(threshold guard active)")
    print(f"Modeled on-device decision time: "
          f"{decision.decision_seconds:.0f} s")


if __name__ == "__main__":
    main()
