#!/usr/bin/env python
"""Fleet-scale scenario sweep: many mixes x managers across all cores.

Builds a declarative scenario fleet (every manager plans every sampled mix
on the Orange Pi 5 model), fans it over a process pool with
``repro.runner.ScenarioRunner``, and prints the per-manager aggregate
table.  The result list is deterministic for any worker count — each
scenario carries its own seed and workers rebuild managers from scratch.

Scale knobs:  ``python fleet_sweep.py [mixes_per_size] [workers]``
"""

from __future__ import annotations

import sys
import time

from repro.runner import ScenarioRunner, mix_scenarios, summarise


def main() -> None:
    mixes_per_size = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None

    scenarios = mix_scenarios(
        managers=("baseline", "mosaic", "odmdef", "ga", "rankmap_d"),
        sizes=(3, 4, 5),
        mixes_per_size=mixes_per_size,
        search_iterations=40,
        search_rollouts=2,
    )
    print(f"Fleet: {len(scenarios)} scenarios "
          f"({mixes_per_size} mixes x 3 sizes x 5 managers)")

    t0 = time.perf_counter()
    results = ScenarioRunner(max_workers=workers).run(scenarios)
    wall = time.perf_counter() - t0
    print(f"Completed in {wall:.1f} s "
          f"({len(results) / wall:.1f} scenarios/s)\n")

    header = (f"{'manager':>10s} {'runs':>5s} {'mean T':>8s} "
              f"{'min P':>7s} {'decision s':>11s}")
    print(header)
    print("-" * len(header))
    for row in summarise(results):
        print(f"{row['manager']:>10s} {row['scenarios']:>5d} "
              f"{row['mean_throughput']:>8.2f} "
              f"{row['mean_min_potential']:>7.3f} "
              f"{row['mean_decision_seconds']:>11.1f}")

    cached = [r for r in results if r.cache_hit_rate > 0]
    if cached:
        mean_hit = sum(r.cache_hit_rate for r in cached) / len(cached)
        print(f"\nOracle-cache hit rate (search managers): {mean_hit:.1%}")


if __name__ == "__main__":
    main()
