#!/usr/bin/env python
"""Estimator-backed serving: the paper's learned decision path, online.

Every other serving example drives the replan policies off the oracle
predictor — each candidate mapping costs a full on-board measurement
window (2 s modeled), which is what makes full replans open multi-second
re-mapping gaps.  This A/B runs the *same* sampled Poisson traces twice
through ``ExperimentContext.serve_sweep``:

* ``predictor="oracle"``    — candidates measured on the simulated board;
* ``predictor="estimator"`` — candidates scored by the trained multi-task
  estimator at the paper's 0.04 s/eval decision latency, loaded by every
  worker from one artifact the context trains exactly once
  (``ExperimentContext.estimator_artifact_path``).

The table compares modeled per-decision latency and the re-mapping gap
time it turns into; the estimator column should sit ~50x below the
oracle on full replans.  A final check re-runs the estimator sweep on one
worker and asserts the reports are bit-identical to the pooled run — the
learned path keeps the runner's determinism contract.

Usage:  python estimator_serve.py [horizon_s] [workers]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import ExperimentContext
from repro.runner import ScenarioRunner, dynamic_sweep_scenarios

LIGHT_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet",
              "resnet12", "mobilenet")
POLICIES = ("full", "warm")


def main() -> None:
    horizon = float(sys.argv[1]) if len(sys.argv) > 1 else 300.0
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None

    # The tiny preset keeps the one-off training run to seconds; the
    # artifact persists under results_dir, so repeat runs skip it.
    ctx = ExperimentContext(
        preset="tiny",
        results_dir=Path(tempfile.gettempdir()) / "repro_estimator_demo")
    t0 = time.perf_counter()
    artifact_path = ctx.estimator_artifact_path()
    print(f"estimator artifact: {artifact_path} "
          f"(ready in {time.perf_counter() - t0:.1f} s; trained once, "
          f"fanned out by path)")

    rows = {}
    for predictor in ("oracle", "estimator"):
        t0 = time.perf_counter()
        results, summary = ctx.serve_sweep(
            policies=POLICIES, managers=("rankmap_d",), traces_per_cell=1,
            horizon_s=horizon, arrival_rate_per_s=1 / 30.0,
            pool=LIGHT_POOL, max_workers=workers, predictor=predictor,
            estimator_path=(artifact_path if predictor == "estimator"
                            else None))
        wall = time.perf_counter() - t0
        print(f"[{predictor}] {len(results)} scenarios served in "
              f"{wall:.1f} s")
        for row in summary:
            rows[(predictor, row["policy"])] = row

    header = (f"{'policy':>6s} {'predictor':>10s} {'decision s':>11s} "
              f"{'gap s':>8s} {'violation':>10s} {'session rate':>13s}")
    print()
    print(header)
    print("-" * len(header))
    for policy in POLICIES:
        for predictor in ("oracle", "estimator"):
            row = rows[(predictor, policy)]
            print(f"{policy:>6s} {predictor:>10s} "
                  f"{row['mean_decision_seconds']:>11.3f} "
                  f"{row['mean_gap_seconds']:>8.1f} "
                  f"{row['mean_violation_fraction']:>10.1%} "
                  f"{row['mean_session_rate']:>13.2f}")
        oracle = rows[("oracle", policy)]["mean_decision_seconds"]
        learned = rows[("estimator", policy)]["mean_decision_seconds"]
        if learned > 0:
            print(f"{'':>6s} {'':>10s} {oracle / learned:>10.0f}x lower "
                  "modeled decision latency on the learned path")

    # Determinism: the estimator-backed sweep is bit-identical for any
    # worker count (workers rebuild the predictor from the artifact).
    specs = dynamic_sweep_scenarios(
        policies=POLICIES, managers=("rankmap_d",), traces_per_cell=1,
        seed=ctx.preset.seed, horizon_s=horizon,
        arrival_rate_per_s=1 / 30.0, pool=LIGHT_POOL,
        search_iterations=ctx.preset.mcts_iterations,
        search_rollouts=ctx.preset.mcts_rollouts,
        predictor="estimator", estimator_path=str(artifact_path))
    serial = ScenarioRunner(max_workers=1).run_dynamic(specs)
    pooled = ScenarioRunner(max_workers=2).run_dynamic(specs)
    identical = [r.report for r in serial] == [r.report for r in pooled]
    print(f"\n1-vs-2-worker estimator reports bit-identical: {identical}")
    if not identical:
        raise SystemExit("determinism regression on the estimator path")


if __name__ == "__main__":
    main()
