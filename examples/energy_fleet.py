#!/usr/bin/env python
"""Energy-budgeted fleet serving through a brownout, A/B against cap-blind.

A 4-node heterogeneous fleet (two Orange Pi 5 class nodes, two
Jetson-class nodes) serves one shared Poisson demand under a fleet-wide
power budget.  Halfway through the run the budget collapses — a
**brownout** (``FleetScenario.power_cap_shift``) — and the same trace is
dispatched twice:

* **enforced** — ``least_joules`` routing with the power governor live:
  nodes renegotiate their DVFS ladders (dynamic watts fall with the cube
  of the clock, service speed linearly) and bronze arrivals are shed when
  even ladder-floor throttling could not fit them under the cap.
* **cap-blind** — the identical scenario with ``power_enforce=False``:
  the ledger still accounts every watt-second over the cap, but nothing
  throttles and nothing sheds.  This is what the fleet *would have*
  drawn.

The punchline is the violation ledger, split at the brownout instant
with ``FleetPowerReport.over_cap_ws_between``: after the cap drops, the
enforced fleet renegotiates to ~0 over-cap watt-seconds while the blind
fleet keeps violating for the rest of the trace.  Both runs are
deterministic and bit-identical for any worker count — the governor
lives entirely in dispatch phase 1.

Usage:  python energy_fleet.py [horizon_s] [workers]
"""

from __future__ import annotations

import sys
import time

from repro.runner import DynamicScenario, FleetScenario, ScenarioRunner

LIGHT_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet",
              "resnet12", "mobilenet")

NUM_NODES = 4
CAP_W = 70.0          # generous pre-brownout budget
BROWNOUT_W = 28.0     # post-shift budget: needs deep DVFS throttling


def build_fleet(horizon: float, enforce: bool) -> FleetScenario:
    nodes = tuple(
        DynamicScenario(
            name=f"node{i}",
            manager="rankmap_d",
            platform=("jetson_class" if i >= 2 else "orange_pi_5"),
            policy="warm",
            seed=i,
            pool=LIGHT_POOL,
            capacity=(3 if i >= 2 else 2),
            search_iterations=10,
            search_rollouts=2,
        )
        for i in range(NUM_NODES))
    return FleetScenario(
        name=("enforced" if enforce else "cap_blind"),
        nodes=nodes,
        routing="least_joules",
        seed=7,
        horizon_s=horizon,
        arrival_rate_per_s=1 / 8.0,
        mean_session_s=120.0,
        power_cap_w=CAP_W,
        power_cap_shift=(horizon / 2, BROWNOUT_W),
        power_shed_tiers=("bronze",),
        power_enforce=enforce,
    )


def main() -> None:
    horizon = float(sys.argv[1]) if len(sys.argv) > 1 else 480.0
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None
    shift_at = horizon / 2

    fleets = [build_fleet(horizon, enforce=True),
              build_fleet(horizon, enforce=False)]
    print(f"fleet: {NUM_NODES} heterogeneous nodes under a {CAP_W:.0f} W "
          f"budget;\nbrownout at {shift_at:.0f} s drops the cap to "
          f"{BROWNOUT_W:.0f} W for the rest of the {horizon:.0f} s trace\n")

    t0 = time.perf_counter()
    results = ScenarioRunner(max_workers=workers).run_fleet(fleets)
    wall = time.perf_counter() - t0

    for result in results:
        print(f"--- {result.name} ---")
        print(result.report.summary())
        print()

    enforced = results[0].report.power
    blind = results[1].report.power

    header = (f"{'run':>10s} {'mean W':>7s} {'overWs pre':>11s} "
              f"{'overWs post':>12s} {'dvfs':>5s} {'shed':>5s}")
    print(header)
    print("-" * len(header))
    for label, ledger in (("enforced", enforced), ("cap_blind", blind)):
        pre = ledger.over_cap_ws_between(0.0, shift_at)
        post = ledger.over_cap_ws_between(shift_at, horizon)
        print(f"{label:>10s} {ledger.mean_watts:>7.2f} {pre:>11.1f} "
              f"{post:>12.1f} {len(ledger.dvfs_transitions):>5d} "
              f"{ledger.shed:>5d}")

    print("\nDVFS renegotiation timeline (enforced run):")
    for t, node, level in enforced.dvfs_transitions[:12]:
        print(f"  t={t:7.1f} s  {enforced.node_names[node]} -> level {level}")
    if len(enforced.dvfs_transitions) > 12:
        print(f"  ... {len(enforced.dvfs_transitions) - 12} more")

    saved = blind.fleet_over_cap_ws - enforced.fleet_over_cap_ws
    print(f"\nenforcement avoided {saved:.0f} Ws of cap violation "
          f"({blind.fleet_over_cap_ws:.0f} -> "
          f"{enforced.fleet_over_cap_ws:.0f})")
    print(f"completed in {wall:.1f} s "
          f"({len(results)} fleets x {NUM_NODES} nodes across the pool)")


if __name__ == "__main__":
    main()
