#!/usr/bin/env python
"""Dynamic arrivals: RankMap_D vs OmniBoost under oversubscription (Fig. 8).

Four DNNs arrive 150 s apart.  OmniBoost chases average throughput and,
once the platform saturates, starves the heavy models; RankMap_D's
threshold guard keeps everyone progressing at a small cost in raw T.
"""

import numpy as np

from repro.baselines import OmniBoost
from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.search import MCTSConfig
from repro.sim import MappingDecision, arrival, run_dynamic_scenario
from repro.zoo import get_model

ARRIVALS = (
    (0.0, "inception_resnet_v1"),   # heavy:    ~4 inf/s ideal on the paper's board
    (150.0, "alexnet"),             # standard: ~43 inf/s
    (300.0, "squeezenet"),          # light:    ~67 inf/s
    (450.0, "resnet50"),            # heavy:    ~20 inf/s
)
HORIZON = 600.0


def run_manager(name, manager, platform) -> None:
    events = [arrival(t, get_model(n)) for t, n in ARRIVALS]

    def planner(workload, priorities):
        decision = manager.plan(workload, priorities)
        # The oracle predictor models a full on-board measurement per
        # candidate; deployed, both managers score candidates with the
        # estimator and decide in ~30 s (Sec. V-D).  Use the deployed
        # latency so the arrival-time gaps match the paper's.
        return MappingDecision(decision.mapping, decision_seconds=30.0)

    timeline = run_dynamic_scenario(events, planner, platform, HORIZON)

    print(f"--- {name} ---")
    times = np.arange(0.0, HORIZON, 75.0)
    print("t(s)    " + "".join(f"{n[:14]:>16s}" for _, n in ARRIVALS))
    for t in times:
        row = [f"{t:6.0f} "]
        for _, dnn in ARRIVALS:
            p = timeline.potential_at(dnn, float(t))
            row.append("          --    " if p is None else f"{p:16.3f}")
        print("".join(row))
    starved = [dnn for _, dnn in ARRIVALS
               if (timeline.final_potentials().get(dnn, 1.0)) < 0.02]
    print(f"time-avg T = {timeline.time_average_throughput():.2f} inf/s; "
          f"starved at end: {starved or 'none'}\n")


def main() -> None:
    platform = orange_pi_5()
    oracle = OraclePredictor(platform)
    mcts = MCTSConfig(iterations=60, rollouts_per_leaf=4)
    run_manager("RankMap_D", RankMap(platform, oracle,
                                     RankMapConfig(mode="dynamic", mcts=mcts)),
                platform)
    run_manager("OmniBoost", OmniBoost(platform, oracle, mcts), platform)


if __name__ == "__main__":
    main()
