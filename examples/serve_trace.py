#!/usr/bin/env python
"""Online serving of a stochastic edge-data-center trace.

Samples a 600 s Poisson session trace (the raw, uncapped demand), then
serves it three times through the ``repro.serve`` loop with the same
RankMap manager but different replanning policies:

* ``full``  — re-search from scratch on every arrival/departure/shift;
* ``warm``  — extend the incumbent mapping, falling back to a short
  search only when no extension clears the starvation floors;
* ``cache`` — memoise plans by canonical workload on top of full replan.

The report shows what the policies trade: decision latency (and with it
re-mapping gap time) versus mapping quality.  The SLA-tier-aware
admission controller queues gold/silver arrivals the blind
``max_concurrent`` cap would have dropped.

The evaluation cache is persisted to disk after the first run and loaded
by the later ones — the serving analogue of a pre-warmed node — so runs
two and three report a non-zero hit rate before their first replan.

Usage:  python serve_trace.py [horizon_s] [seed]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.search import MCTSConfig
from repro.serve import (
    AdmissionConfig,
    ServeConfig,
    build_replan_policy,
    serve_trace,
)
from repro.sim import EvaluationCache
from repro.workloads import TraceConfig, sample_session_requests

LIGHT_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet",
              "resnet12", "mobilenet")


def main() -> None:
    horizon = float(sys.argv[1]) if len(sys.argv) > 1 else 600.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    platform = orange_pi_5()

    trace_config = TraceConfig(
        horizon_s=horizon, arrival_rate_per_s=1 / 40.0,
        mean_session_s=200.0, max_concurrent=3, pool=LIGHT_POOL)
    requests = sample_session_requests(
        np.random.default_rng(seed), trace_config, tier_shift_prob=0.2)
    print(f"trace: {len(requests)} session requests over {horizon:.0f} s "
          f"(Poisson, uncapped raw demand)")

    serve_config = ServeConfig(
        horizon_s=horizon,
        admission=AdmissionConfig(capacity=3, queue_limit=4,
                                  max_queue_wait_s=120.0),
        pool=LIGHT_POOL, seed=seed)

    cache_path = Path(tempfile.gettempdir()) / "repro_serve_cache.pkl"
    if cache_path.exists():
        cache_path.unlink()

    for policy_key in ("full", "warm", "cache"):
        if cache_path.exists():
            cache = EvaluationCache.load(cache_path, platform)
            print(f"\n[{policy_key}] loaded {len(cache)} cached evaluations "
                  f"from {cache_path}")
        else:
            cache = EvaluationCache(platform)
            print(f"\n[{policy_key}] starting with a cold evaluation cache")
        manager = RankMap(
            platform, OraclePredictor(platform, cache=cache),
            RankMapConfig(mode="static",
                          mcts=MCTSConfig(iterations=16,
                                          rollouts_per_leaf=2)))
        policy = build_replan_policy(policy_key, manager)

        t0 = time.perf_counter()
        report = serve_trace(requests, policy, platform, serve_config,
                             cache=cache)
        wall = time.perf_counter() - t0
        print(report.summary())
        print(f"  wall clock: {wall:.2f} s; evaluation-cache hit rate "
              f"{cache.hit_rate:.1%}")
        saved = cache.save(cache_path)
        print(f"  persisted {saved} evaluations to {cache_path}")


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
