#!/usr/bin/env python
"""Edge data-center SLA scenario: user priority shifts at run time.

Reproduces the spirit of the paper's Fig. 10: four tenant DNNs share the
board; every 150 s the operator re-prioritises a different tenant (their
SLA tier changed) and RankMap_S re-maps to honour the new priority vector
without starving anyone.
"""

import numpy as np

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.search import MCTSConfig
from repro.sim import arrival, priority_change, run_dynamic_scenario
from repro.zoo import get_model

TENANTS = ("mobilenet_v2", "squeezenet", "shufflenet", "alexnet")
STAGES = (
    (0.0, "mobilenet_v2"),
    (150.0, "shufflenet"),
    (300.0, "alexnet"),
    (450.0, "squeezenet"),
)
HORIZON = 600.0


def main() -> None:
    platform = orange_pi_5()
    manager = RankMap(
        platform,
        OraclePredictor(platform),
        RankMapConfig(mode="static",
                      mcts=MCTSConfig(iterations=60, rollouts_per_leaf=4)),
    )

    events = [arrival(0.0, get_model(n)) for n in TENANTS]
    for t, critical in STAGES:
        events.append(priority_change(
            t, {n: (0.7 if n == critical else 0.1) for n in TENANTS}))

    def planner(workload, priorities):
        decision = manager.plan(workload, priorities)
        # The oracle predictor models a full on-board measurement per
        # candidate (how the GA pays for its search); a deployed RankMap
        # scores candidates with the estimator and decides in ~30 s
        # (Sec. V-D).  Model the deployed latency so each stage shows the
        # paper's short re-mapping gap rather than a stage-long stall.
        from repro.sim import MappingDecision

        return MappingDecision(decision.mapping, decision_seconds=30.0)

    timeline = run_dynamic_scenario(events, planner, platform, HORIZON)

    print("Potential P per tenant, sampled mid-stage:")
    header = "stage        critical      " + "".join(
        f"{n[:12]:>14s}" for n in TENANTS)
    print(header)
    bounds = [*(t for t, _ in STAGES), HORIZON]
    for (start, critical), end in zip(STAGES, bounds[1:]):
        probe = (start + end) / 2 + 40.0
        row = [f"{start:4.0f}-{end:4.0f}s", f"{critical[:12]:>13s}"]
        for name in TENANTS:
            p = timeline.potential_at(name, min(probe, HORIZON - 1))
            row.append(f"{p if p is not None else float('nan'):14.3f}")
        print(" ".join(row))

    # Skip the initial planning window: before the first mapping exists
    # nobody runs, which is a deployment gap, not starvation.
    settle = 60.0
    worst = {
        n: min(seg.potentials[n] for seg in timeline.segments
               if n in seg.potentials and seg.t_start >= settle)
        for n in TENANTS
    }
    print("\nWorst-case P per tenant after settling (starvation check):")
    for name, value in worst.items():
        flag = "STARVED" if value < 0.02 else "ok"
        print(f"  {name:15s} min P = {value:.3f}  [{flag}]")
    print(f"\nTime-averaged system throughput: "
          f"{timeline.time_average_throughput():.2f} inf/s")


if __name__ == "__main__":
    main()
