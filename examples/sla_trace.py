#!/usr/bin/env python
"""Stochastic edge-data-center trace scored against SLA tiers.

The paper's introduction motivates RankMap with edge data centers where
users in different SLA groups submit DNN queries.  This example samples a
Poisson session trace, assigns gold/silver/bronze tiers, replays the trace
through RankMap_S and through the all-on-GPU baseline, and scores both
timelines against the tiers' minimum-potential guarantees.
"""

import numpy as np

from repro.baselines import GpuBaseline
from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.search import MCTSConfig
from repro.sim import run_dynamic_scenario
from repro.workloads import (
    TraceConfig,
    assign_tiers,
    evaluate_sla,
    poisson_trace,
    trace_peak_concurrency,
)

LIGHT_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet",
              "resnet12", "mobilenet")


def replay(tag, manager, events, assignment, platform, horizon) -> None:
    def planner(workload, priorities):
        vector = np.array([assignment.tiers[m.name].priority
                           for m in workload])
        return manager.plan(workload, vector)

    timeline = run_dynamic_scenario(events, planner, platform, horizon)
    report = evaluate_sla(timeline, assignment, settle_seconds=30.0)
    print(f"\n{tag}:")
    print(f"  SLA satisfied: {report.satisfied}")
    print(f"  time in violation: {report.violation_fraction:.1%} "
          f"of mapped DNN-time")
    for tier, mean_p in sorted(report.mean_potential_by_tier.items()):
        print(f"  mean P ({tier}): {mean_p:.2f}")


def main() -> None:
    platform = orange_pi_5()
    rng = np.random.default_rng(42)
    config = TraceConfig(horizon_s=600.0, arrival_rate_per_s=1 / 45,
                         mean_session_s=240.0, max_concurrent=4,
                         pool=LIGHT_POOL)
    events = poisson_trace(rng, config)
    models = {e.model.name: e.model for e in events if e.model is not None}
    print(f"trace: {len(events)} events, "
          f"{len(models)} distinct DNNs, "
          f"peak concurrency {trace_peak_concurrency(events)}")

    assignment = assign_tiers(list(models.values()))
    for name, tier in assignment.tiers.items():
        print(f"  {name:>14}: {tier.name} "
              f"(priority {tier.priority}, min P {tier.min_potential})")

    rankmap = RankMap(
        platform, OraclePredictor(platform),
        RankMapConfig(mode="static",
                      mcts=MCTSConfig(iterations=50, seed=7),
                      board_validation_top_k=4),
    )
    replay("RankMap_S", rankmap, events, assignment, platform,
           config.horizon_s)
    replay("all-on-GPU baseline", GpuBaseline(), events, assignment,
           platform, config.horizon_s)


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
