#!/usr/bin/env python
"""Per-inference latency analysis with the discrete-event simulator.

The analytical engine answers "how many inferences per second"; the
event simulator also answers "how long does one inference take end to
end" — which is what an SLA on response time cares about.  This example
maps the Sec. II workload two ways (all-on-GPU vs a RankMap_D plan) and
prints throughput next to p50/p95/p99 latency per DNN, showing that the
partitioned mapping both raises throughput and cuts tail latency for the
DNNs the GPU queue was punishing.
"""

import numpy as np

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.mapping import gpu_only_mapping
from repro.search import MCTSConfig
from repro.sim import DesConfig, simulate_des
from repro.workloads import motivation_workload


def show(tag, workload, mapping, platform) -> None:
    result = simulate_des(workload, mapping, platform,
                          DesConfig(horizon_s=40.0, warmup_s=8.0))
    print(f"\n{tag}  (T = {result.average_throughput:.2f} inf/s avg)")
    print(f"  {'dnn':>14} {'rate/s':>7} {'p50 ms':>8} {'p95 ms':>8} "
          f"{'p99 ms':>8}")
    for i, name in enumerate(result.workload_names):
        print(f"  {name:>14} {result.rates[i]:>7.2f} "
              f"{1e3 * result.latency_percentile(name, 50):>8.1f} "
              f"{1e3 * result.latency_percentile(name, 95):>8.1f} "
              f"{1e3 * result.latency_percentile(name, 99):>8.1f}")


def main() -> None:
    platform = orange_pi_5()
    workload = motivation_workload()

    show("all-on-GPU baseline", workload, gpu_only_mapping(workload),
         platform)

    manager = RankMap(platform, OraclePredictor(platform),
                      RankMapConfig(mode="dynamic",
                                    mcts=MCTSConfig(iterations=80, seed=3)))
    decision = manager.plan(workload)
    show("RankMap_D mapping", workload, decision.mapping, platform)


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
