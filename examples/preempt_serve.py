#!/usr/bin/env python
"""Preemption under saturation: evict, renegotiate, or make gold wait.

Samples one saturating Poisson session trace (arrival rate well beyond
what the node's admission capacity can carry) and serves it three times
with the same priority-aware RankMap manager, changing only the
admission controller's preemption policy:

* ``none``              — the accept/queue/reject baseline: a gold
  arrival into a full node waits behind running bronze sessions;
* ``evict_lowest_tier`` — suspend the cheapest strictly-lower-tier
  resident and admit the gold arrival into its slot; the victim parks
  with its remaining duration and resumes when capacity frees (or ends
  ``evicted`` if it never does);
* ``renegotiate``       — demote the victim's tier to the ladder floor
  instead and admit the arrival by overcommitting one slot: nobody is
  suspended, everybody is squeezed.

The headline table shows the trade: eviction converts gold waiting
(pure SLA violation — a queued session's potential is 0) into gold
service, renegotiation spares every bronze session from suspension
(eviction fairness stays 1.0) at the price of overcommit contention.
The per-tier violation fraction counts waiting time as violation time;
the eviction-fairness column is the Jain index of per-tier survival
that bounds how hard the collateral concentrates on bronze.

Usage:  python preempt_serve.py [horizon_s] [seed]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import orange_pi_5
from repro.search import MCTSConfig
from repro.serve import (
    AdmissionConfig,
    ServeConfig,
    build_replan_policy,
    serve_trace,
)
from repro.sim import EvaluationCache
from repro.workloads import TraceConfig, sample_session_requests

LIGHT_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet",
              "resnet12", "mobilenet")

POLICIES = ("none", "evict_lowest_tier", "renegotiate")


def main() -> None:
    horizon = float(sys.argv[1]) if len(sys.argv) > 1 else 600.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    platform = orange_pi_5()

    trace_config = TraceConfig(
        horizon_s=horizon, arrival_rate_per_s=1 / 10.0,
        mean_session_s=140.0, max_concurrent=2, pool=LIGHT_POOL)
    requests = sample_session_requests(
        np.random.default_rng(seed), trace_config,
        tiers=("gold", "silver", "bronze", "bronze"))
    demand = sum(r.duration_s for r in requests)
    print(f"trace: {len(requests)} session requests over {horizon:.0f} s "
          f"({demand:.0f} DNN-seconds of demand against capacity 2 — "
          f"~{demand / (2 * horizon):.1f}x oversubscribed)")

    cache = EvaluationCache(platform)
    reports = {}
    for preemption in POLICIES:
        config = ServeConfig(
            horizon_s=horizon,
            admission=AdmissionConfig(capacity=2, queue_limit=6,
                                      max_queue_wait_s=120.0,
                                      preemption=preemption),
            pool=LIGHT_POOL, seed=seed)
        manager = RankMap(
            platform, OraclePredictor(platform, cache=cache),
            RankMapConfig(mode="static",
                          mcts=MCTSConfig(iterations=12,
                                          rollouts_per_leaf=2)))
        policy = build_replan_policy("warm", manager)
        t0 = time.perf_counter()
        report = serve_trace(requests, policy, platform, config,
                             cache=cache)
        wall = time.perf_counter() - t0
        reports[preemption] = report
        print(f"\n[{preemption}] wall {wall:.2f} s")
        print(report.summary())

    header = (f"{'preemption':>18s} {'gold viol':>9s} {'bronze viol':>11s} "
              f"{'admit':>5s} {'evict':>5s} {'resume':>6s} {'lost':>4s} "
              f"{'demote':>6s} {'fair':>5s}")
    print("\n" + header)
    print("-" * len(header))
    for preemption in POLICIES:
        rep = reports[preemption]
        print(f"{preemption:>18s} "
              f"{rep.tier_violation_fraction('gold'):>9.1%} "
              f"{rep.tier_violation_fraction('bronze'):>11.1%} "
              f"{rep.admitted:>5d} {rep.evictions:>5d} "
              f"{rep.resumptions:>6d} {rep.evicted:>4d} "
              f"{rep.demotions:>6d} {rep.eviction_fairness:>5.3f}")

    base = reports["none"].tier_violation_fraction("gold")
    evicting = reports["evict_lowest_tier"].tier_violation_fraction("gold")
    verb = "cuts" if evicting < base else "moves"
    print(f"\nevict_lowest_tier {verb} the gold violation fraction "
          f"{base:.1%} -> {evicting:.1%} "
          f"(waiting counts as violation: a queued session's potential "
          f"is 0), while the eviction-fairness column bounds the bronze "
          f"collateral; renegotiate keeps fairness at 1.000 — no session "
          f"is ever suspended — by paying with overcommit contention.")
    if evicting >= base:
        print("note: this trace/horizon sits outside the saturated "
              "regime the monotonicity property covers — rerun with the "
              "defaults (600 s, seed 60) for the headline study.")


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
