#!/usr/bin/env python
"""Motivation study (Sec. II): why a multi-DNN manager is needed.

Generates random partitioned mappings for the paper's motivation workload
and prints the headline statistics behind Figs. 1 and 2: most random
mappings beat the all-on-GPU baseline, a large share starve at least one
DNN, and deep models (Inception-V4) are the most starvation-prone.
"""

import numpy as np

from repro.hw import orange_pi_5
from repro.mapping import gpu_only_mapping, random_partition_mapping
from repro.metrics import STARVATION_EPSILON
from repro.sim import simulate
from repro.zoo import get_model

WORKLOAD = ("squeezenet_v2", "inception_v4", "resnet50", "vgg16")
N_MAPPINGS = 300


def main() -> None:
    platform = orange_pi_5()
    workload = [get_model(n) for n in WORKLOAD]
    base = simulate(workload, gpu_only_mapping(workload), platform)
    print(f"Baseline (all on GPU): T = {base.average_throughput:.2f} inf/s")

    rng = np.random.default_rng(0)
    normalized, potentials = [], []
    for _ in range(N_MAPPINGS):
        mapping = random_partition_mapping(workload, 3, rng)
        result = simulate(workload, mapping, platform)
        normalized.append(result.average_throughput / base.average_throughput)
        potentials.append(result.potentials)
    normalized = np.asarray(normalized)
    potentials = np.stack(potentials)
    starved = (potentials < STARVATION_EPSILON).any(axis=1)

    print(f"\n{N_MAPPINGS} random partitioned mappings:")
    print(f"  beat the baseline:        {(normalized > 1).mean():6.1%} "
          "(paper: 91%)")
    print(f"  starve at least one DNN:  {starved.mean():6.1%} "
          "(paper: 30.2%)")
    print(f"  DNN instances at P<=0.2:  {(potentials <= 0.2).mean():6.1%} "
          "(paper: >60%)")
    print("\nMean potential P per DNN (paper: Inception-V4 lowest, ~0.1):")
    for i, name in enumerate(WORKLOAD):
        print(f"  {name:15s} {potentials[:, i].mean():.3f}")


if __name__ == "__main__":
    main()
