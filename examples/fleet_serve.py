#!/usr/bin/env python
"""Cluster-scale serving: one shared demand across a heterogeneous fleet.

Builds a 4-node fleet (two Orange Pi 5 class nodes, two faster
Jetson-class nodes, mixed capacities), scales a per-node Poisson shape to
the aggregate cluster demand (``fleet_demand_config``), and dispatches
one shared trace through three routing policies:

* ``round_robin``   — blind rotation;
* ``least_loaded``  — steady-state throughput headroom,
  ``(capacity - est_live) * node speed``;
* ``tier_affinity`` — the fastest nodes are reserved for gold sessions.

A dispatcher-less **static shard** baseline (``split_session_requests``:
session ``i`` lands on node ``i % N``, no failure handling, no load or
tier awareness) is served inline for comparison.

Each node runs its own ``repro.serve`` loop (warm-start replanning,
SLA-tier admission control, private evaluation cache) on a worker
process via ``ScenarioRunner.run_fleet``.  Halfway through the run one
node fails: its live sessions drain back through the dispatcher onto the
survivors, which the per-policy ``FleetReport`` shows as re-dispatched
continuations.  Reports are bit-identical for any worker count.

Usage:  python fleet_serve.py [horizon_s] [workers]
"""

from __future__ import annotations

import sys
import time

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import jetson_class, orange_pi_5
from repro.runner import (
    DynamicScenario,
    FleetScenario,
    ScenarioRunner,
    sample_fleet_requests,
)
from repro.search import MCTSConfig
from repro.serve import (
    AdmissionConfig,
    ServeConfig,
    build_replan_policy,
    serve_trace,
)
from repro.workloads import (
    TraceConfig,
    fleet_demand_config,
    split_session_requests,
)

LIGHT_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet",
              "resnet12", "mobilenet")

ROUTINGS = ("round_robin", "least_loaded", "tier_affinity")

NUM_NODES = 4

#: One node's worth of demand; the fleet serves the x4 superposition.
PER_NODE_TRACE = TraceConfig(arrival_rate_per_s=1 / 32.0,
                             mean_session_s=120.0)


def node_platform(i: int):
    return jetson_class() if i >= 2 else orange_pi_5()


def node_capacity(i: int) -> int:
    return 3 if i >= 2 else 2


def build_fleet(routing: str, horizon: float) -> FleetScenario:
    aggregate = fleet_demand_config(PER_NODE_TRACE, NUM_NODES)
    nodes = tuple(
        DynamicScenario(
            name=f"node{i}",
            manager="rankmap_d",
            platform=("jetson_class" if i >= 2 else "orange_pi_5"),
            policy="warm",
            seed=i,
            pool=LIGHT_POOL,
            capacity=node_capacity(i),
            search_iterations=10,
            search_rollouts=2,
        )
        for i in range(NUM_NODES))
    return FleetScenario(
        name=f"fleet_{routing}",
        nodes=nodes,
        routing=routing,
        seed=7,
        horizon_s=horizon,
        arrival_rate_per_s=aggregate.arrival_rate_per_s,
        mean_session_s=aggregate.mean_session_s,
        tier_shift_prob=0.1,
        fail_at=((1, horizon / 2),),     # node1 dies mid-run
    )


def static_shard_baseline(fleet: FleetScenario, horizon: float) -> dict:
    """Serve the fleet's demand with no dispatcher: static round-robin
    shards, every node healthy, blind to load and tier."""
    shards = split_session_requests(sample_fleet_requests(fleet), NUM_NODES)
    totals = dict(admitted=0, denied=0, rates=[], starved=0, served=0)
    for i, shard in enumerate(shards):
        platform = node_platform(i)
        manager = RankMap(
            platform, OraclePredictor(platform),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=10,
                                          rollouts_per_leaf=2, seed=i)))
        report = serve_trace(
            shard, build_replan_policy("warm", manager), platform,
            ServeConfig(horizon_s=horizon,
                        admission=AdmissionConfig(capacity=node_capacity(i)),
                        pool=LIGHT_POOL, seed=i))
        totals["admitted"] += report.admitted
        totals["denied"] += report.rejected + report.abandoned
        for s in report.sessions:
            if s.served_seconds > 0:
                totals["served"] += 1
                totals["rates"].append(s.mean_rate)
                if s.delivered_inferences <= 0.0:
                    totals["starved"] += 1
    rates = totals.pop("rates")
    totals["mean_rate"] = sum(rates) / len(rates) if rates else 0.0
    return totals


def main() -> None:
    horizon = float(sys.argv[1]) if len(sys.argv) > 1 else 480.0
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None

    fleets = [build_fleet(routing, horizon) for routing in ROUTINGS]
    print(f"fleet: 4 heterogeneous nodes (2x orange_pi_5 cap 2, "
          f"2x jetson_class cap 3), node1 fails at {horizon / 2:.0f} s; "
          f"{len(fleets)} routing policies share one {horizon:.0f} s trace\n")

    t0 = time.perf_counter()
    results = ScenarioRunner(max_workers=workers).run_fleet(fleets)
    wall = time.perf_counter() - t0

    for result in results:
        print(result.report.summary())
        gold = result.report.tier_outcomes().get("gold", {})
        if gold:
            print(f"    gold tier: {gold['denied']}/{gold['arrivals']} "
                  f"denied, mean rate {gold['mean_rate']:.2f}/s")
        print()

    baseline = static_shard_baseline(fleets[0], horizon)

    header = (f"{'routing':>14s} {'admit':>6s} {'deny':>5s} {'redisp':>7s} "
              f"{'rate/s':>7s} {'fair(node)':>10s} {'starve':>7s}")
    print(header)
    print("-" * len(header))
    starve = (baseline["starved"] / baseline["served"]
              if baseline["served"] else 0.0)
    print(f"{'static_shard*':>14s} {baseline['admitted']:>6d} "
          f"{baseline['denied']:>5d} {'-':>7s} "
          f"{baseline['mean_rate']:>7.2f} {'-':>10s} {starve:>7.1%}")
    for result in results:
        rep = result.report
        print(f"{result.routing:>14s} {rep.admitted:>6d} "
              f"{rep.rejected + rep.abandoned:>5d} "
              f"{rep.re_dispatched:>7d} {rep.mean_session_rate:>7.2f} "
              f"{rep.node_fairness:>10.3f} {rep.starvation_rate:>7.1%}")
    print("\n* dispatcher-less split_session_requests baseline: static "
          "round-robin shards,\n  all nodes healthy (no failure), blind "
          "to load and tier")
    print(f"completed in {wall:.1f} s "
          f"({len(results)} fleets x {NUM_NODES} nodes across the pool)")


if __name__ == "__main__":
    main()
