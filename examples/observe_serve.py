#!/usr/bin/env python
"""Observed serving: one trace, recorded, exported, summarized.

Serves a short Poisson session trace twice — recorder off, then on —
and demonstrates the two contracts of :mod:`repro.obs`:

* the reports are **bit-identical** (telemetry is a pure side channel);
* the recorded run exports a deterministic JSONL trace that
  ``tools/trace_summary.py`` turns into the counter table, the per-tier
  admission funnel, and the slowest replan decisions.

``make obs-demo`` runs this.

Usage:  python observe_serve.py [horizon_s] [seed]
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.baselines import GpuBaseline
from repro.hw import orange_pi_5
from repro.obs import TelemetryRecorder, export_segments, write_trace
from repro.serve import AdmissionConfig, FullReplan, ServeConfig, serve_trace
from repro.sim import EvaluationCache
from repro.workloads import TraceConfig, sample_session_requests

LIGHT_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")


def main() -> None:
    horizon = float(sys.argv[1]) if len(sys.argv) > 1 else 600.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    platform = orange_pi_5()

    requests = sample_session_requests(
        np.random.default_rng(seed),
        TraceConfig(horizon_s=horizon, arrival_rate_per_s=1 / 25.0,
                    mean_session_s=150.0, pool=LIGHT_POOL),
        tier_shift_prob=0.2)
    config = ServeConfig(
        horizon_s=horizon,
        admission=AdmissionConfig(capacity=3, queue_limit=4,
                                  max_queue_wait_s=90.0,
                                  preemption="evict_lowest_tier"),
        pool=LIGHT_POOL, seed=seed)
    cache = EvaluationCache(platform)
    print(f"trace: {len(requests)} session requests over {horizon:.0f} s")

    baseline = serve_trace(requests, FullReplan(GpuBaseline()), platform,
                           config, cache=cache)
    recorder = TelemetryRecorder(where="obs-demo")
    observed = serve_trace(requests, FullReplan(GpuBaseline()), platform,
                           config, cache=cache, recorder=recorder)
    print("recorder on/off reports identical:", observed == baseline)

    snapshot = recorder.snapshot()
    trace_path = Path(tempfile.gettempdir()) / "repro_obs_demo.jsonl"
    records = write_trace(snapshot, trace_path)
    print(f"wrote {records} trace records to {trace_path}")
    segments = export_segments(snapshot)
    print(f"realized plan segments: {len(segments)} distinct plans, "
          f"{sum(s['duration_s'] for s in segments):.0f} s total\n")

    repo_root = Path(__file__).resolve().parent.parent
    subprocess.run(
        [sys.executable, str(repo_root / "tools" / "trace_summary.py"),
         str(trace_path), "--top", "5"],
        check=True)


if __name__ == "__main__":
    main()
