#!/usr/bin/env python
"""Closed-loop adaptation A/B: fine-tuned weights + pressure-fed routing.

Every other serving example runs an *open* loop: the estimator is
trained once offline and the dispatcher routes on its blind load
estimates, no matter what the fleet actually does.  This example closes
both loops against a **drifted** demand (the Poisson arrival rate
triples mid-run — ``FleetScenario.rate_shift``):

1. **Observe** — serve the drifted demand once with the frozen
   pre-drift estimator under ``least_loaded`` routing, recording
   telemetry (``observe=True``).
2. **Adapt** — ``ExperimentContext.refresh_estimator`` fine-tunes the
   estimator on the realized ``(workload, mapping, rates)`` segments,
   writing a ``.gen1`` artifact sibling with full lineage.
3. **A/B** — re-serve the *same* drifted demand twice: the frozen
   configuration (pre-drift weights pinned from a separate family dir,
   one-shot ``least_loaded`` dispatch) against the adaptive one (the
   refreshed family, ``pressure_feedback`` routing with two feedback
   rounds, so dispatch re-routes on measured queue depth and denial
   rates).

The adaptive column must strictly reduce the fleet SLA violation
fraction — asserted, not just printed.  A final check re-runs the
adaptive sweep on one worker and two and asserts the reports are
bit-identical: the whole closed loop (fine-tuning included) keeps the
runner's determinism contract.

The fleet is deliberately heterogeneous: the jetson-class node
downgrades to the oracle with a warning on every pass (the artifact is
trained for the Orange Pi 5 board model), so the printed warnings are
the documented mismatch path at work, not a failure.

Usage:  python adaptive_serve.py [horizon_s] [workers]
"""

from __future__ import annotations

import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import ExperimentContext

LIGHT_POOL = ("alexnet", "squeezenet", "mobilenet_v2", "shufflenet")
NUM_NODES = 3
CAPACITY = 2
RATE = 1.0 / 12.0


def sweep(ctx, horizon, routing, estimator_path, feedback_rounds=0,
          observe=False, workers=None):
    """One fleet pass over the drifted demand; returns (results, report)."""
    results, _ = ctx.fleet_serve_sweep(
        routings=(routing,), num_nodes=NUM_NODES, traces_per_cell=1,
        horizon_s=horizon, arrival_rate_per_s=RATE, pool=LIGHT_POOL,
        capacity=CAPACITY, predictor="estimator",
        estimator_path=estimator_path, observe=observe,
        feedback_rounds=feedback_rounds,
        rate_shift=(horizon / 2.0, 3.0), max_workers=workers)
    return results, results[0].report


def main() -> None:
    horizon = float(sys.argv[1]) if len(sys.argv) > 1 else 480.0
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None

    ctx = ExperimentContext(
        preset="tiny",
        results_dir=Path(tempfile.gettempdir()) / "repro_adaptive_demo")
    t0 = time.perf_counter()
    base = ctx.estimator_artifact_path()
    # Start every run from generation zero so the refresh below is
    # always the base -> gen1 step (repeat runs stay reproducible).
    for stale in base.parent.glob(f"{base.stem}.gen*{base.suffix}"):
        stale.unlink()
    # Freeze the pre-drift weights in their own family dir: a scenario
    # naming this copy can never pick up the refreshed generation.
    frozen = Path(tempfile.mkdtemp(prefix="repro_frozen_")) / base.name
    shutil.copyfile(base, frozen)
    print(f"estimator artifact: {base} "
          f"(ready in {time.perf_counter() - t0:.1f} s)")

    # Phase 1: observe the drifted demand with the frozen weights.
    t0 = time.perf_counter()
    observed, _ = sweep(ctx, horizon, "least_loaded", frozen,
                        observe=True, workers=workers)
    gen_path, ft = ctx.refresh_estimator(observed)
    print(f"observed drifted demand in {time.perf_counter() - t0:.1f} s; "
          f"fine-tuned on {ft.rows} realized segments "
          f"({ft.steps} steps) -> {gen_path.name}")

    # Phase 2: the A/B on the same drifted demand.
    _, frozen_rep = sweep(ctx, horizon, "least_loaded", frozen,
                          workers=workers)
    adaptive_results, adaptive_rep = sweep(
        ctx, horizon, "pressure_feedback", base, feedback_rounds=2,
        workers=workers)

    header = (f"{'configuration':>32s} {'violation':>10s} "
              f"{'session rate':>13s} {'abandoned':>10s} {'queue s':>8s}")
    print()
    print(header)
    print("-" * len(header))
    for label, rep in (("frozen + least_loaded", frozen_rep),
                       ("fine-tuned + pressure_feedback", adaptive_rep)):
        print(f"{label:>32s} {rep.sla_violation_fraction:>10.1%} "
              f"{rep.mean_session_rate:>13.2f} {rep.abandoned:>10d} "
              f"{rep.mean_queue_wait_s:>8.1f}")
    spread = (frozen_rep.sla_violation_fraction
              - adaptive_rep.sla_violation_fraction)
    print(f"\nclosed loop cuts SLA violation by {spread:.1%}")
    if adaptive_rep.sla_violation_fraction \
            >= frozen_rep.sla_violation_fraction:
        raise SystemExit("adaptation regression: the closed loop did not "
                         "reduce SLA violation on the drifted demand")

    # Determinism: the adaptive path is bit-identical for any worker
    # count (workers re-resolve the refreshed generation by path).
    serial, _ = sweep(ctx, horizon, "pressure_feedback", base,
                      feedback_rounds=2, workers=1)
    pooled, _ = sweep(ctx, horizon, "pressure_feedback", base,
                      feedback_rounds=2, workers=2)
    identical = [r.report for r in serial] == [r.report for r in pooled]
    print(f"1-vs-2-worker adaptive reports bit-identical: {identical}")
    if not identical:
        raise SystemExit("determinism regression on the closed loop")


if __name__ == "__main__":
    main()
