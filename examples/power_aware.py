#!/usr/bin/env python
"""Throughput/power co-optimisation with the power-aware RankMap extension.

Plain RankMap_D will happily light up every component to squeeze out
inferences.  On a battery- or thermally-limited deployment you often want
to trade a little throughput for a lot of power.  This example sweeps the
power-penalty weight and prints, for each setting, the mapping's measured
throughput, the modeled board draw and the resulting energy efficiency —
with the starvation guard intact throughout.
"""

import numpy as np

from repro.core import OraclePredictor, PowerAwareRankMap, RankMapConfig
from repro.hw import energy_report, orange_pi_5, orange_pi_5_power
from repro.search import MCTSConfig
from repro.sim import simulate
from repro.zoo import get_model

WORKLOAD = ("alexnet", "squeezenet", "mobilenet_v2")
LAMBDAS = (0.0, 0.5, 2.0, 8.0)


def main() -> None:
    platform = orange_pi_5()
    power = orange_pi_5_power()
    workload = [get_model(n) for n in WORKLOAD]

    print(f"workload: {', '.join(WORKLOAD)}")
    print(f"{'lambda':>7} {'T inf/s':>8} {'board W':>8} "
          f"{'inf/J':>6} {'min P':>6}")
    for lam in LAMBDAS:
        manager = PowerAwareRankMap(
            platform, OraclePredictor(platform), power,
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=60, seed=1),
                          board_validation_top_k=4),
            objective="penalty", power_weight=lam,
        )
        decision = manager.plan(workload)
        result = simulate(workload, decision.mapping, platform)
        report = energy_report(workload, decision.mapping, platform, power)
        print(f"{lam:>7.1f} {result.rates.sum():>8.2f} "
              f"{report.system_watts:>8.2f} "
              f"{report.inferences_per_joule:>6.2f} "
              f"{result.potentials.min():>6.2f}")

    print("\nper-component draw at the last setting:")
    for name, util, watts in zip(report.component_names,
                                 report.component_utilisation,
                                 report.component_watts):
        print(f"  {name:>7}: {watts:5.2f} W at {util:5.1%} utilisation")
    print("\nNo DNN starves at any lambda: the threshold guard is applied "
          "before the power term.")


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
