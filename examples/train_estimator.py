#!/usr/bin/env python
"""Train the full learned pipeline: VQ-VAE + multi-task estimator.

Walks the paper's Sec. IV pipeline end to end on a reduced dataset:
1. train the VQ-VAE on the 23-model pool's layer sequences;
2. generate an executed-workload dataset on the simulated board;
3. train the multi-task attention estimator (with channel shuffling);
4. use it inside RankMap to map a workload, and compare the estimator's
   predictions against the board.
"""

import numpy as np

from repro.core import EstimatorPredictor, RankMap, RankMapConfig
from repro.estimator import (
    EstimatorConfig,
    EstimatorTrainConfig,
    ThroughputEstimator,
    generate_dataset,
    train_estimator,
)
from repro.hw import orange_pi_5
from repro.search import MCTSConfig
from repro.sim import simulate
from repro.vqvae import EmbeddingCache, VQVAETrainConfig, train_vqvae
from repro.zoo import get_model

N_SAMPLES = 400   # paper: 10 000
EPOCHS = 6        # paper: 50


def main() -> None:
    platform = orange_pi_5()
    rng = np.random.default_rng(0)

    print("1) training VQ-VAE on the 23-model pool ...")
    vqvae, history = train_vqvae(config=VQVAETrainConfig(epochs=10))
    print(f"   reconstruction L2: {history[0]:.4f} -> {history[-1]:.4f}; "
          f"codebook usage {vqvae.quantizer.codebook_usage():.0%}")
    embedder = EmbeddingCache(vqvae)

    print(f"2) generating {N_SAMPLES} executed workloads on the board ...")
    dataset = generate_dataset(platform, rng, N_SAMPLES)

    print(f"3) training the estimator for {EPOCHS} epochs ...")
    estimator = ThroughputEstimator(np.random.default_rng(1),
                                    EstimatorConfig())
    report = train_estimator(
        estimator, dataset, embedder,
        EstimatorTrainConfig(epochs=EPOCHS, channel_shuffle=True),
    )
    print(f"   val L2 (log1p space): {report.final_val_loss:.4f}, "
          f"val Spearman: {report.val_spearman:.3f}")

    print("4) planning with RankMap_D on the learned estimator ...")
    workload = [get_model(n)
                for n in ("squeezenet_v2", "resnet50", "googlenet")]
    manager = RankMap(
        platform, EstimatorPredictor(estimator, embedder),
        RankMapConfig(mode="dynamic",
                      mcts=MCTSConfig(iterations=50, rollouts_per_leaf=4)),
    )
    decision = manager.plan(workload)
    result = simulate(workload, decision.mapping, platform)
    predicted = EstimatorPredictor(estimator, embedder).predict(
        workload, [decision.mapping])[0]
    print("   DNN            predicted   measured (inf/s)")
    for model, pred, true in zip(workload, predicted, result.rates):
        print(f"   {model.name:15s} {pred:8.2f} {true:10.2f}")
    print(f"   T = {result.average_throughput:.2f} inf/s, "
          f"starved = {(result.potentials < 0.02).sum()}")


if __name__ == "__main__":
    main()
