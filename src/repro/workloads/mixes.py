"""Static multi-DNN mixes: the Sec. II study and the Sec. V random mixes."""

from __future__ import annotations

import numpy as np

from ..zoo.layers import ModelSpec
from ..zoo.registry import MODEL_POOL, get_model

__all__ = [
    "MOTIVATION_WORKLOAD",
    "motivation_workload",
    "sample_mix",
    "paper_mixes",
    "mix_names",
    "total_demand_macs",
]

#: The Sec. II motivation workload: four diverse, widely used DNNs.
MOTIVATION_WORKLOAD: tuple[str, ...] = (
    "squeezenet_v2", "inception_v4", "resnet50", "vgg16",
)


def motivation_workload() -> list[ModelSpec]:
    """The paper's Sec. II workload (SqueezeNet-V2, Inception-V4, ResNet-50,
    VGG-16)."""
    return [get_model(name) for name in MOTIVATION_WORKLOAD]


def sample_mix(rng: np.random.Generator, size: int,
               pool: tuple[str, ...] = MODEL_POOL) -> list[ModelSpec]:
    """One random mix of ``size`` distinct pool models (Sec. V).

    Models are drawn without replacement, matching the paper's "mix of up
    to 5 concurrent DNNs randomly selected from a pool of 23 DNNs".
    """
    if not 1 <= size <= len(pool):
        raise ValueError(f"mix size {size} not in [1, {len(pool)}]")
    names = rng.choice(pool, size=size, replace=False)
    return [get_model(n) for n in names]


def paper_mixes(rng: np.random.Generator, sizes: tuple[int, ...] = (3, 4, 5),
                per_size: int = 6) -> dict[int, list[list[ModelSpec]]]:
    """The Sec. V evaluation grid: ``per_size`` random mixes per size.

    The paper uses 6 mixes each of 3, 4 and 5 concurrent DNNs (72 DNN
    instances total).  Draw order is deterministic given ``rng``.
    """
    return {
        size: [sample_mix(rng, size) for _ in range(per_size)]
        for size in sizes
    }


def mix_names(mix: list[ModelSpec]) -> tuple[str, ...]:
    """The model names of a mix, in workload order."""
    return tuple(m.name for m in mix)


def total_demand_macs(mix: list[ModelSpec]) -> int:
    """Total per-inference MAC count of a mix.

    The paper sorts its Fig. 9 workloads "from least to most
    computationally demanding"; this is that ordering key, and also the
    quantity RankMap_D's demand-proportional priorities are built from.
    """
    return sum(m.macs for m in mix)
