"""Workload construction: mixes, dynamic scenarios, traces and SLA groups.

The paper evaluates RankMap on three workload shapes, all reproduced here
as a public API:

* :mod:`repro.workloads.mixes` — the Sec. II motivation workload and the
  Sec. V random mixes of 3/4/5 concurrent DNNs.
* :mod:`repro.workloads.scenarios` — the Fig. 8 staggered-arrival scenario
  and the Fig. 10 user-priority-shift scenario, plus the generic builders
  they are instances of.
* :mod:`repro.workloads.traces` — stochastic edge-data-center traces
  (Poisson query arrivals with finite sessions), the setting the paper's
  introduction motivates.
* :mod:`repro.workloads.sla` — SLA service classes ("users are categorised
  into different SLA groups", Sec. I) mapped onto RankMap priority vectors,
  with satisfaction reporting over simulated timelines.
"""

from .mixes import (
    MOTIVATION_WORKLOAD,
    mix_names,
    motivation_workload,
    paper_mixes,
    sample_mix,
    total_demand_macs,
)
from .scenarios import (
    FIG8_ARRIVALS,
    FIG8_HORIZON,
    FIG10_HORIZON,
    FIG10_STAGES,
    FIG10_WORKLOAD,
    fig8_events,
    fig10_events,
    rotating_priority_schedule,
    staggered_arrivals,
)
from .sla import (
    BRONZE,
    GOLD,
    SILVER,
    SLA_TIERS,
    SlaAssignment,
    SlaClass,
    SlaReport,
    SlaViolation,
    assign_tiers,
    evaluate_sla,
)
from .traces import (
    DroppedArrival,
    SessionRequest,
    TraceConfig,
    TraceStats,
    fleet_demand_config,
    iter_session_requests,
    poisson_trace,
    poisson_trace_with_stats,
    sample_session_requests,
    split_session_requests,
    trace_peak_concurrency,
)

__all__ = [
    "MOTIVATION_WORKLOAD",
    "motivation_workload",
    "sample_mix",
    "paper_mixes",
    "mix_names",
    "total_demand_macs",
    "FIG8_ARRIVALS",
    "FIG8_HORIZON",
    "fig8_events",
    "FIG10_WORKLOAD",
    "FIG10_STAGES",
    "FIG10_HORIZON",
    "fig10_events",
    "staggered_arrivals",
    "rotating_priority_schedule",
    "TraceConfig",
    "TraceStats",
    "DroppedArrival",
    "SessionRequest",
    "poisson_trace",
    "poisson_trace_with_stats",
    "iter_session_requests",
    "sample_session_requests",
    "trace_peak_concurrency",
    "fleet_demand_config",
    "split_session_requests",
    "SlaClass",
    "SlaAssignment",
    "SlaViolation",
    "SlaReport",
    "GOLD",
    "SILVER",
    "BRONZE",
    "SLA_TIERS",
    "assign_tiers",
    "evaluate_sla",
]
