"""Stochastic edge-data-center traces.

The paper's introduction motivates RankMap with edge data centers "where
multiple users submit DNN queries".  This module generates that setting as
a dynamic-scenario event stream: DNN sessions arrive as a Poisson process,
run for an exponentially distributed duration, and leave.  Feeding the
trace to :func:`repro.sim.run_dynamic_scenario` with any manager yields the
timeline the SLA report (:mod:`repro.workloads.sla`) scores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.dynamic import ScenarioEvent, arrival, departure
from ..zoo.registry import MODEL_POOL, get_model

__all__ = ["TraceConfig", "poisson_trace", "trace_peak_concurrency"]


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a stochastic arrival trace.

    ``max_concurrent`` is an admission-control cap, not a queue: arrivals
    that would exceed it are dropped, mirroring an edge node that rejects
    queries beyond its configured multi-tenancy level (the paper evaluates
    up to 5 concurrent DNNs).
    """

    horizon_s: float = 600.0
    arrival_rate_per_s: float = 1.0 / 60.0   # one new session per minute
    mean_session_s: float = 180.0
    max_concurrent: int = 5
    pool: tuple[str, ...] = MODEL_POOL

    def __post_init__(self):
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if self.mean_session_s <= 0:
            raise ValueError("mean_session_s must be positive")
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        if not self.pool:
            raise ValueError("pool must not be empty")


def poisson_trace(rng: np.random.Generator,
                  config: TraceConfig | None = None) -> list[ScenarioEvent]:
    """Sample one session trace as a sorted scenario event list.

    Each admitted session contributes an arrival and (if its exponential
    duration ends before the horizon) a departure.  Model names are drawn
    uniformly from the pool *without* replacement among concurrently active
    sessions — the dynamic-scenario engine identifies DNNs by name, so two
    live sessions must not share one.
    """
    config = config if config is not None else TraceConfig()
    events: list[ScenarioEvent] = []
    active: dict[str, float] = {}    # name -> departure time
    t = 0.0
    while True:
        t += rng.exponential(1.0 / config.arrival_rate_per_s)
        if t >= config.horizon_s:
            break
        active = {n: end for n, end in active.items() if end > t}
        if len(active) >= config.max_concurrent:
            continue
        free = [n for n in config.pool if n not in active]
        if not free:
            continue
        name = str(rng.choice(free))
        end = t + rng.exponential(config.mean_session_s)
        events.append(arrival(t, get_model(name)))
        if end < config.horizon_s:
            events.append(departure(end, get_model(name)))
        active[name] = end
    return sorted(events, key=lambda e: e.time)


def trace_peak_concurrency(events: list[ScenarioEvent]) -> int:
    """Largest number of simultaneously active DNNs in a trace."""
    peak = 0
    live = 0
    for event in sorted(events, key=lambda e: (e.time, e.kind != "departure")):
        if event.kind == "arrival":
            live += 1
            peak = max(peak, live)
        elif event.kind == "departure":
            live -= 1
    return peak
