"""Stochastic edge-data-center traces.

The paper's introduction motivates RankMap with edge data centers "where
multiple users submit DNN queries".  This module generates that setting as
a dynamic-scenario event stream: DNN sessions arrive as a Poisson process,
run for an exponentially distributed duration, and leave.  Feeding the
trace to :func:`repro.sim.run_dynamic_scenario` with any manager yields the
timeline the SLA report (:mod:`repro.workloads.sla`) scores.

Two consumers read these traces:

* :func:`poisson_trace` applies ``TraceConfig.max_concurrent`` as a blind
  admission cap and emits a ready-to-replay event list.
  :func:`poisson_trace_with_stats` is the same sampler but additionally
  returns the arrivals the cap (or pool exhaustion) dropped, so
  admission-control studies have a baseline to compare against.
* :func:`sample_session_requests` emits the *uncapped* raw demand — every
  would-be session with its arrival time, duration and SLA tier — for the
  online serving loop (:mod:`repro.serve`), whose admission controller
  makes its own accept/queue/reject decision per request.
  :func:`iter_session_requests` is the same sampler as a generator: one
  request at a time, identical rng consumption, so million-session traces
  stream straight into :func:`repro.serve.serve_trace` without ever being
  materialised.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..sim.dynamic import ScenarioEvent, arrival, departure
from ..zoo.registry import MODEL_POOL, get_model

__all__ = [
    "TraceConfig",
    "DroppedArrival",
    "TraceStats",
    "SessionRequest",
    "poisson_trace",
    "poisson_trace_with_stats",
    "iter_session_requests",
    "sample_session_requests",
    "trace_peak_concurrency",
    "fleet_demand_config",
    "split_session_requests",
]

#: Default SLA-tier rotation for sampled session requests (highest first,
#: matching :data:`repro.workloads.sla.SLA_TIERS`).
DEFAULT_TIER_CYCLE: tuple[str, ...] = ("gold", "silver", "bronze")


@dataclass(frozen=True)
class TraceConfig:
    """Shape of a stochastic arrival trace.

    ``max_concurrent`` is an admission-control cap, not a queue: arrivals
    that would exceed it are dropped, mirroring an edge node that rejects
    queries beyond its configured multi-tenancy level (the paper evaluates
    up to 5 concurrent DNNs).
    """

    horizon_s: float = 600.0
    arrival_rate_per_s: float = 1.0 / 60.0   # one new session per minute
    mean_session_s: float = 180.0
    max_concurrent: int = 5
    pool: tuple[str, ...] = MODEL_POOL

    def __post_init__(self):
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if self.mean_session_s <= 0:
            raise ValueError("mean_session_s must be positive")
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be at least 1")
        if not self.pool:
            raise ValueError("pool must not be empty")


@dataclass(frozen=True)
class DroppedArrival:
    """One arrival the blind cap discarded, and why.

    ``reason`` is ``"capacity"`` (cap reached) or ``"pool"`` (every pool
    model already live; the event engine identifies DNNs by name, so a
    duplicate cannot be admitted).
    """

    time: float
    reason: str


@dataclass(frozen=True)
class TraceStats:
    """Admission ledger of one sampled trace."""

    arrivals: int                          # total would-be sessions
    admitted: int
    dropped: tuple[DroppedArrival, ...]

    @property
    def drop_rate(self) -> float:
        return len(self.dropped) / self.arrivals if self.arrivals else 0.0


@dataclass(frozen=True)
class SessionRequest:
    """One raw (uncapped) session request for the online serving loop.

    ``tier`` names an SLA class (:mod:`repro.workloads.sla`).  An optional
    ``tier_shift`` models a mid-session priority change — ``(offset_s,
    new_tier)`` relative to the session's admission time — the online
    analogue of the paper's Fig. 10 user priority shifts.
    """

    session_id: int
    arrival_s: float
    duration_s: float
    tier: str
    tier_shift: tuple[float, str] | None = None


def poisson_trace(rng: np.random.Generator,
                  config: TraceConfig | None = None) -> list[ScenarioEvent]:
    """Sample one session trace as a sorted scenario event list.

    Each admitted session contributes an arrival and (if its exponential
    duration ends before the horizon) a departure.  Model names are drawn
    uniformly from the pool *without* replacement among concurrently active
    sessions — the dynamic-scenario engine identifies DNNs by name, so two
    live sessions must not share one.
    """
    events, _ = poisson_trace_with_stats(rng, config)
    return events


def poisson_trace_with_stats(
        rng: np.random.Generator,
        config: TraceConfig | None = None,
) -> tuple[list[ScenarioEvent], TraceStats]:
    """Like :func:`poisson_trace` but also returns the drop ledger.

    Same sampler, same rng consumption for admitted sessions: for any
    ``(rng state, config)`` the event list is identical to what
    :func:`poisson_trace` yields.  The extra :class:`TraceStats` records
    every arrival the cap or the name pool discarded, giving
    admission-control comparisons (queue instead of drop, tier-aware
    rejection) their blind-drop baseline.
    """
    config = config if config is not None else TraceConfig()
    events: list[ScenarioEvent] = []
    dropped: list[DroppedArrival] = []
    arrivals = 0
    active: dict[str, float] = {}    # name -> departure time
    t = 0.0
    while True:
        t += rng.exponential(1.0 / config.arrival_rate_per_s)
        if t >= config.horizon_s:
            break
        arrivals += 1
        active = {n: end for n, end in active.items() if end > t}
        if len(active) >= config.max_concurrent:
            dropped.append(DroppedArrival(t, "capacity"))
            continue
        free = [n for n in config.pool if n not in active]
        if not free:
            dropped.append(DroppedArrival(t, "pool"))
            continue
        name = str(rng.choice(free))
        end = t + rng.exponential(config.mean_session_s)
        events.append(arrival(t, get_model(name)))
        if end < config.horizon_s:
            events.append(departure(end, get_model(name)))
        active[name] = end
    stats = TraceStats(arrivals=arrivals, admitted=arrivals - len(dropped),
                       dropped=tuple(dropped))
    return sorted(events, key=lambda e: e.time), stats


def iter_session_requests(
        rng: np.random.Generator,
        config: TraceConfig | None = None,
        tiers: tuple[str, ...] = DEFAULT_TIER_CYCLE,
        tier_shift_prob: float = 0.0,
        shift_tier: str = "gold",
):
    """Stream the raw Poisson session demand, one request at a time.

    The generator form of :func:`sample_session_requests`: requests are
    yielded in arrival order as they are drawn, so a multi-day trace with
    millions of sessions never exists in memory — the serving loop pulls
    the next arrival only when the event clock reaches it.  Rng
    consumption is identical to the list sampler (which is literally
    ``list(iter_session_requests(...))``), so the two forms produce the
    same trace for the same ``(rng state, config)``.

    Tiers rotate through ``tiers`` in arrival order (deterministic and
    balanced, like :func:`repro.workloads.sla.assign_tiers`).  Tier-shift
    semantics: whenever ``tier_shift_prob > 0`` every session consumes
    one uniform draw, but only a session whose tier *differs* from
    ``shift_tier`` can carry a shift — with probability
    ``tier_shift_prob`` it shifts to ``shift_tier`` at a uniform point of
    its duration, while a session already in ``shift_tier`` never shifts
    (there is nothing to shift to).  The draw-then-check order means the
    no-op draw of a ``shift_tier`` session still advances the rng — part
    of the determinism contract, pinned by the trace tests.

    Arguments are validated eagerly (before the first request is drawn),
    so a bad config raises at call time, not at first iteration.
    """
    config = config if config is not None else TraceConfig()
    if not tiers:
        raise ValueError("tiers must not be empty")
    if not 0.0 <= tier_shift_prob <= 1.0:
        raise ValueError("tier_shift_prob must be within [0, 1]")

    def generate():
        t = 0.0
        index = 0
        while True:
            t += rng.exponential(1.0 / config.arrival_rate_per_s)
            if t >= config.horizon_s:
                return
            duration = rng.exponential(config.mean_session_s)
            tier = tiers[index % len(tiers)]
            shift = None
            if tier_shift_prob > 0.0 and rng.random() < tier_shift_prob \
                    and tier != shift_tier:
                shift = (float(rng.uniform(0.2, 0.8) * duration),
                         shift_tier)
            yield SessionRequest(
                session_id=index, arrival_s=float(t),
                duration_s=float(duration), tier=tier, tier_shift=shift,
            )
            index += 1

    return generate()


def sample_session_requests(
        rng: np.random.Generator,
        config: TraceConfig | None = None,
        tiers: tuple[str, ...] = DEFAULT_TIER_CYCLE,
        tier_shift_prob: float = 0.0,
        shift_tier: str = "gold",
) -> list[SessionRequest]:
    """Sample the raw Poisson session demand, with no admission applied.

    Every would-be session is returned — the serving loop's admission
    controller decides accept/queue/reject per request.  The materialised
    form of :func:`iter_session_requests` (see there for the tier
    rotation and the exact tier-shift/rng-consumption semantics); prefer
    the generator for long traces.
    """
    return list(iter_session_requests(rng, config, tiers=tiers,
                                      tier_shift_prob=tier_shift_prob,
                                      shift_tier=shift_tier))


def fleet_demand_config(config: TraceConfig, num_nodes: int) -> TraceConfig:
    """Scale a single-node trace shape to the aggregate demand of a fleet.

    Superposing ``num_nodes`` independent Poisson processes is itself a
    Poisson process with the summed rate, so the cluster-level demand a
    :mod:`repro.serve.fleet` dispatcher splits back up is simply the
    per-node config with ``arrival_rate_per_s`` (and the blind
    ``max_concurrent`` cap, for the capped samplers) multiplied by the
    node count.  Session durations and the model pool are per-session
    properties and stay untouched.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    return replace(config,
                   arrival_rate_per_s=config.arrival_rate_per_s * num_nodes,
                   max_concurrent=config.max_concurrent * num_nodes)


def split_session_requests(requests: list[SessionRequest],
                           num_nodes: int) -> list[list[SessionRequest]]:
    """Shard raw demand across ``num_nodes`` statically, round-robin.

    The dispatcher-less baseline: session ``i`` (in arrival order) lands
    on node ``i % num_nodes`` regardless of tier or load — what a DNS-
    style static splitter would do.  The fleet dispatcher's routing
    policies (:mod:`repro.serve.fleet.routing`) are measured against this
    in the docs and examples.  Every request appears in exactly one
    shard; shards preserve arrival order.
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    shards: list[list[SessionRequest]] = [[] for _ in range(num_nodes)]
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.session_id))
    for index, request in enumerate(ordered):
        shards[index % num_nodes].append(request)
    return shards


def trace_peak_concurrency(events: list[ScenarioEvent]) -> int:
    """Largest number of simultaneously active DNNs in a trace."""
    peak = 0
    live = 0
    for event in sorted(events, key=lambda e: (e.time, e.kind != "departure")):
        if event.kind == "arrival":
            live += 1
            peak = max(peak, live)
        elif event.kind == "departure":
            live -= 1
    return peak
