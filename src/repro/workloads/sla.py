"""SLA service classes over multi-DNN workloads.

Sec. I of the paper: "Users are categorized into different SLA groups,
leading to multi-DNN workloads where each DNN has a different priority
level."  This module makes that concrete: a small tier ladder
(gold/silver/bronze), a deterministic tier assignment for a workload, the
induced RankMap priority vector, and a satisfaction report over a simulated
timeline (each tier demands a minimum potential throughput P).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.dynamic import Timeline
from ..zoo.layers import ModelSpec

__all__ = [
    "SlaClass",
    "SlaAssignment",
    "SlaViolation",
    "SlaReport",
    "GOLD",
    "SILVER",
    "BRONZE",
    "SLA_TIERS",
    "assign_tiers",
    "evaluate_sla",
]


@dataclass(frozen=True)
class SlaClass:
    """One service tier: a priority weight and a minimum-P guarantee."""

    name: str
    priority: float          # relative weight fed to RankMap's p vector
    min_potential: float     # P the tier's DNNs must sustain

    def __post_init__(self):
        if self.priority <= 0:
            raise ValueError("priority must be positive")
        if not 0.0 <= self.min_potential <= 1.0:
            raise ValueError("min_potential must be within [0, 1]")


GOLD = SlaClass("gold", priority=0.7, min_potential=0.20)
SILVER = SlaClass("silver", priority=0.2, min_potential=0.08)
BRONZE = SlaClass("bronze", priority=0.1, min_potential=0.02)

#: Default tier ladder, highest first.
SLA_TIERS: tuple[SlaClass, ...] = (GOLD, SILVER, BRONZE)


@dataclass(frozen=True)
class SlaAssignment:
    """Tier per DNN name, plus the induced normalised priority vector."""

    tiers: dict[str, SlaClass]

    def tier_of(self, name: str) -> SlaClass:
        return self.tiers[name]

    def priority_vector(self, workload: list[ModelSpec]) -> np.ndarray:
        """Normalised priorities in workload order (RankMap_S input)."""
        raw = np.array([self.tiers[m.name].priority for m in workload])
        return raw / raw.sum()

    def priority_dict(self) -> dict[str, float]:
        """Un-normalised priorities by name (dynamic-scenario input)."""
        return {name: tier.priority for name, tier in self.tiers.items()}


def assign_tiers(workload: list[ModelSpec],
                 tier_of: dict[str, str] | None = None,
                 tiers: tuple[SlaClass, ...] = SLA_TIERS) -> SlaAssignment:
    """Assign a tier to every workload DNN.

    Without ``tier_of``, tiers are assigned round-robin in workload order
    starting from the highest tier — one gold DNN, then silver, bronze,
    gold, ... — a simple deterministic default for experiments.
    """
    by_name = {t.name: t for t in tiers}
    assignment: dict[str, SlaClass] = {}
    for i, model in enumerate(workload):
        if tier_of is not None:
            try:
                tier_name = tier_of[model.name]
            except KeyError:
                raise ValueError(f"no tier given for {model.name!r}") from None
            try:
                assignment[model.name] = by_name[tier_name]
            except KeyError:
                raise ValueError(f"unknown tier {tier_name!r}") from None
        else:
            assignment[model.name] = tiers[i % len(tiers)]
    return SlaAssignment(assignment)


@dataclass(frozen=True)
class SlaViolation:
    """One DNN dipping below its tier's minimum P during a segment."""

    name: str
    tier: str
    t_start: float
    t_end: float
    potential: float
    required: float


@dataclass(frozen=True)
class SlaReport:
    """Satisfaction summary of one timeline against an assignment."""

    violations: tuple[SlaViolation, ...]
    violation_seconds: float        # total time spent in violation
    observed_seconds: float         # total time DNNs were mapped
    mean_potential_by_tier: dict[str, float]

    @property
    def satisfied(self) -> bool:
        return not self.violations

    @property
    def violation_fraction(self) -> float:
        """Fraction of mapped DNN-time spent below the tier guarantee."""
        if self.observed_seconds <= 0:
            return 0.0
        return self.violation_seconds / self.observed_seconds


def evaluate_sla(timeline: Timeline, assignment: SlaAssignment,
                 settle_seconds: float = 0.0) -> SlaReport:
    """Score a timeline against per-tier minimum-P guarantees.

    ``settle_seconds`` exempts the start of the scenario — managers need
    one decision latency before the first mapping exists, and an SLA over
    that window would penalise every manager equally and uninformatively.
    """
    violations: list[SlaViolation] = []
    violation_time = 0.0
    observed_time = 0.0
    tier_acc: dict[str, list[tuple[float, float]]] = {}

    for segment in timeline.segments:
        if segment.t_end <= settle_seconds:
            continue
        start = max(segment.t_start, settle_seconds)
        duration = segment.t_end - start
        if duration <= 0:
            continue
        for name, potential in segment.potentials.items():
            tier = assignment.tiers.get(name)
            if tier is None:
                continue
            observed_time += duration
            tier_acc.setdefault(tier.name, []).append((potential, duration))
            if potential < tier.min_potential:
                violation_time += duration
                violations.append(SlaViolation(
                    name=name, tier=tier.name, t_start=start,
                    t_end=segment.t_end, potential=potential,
                    required=tier.min_potential,
                ))

    means = {
        tier_name: (sum(p * d for p, d in acc) / sum(d for _, d in acc))
        for tier_name, acc in tier_acc.items()
    }
    return SlaReport(
        violations=tuple(violations),
        violation_seconds=violation_time,
        observed_seconds=observed_time,
        mean_potential_by_tier=means,
    )
