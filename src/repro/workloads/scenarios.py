"""Dynamic scenarios: Fig. 8 staggered arrivals and Fig. 10 priority shifts.

Both paper scenarios are instances of two generic builders —
:func:`staggered_arrivals` (DNNs arriving on a fixed cadence) and
:func:`rotating_priority_schedule` (the user moving the high priority
around a fixed workload) — so downstream users can construct their own
variants with different models, cadences or priority levels.
"""

from __future__ import annotations

from ..sim.dynamic import ScenarioEvent, arrival, priority_change
from ..zoo.layers import ModelSpec
from ..zoo.registry import get_model

__all__ = [
    "FIG8_ARRIVALS",
    "FIG8_HORIZON",
    "fig8_events",
    "FIG10_WORKLOAD",
    "FIG10_STAGES",
    "FIG10_HORIZON",
    "fig10_events",
    "staggered_arrivals",
    "rotating_priority_schedule",
]

#: Fig. 8 arrival order: (time in seconds, model name).
FIG8_ARRIVALS: tuple[tuple[float, str], ...] = (
    (0.0, "inception_resnet_v1"),
    (150.0, "alexnet"),
    (300.0, "squeezenet"),
    (450.0, "resnet50"),
)
FIG8_HORIZON = 600.0

#: Fig. 10 fixed workload and its priority-rotation order.
FIG10_WORKLOAD: tuple[str, ...] = (
    "mobilenet_v2", "squeezenet", "shufflenet", "alexnet",
)
FIG10_STAGES: tuple[tuple[float, str], ...] = (
    (0.0, "mobilenet_v2"),
    (150.0, "shufflenet"),
    (300.0, "alexnet"),
    (450.0, "squeezenet"),
)
FIG10_HORIZON = 600.0


def staggered_arrivals(models: list[ModelSpec],
                       period: float = 150.0,
                       start: float = 0.0) -> list[ScenarioEvent]:
    """Arrival events for ``models`` spaced ``period`` seconds apart."""
    if period <= 0:
        raise ValueError("period must be positive")
    return [arrival(start + i * period, m) for i, m in enumerate(models)]


def rotating_priority_schedule(models: list[ModelSpec],
                               order: list[str],
                               stage_seconds: float = 150.0,
                               high: float = 0.7,
                               low: float = 0.1) -> list[ScenarioEvent]:
    """All models arrive at t=0; the ``high`` priority rotates over ``order``.

    Stage ``k`` (starting at ``k * stage_seconds``) gives ``order[k]`` the
    high priority and every other model the low one — the Fig. 10 shape.
    """
    if stage_seconds <= 0:
        raise ValueError("stage_seconds must be positive")
    names = {m.name for m in models}
    unknown = [n for n in order if n not in names]
    if unknown:
        raise ValueError(f"priority order names not in workload: {unknown}")
    events = [arrival(0.0, m) for m in models]
    for k, critical in enumerate(order):
        vector = {m.name: (high if m.name == critical else low)
                  for m in models}
        events.append(priority_change(k * stage_seconds, vector))
    return events


def fig8_events() -> list[ScenarioEvent]:
    """The paper's Fig. 8 dynamic scenario (arrivals every 150 s)."""
    return [arrival(t, get_model(name)) for t, name in FIG8_ARRIVALS]


def fig10_events(high: float = 0.7, low: float = 0.1) -> list[ScenarioEvent]:
    """The paper's Fig. 10 scenario (priority shifts every 150 s)."""
    models = [get_model(n) for n in FIG10_WORKLOAD]
    order = [critical for _, critical in FIG10_STAGES]
    return rotating_priority_schedule(models, order, stage_seconds=150.0,
                                      high=high, low=low)
