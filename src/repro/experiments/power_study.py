"""Extension study — throughput/power co-optimisation (DESIGN.md §6).

Not a paper figure: the paper optimises throughput only, and its follow-up
(MapFormer, reference [2]) adds the power axis.  This study sweeps the
power-penalty weight λ of :class:`repro.core.power.PowerAwareRankMap` over
a set of mixes and reports, per λ: average normalised throughput T, mean
board draw, and energy efficiency (inferences per joule).  Expected shape:
λ = 0 matches plain RankMap_D; growing λ sheds watts faster than
throughput (efficiency rises), until over-penalisation parks everything on
the LITTLE cluster and T collapses.  Nothing may starve at any λ.
"""

from __future__ import annotations

import numpy as np

from ..core import PowerAwareRankMap, RankMapConfig
from ..core.predictor import EstimatorPredictor
from ..hw import energy_report, orange_pi_5_power
from ..metrics import STARVATION_EPSILON, baseline_result
from ..sim import simulate
from ..utils import render_table
from ..workloads import sample_mix
from .common import ExperimentContext, ExperimentResult

__all__ = ["LAMBDAS", "run"]

#: Power-penalty weights swept (λ = 0 is power-oblivious RankMap_D).
LAMBDAS = (0.0, 0.5, 2.0, 8.0)


def run(ctx: ExperimentContext) -> ExperimentResult:
    power = orange_pi_5_power()
    predictor = EstimatorPredictor(ctx.artifacts.estimator,
                                   ctx.artifacts.embedder)
    rng = np.random.default_rng(ctx.preset.seed + 77)
    mixes = [sample_mix(rng, 3) for _ in range(ctx.preset.mixes_per_size)]

    rows: list[list] = []
    by_lambda: dict[float, dict[str, float]] = {}
    for lam in LAMBDAS:
        manager = PowerAwareRankMap(
            ctx.platform, predictor, power,
            # Aggressive power penalties concentrate MCTS's candidates in
            # low-power corners; a wider validated set keeps a
            # starvation-clearing option on the table.
            RankMapConfig(mode="dynamic", mcts=ctx.mcts_config(500),
                          board_validation_top_k=8),
            objective="penalty", power_weight=lam,
        )
        norm_t, watts, eff, min_p = [], [], [], []
        for mix in mixes:
            decision = manager.plan(mix)
            result = simulate(mix, decision.mapping, ctx.platform)
            report = energy_report(mix, decision.mapping, ctx.platform,
                                   power)
            base = baseline_result(mix, ctx.platform)
            norm_t.append(result.average_throughput
                          / max(base.average_throughput, 1e-12))
            watts.append(report.system_watts)
            eff.append(report.inferences_per_joule)
            min_p.append(float(result.potentials.min()))
        summary = {
            "norm_t": float(np.mean(norm_t)),
            "watts": float(np.mean(watts)),
            "inf_per_j": float(np.mean(eff)),
            "min_p": float(np.min(min_p)),
        }
        by_lambda[lam] = summary
        rows.append([lam, summary["norm_t"], summary["watts"],
                     summary["inf_per_j"], summary["min_p"],
                     "yes" if summary["min_p"] < STARVATION_EPSILON
                     else "no"])

    frugal = by_lambda[LAMBDAS[-1]]
    plain = by_lambda[0.0]
    text = "\n\n".join([
        render_table(
            ["lambda", "norm_T", "board_W", "inf_per_J", "min_P",
             "starved"],
            rows,
            title="Extension: power-aware RankMap, penalty-weight sweep"),
        (f"largest lambda saves "
         f"{(1 - frugal['watts'] / plain['watts']):.0%} board power "
         f"at {(1 - frugal['norm_t'] / max(plain['norm_t'], 1e-12)):.0%} "
         "normalised-throughput cost (extension; no paper reference "
         "values)"),
    ])
    return ExperimentResult(
        experiment="power_study",
        headers=["lambda", "norm_T", "board_W", "inf_per_J", "min_P",
                 "starved"],
        rows=rows, text=text, extras={"by_lambda": by_lambda},
    )
