"""Extension study — analytical vs. discrete-event cross-validation.

Not a paper figure: the paper measures on a physical board, so its numbers
validate themselves.  Our substitute is an analytical fluid model, and
this study quantifies how much of its output survives a change of
modelling paradigm.  Random mappings of the Sec. II workload are executed
by both engines; we report per-DNN rate deviation, the correlation of
average-throughput orderings (the signal every manager consumes), and the
end-to-end latency percentiles only the event simulation can produce.
"""

from __future__ import annotations

import numpy as np

from ..estimator.metrics import spearman_r
from ..mapping import gpu_only_mapping, random_partition_mapping
from ..metrics import pearson_r
from ..sim import DesConfig, simulate, simulate_des
from ..utils import render_table
from ..workloads import motivation_workload
from .common import ExperimentContext, ExperimentResult

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    workload = motivation_workload()
    rng = np.random.default_rng(ctx.preset.seed + 99)
    num_mappings = max(10, ctx.preset.motivation_mappings // 10)

    analytical_t, des_t, deviations = [], [], []
    for _ in range(num_mappings):
        mapping = random_partition_mapping(
            workload, ctx.platform.num_components, rng)
        a = simulate(workload, mapping, ctx.platform).rates
        d = simulate_des(workload, mapping, ctx.platform).rates
        analytical_t.append(float(a.mean()))
        des_t.append(float(d.mean()))
        deviations.append(np.abs(d - a) / np.maximum(a, 1e-9))

    analytical_t = np.array(analytical_t)
    des_t = np.array(des_t)
    mean_dev = float(np.mean(deviations))
    rho = spearman_r(analytical_t, des_t)
    r = pearson_r(analytical_t, des_t)

    rows: list[list] = [
        ["mappings_compared", num_mappings, ""],
        ["mean_abs_rate_deviation", mean_dev, "per-DNN, relative"],
        ["throughput_spearman", rho, "ordering agreement"],
        ["throughput_pearson", r, ""],
    ]

    # Latency percentiles (event simulation only) for the GPU baseline.
    base = gpu_only_mapping(workload)
    des_base = simulate_des(workload, base, ctx.platform,
                            DesConfig(horizon_s=40.0, warmup_s=8.0))
    latency_rows = [
        [name,
         des_base.latency_percentile(name, 50),
         des_base.latency_percentile(name, 95),
         des_base.latency_percentile(name, 99)]
        for name in des_base.workload_names
    ]

    text = "\n\n".join([
        render_table(["metric", "value", "note"], rows,
                     title=("Extension: analytical vs discrete-event "
                            "cross-validation (Sec. II workload)")),
        render_table(["dnn", "p50_s", "p95_s", "p99_s"], latency_rows,
                     title="End-to-end latency, all-on-GPU baseline "
                           "(event simulation)"),
        ("agreement targets: mean deviation < 0.25, ordering Spearman "
         "> 0.8 (asserted in tests/test_sim_des.py)"),
    ])
    return ExperimentResult(
        experiment="des_validation",
        headers=["metric", "value", "note"],
        rows=rows, text=text,
        extras={"analytical_t": analytical_t, "des_t": des_t,
                "mean_deviation": mean_dev, "spearman": rho},
    )
