"""CLI entry point: ``python -m repro.experiments [ids...] [--preset fast]``.

Examples
--------
    python -m repro.experiments fig1 fig2
    python -m repro.experiments all --preset fast --results results/
"""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS, ExperimentContext, run_experiment
from .common import PRESETS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiments", nargs="+",
                        help=f"experiment ids ({', '.join(EXPERIMENTS)}) "
                             "or 'all'")
    parser.add_argument("--preset", default="fast", choices=sorted(PRESETS),
                        help="scaling preset (default: fast)")
    parser.add_argument("--results", default="results",
                        help="output directory (default: results/)")
    parser.add_argument("--no-cache", action="store_true",
                        help="retrain artifacts instead of loading the cache")
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")

    ctx = ExperimentContext(preset=args.preset, results_dir=args.results,
                            use_artifact_cache=not args.no_cache)
    for name in names:
        t0 = time.perf_counter()
        result = run_experiment(name, ctx)
        elapsed = time.perf_counter() - t0
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(result.text)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
