"""Sec. V estimator-training result: channel-shuffle augmentation ablation.

The paper trains the multi-task estimator to an L2 loss of ~0.14 after 50
epochs and reports that random channel shuffling as augmentation further
reduces it to ~0.08.  This experiment trains two estimators on the same
dataset — with and without the augmentation — and reports the validation
L2 (log1p target space) plus rank quality (Spearman), which is the property
MCTS actually relies on.
"""

from __future__ import annotations

import numpy as np

from ..estimator import (
    EstimatorConfig,
    EstimatorTrainConfig,
    ThroughputEstimator,
    generate_dataset,
    train_estimator,
)
from ..utils import render_table
from .common import ExperimentContext, ExperimentResult

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    preset = ctx.preset
    rng = np.random.default_rng(preset.seed + 7)
    config = EstimatorConfig()
    # The ablation compares two trainings, so its cost is capped via the
    # dataset size; epochs are NOT capped low because augmentation needs
    # training length to pay off: at 600 samples the shuffled variant
    # overtakes the plain one between epoch 12 and 18 (before that it is
    # still underfitting the harder augmented objective while the plain
    # model is already overfitting slot identity).
    if preset.name == "paper":
        samples, epochs = preset.dataset_samples, preset.estimator_epochs
    else:
        samples = min(max(preset.dataset_samples // 2, 40), 600)
        epochs = max(6, min(18, preset.estimator_epochs * 3 // 2))
    dataset = generate_dataset(ctx.platform, rng, samples, config)
    embedder = ctx.artifacts.embedder

    rows: list[list] = []
    for shuffle in (False, True):
        model = ThroughputEstimator(np.random.default_rng(preset.seed + 11),
                                    config)
        report = train_estimator(
            model, dataset, embedder,
            EstimatorTrainConfig(epochs=epochs, channel_shuffle=shuffle,
                                 seed=preset.seed),
        )
        rows.append([
            "with_shuffle" if shuffle else "no_shuffle",
            float(report.final_val_loss),
            float(report.val_spearman),
            float(report.train_loss[-1]),
        ])

    improvement = rows[0][1] / max(rows[1][1], 1e-9)
    text = "\n\n".join([
        render_table(
            ["augmentation", "val_l2", "val_spearman", "train_l2"], rows,
            title="Estimator training: channel-shuffle ablation"),
        f"shuffle improves val L2 by x{improvement:.2f} "
        "(paper: 0.14 -> 0.08, i.e. x1.75)",
    ])
    return ExperimentResult(
        experiment="estimator_table",
        headers=["augmentation", "val_l2", "val_spearman", "train_l2"],
        rows=rows, text=text, extras={"improvement": improvement},
    )
