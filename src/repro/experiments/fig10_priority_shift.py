"""Fig. 10 — RankMap_S tracking user priority shifts.

Workload: MobileNet-V2, SqueezeNet-V1, ShuffleNet, AlexNet, all present
from t=0.  Every 150 s the user moves the 0.7 priority to another DNN
(MobileNet-V2 -> ShuffleNet -> AlexNet -> SqueezeNet); RankMap_S re-maps
after each shift (the decision gap is visible as the paper's dashed grey
lines).  Expected: after each stage the newly critical DNN's P rises, and
no DNN ever starves.
"""

from __future__ import annotations

import numpy as np

from ..metrics import STARVATION_EPSILON
from ..sim import run_dynamic_scenario
from ..utils import render_table
from ..workloads import (
    FIG10_HORIZON,
    FIG10_STAGES,
    FIG10_WORKLOAD,
    fig10_events,
)
from .common import ExperimentContext, ExperimentResult

__all__ = ["WORKLOAD", "STAGES", "run"]

WORKLOAD = FIG10_WORKLOAD
#: (stage start time, critical DNN) — the paper's rotation order.
STAGES = FIG10_STAGES
HORIZON = FIG10_HORIZON


def run(ctx: ExperimentContext) -> ExperimentResult:
    manager = ctx.managers()["rankmap_s"]

    def planner(workload, priorities):
        return manager.plan(workload, priorities)

    timeline = run_dynamic_scenario(fig10_events(), planner, ctx.platform,
                                    HORIZON)

    rows: list[list] = []
    stage_bounds = [*(t for t, _ in STAGES), HORIZON]
    ever_starved = False
    for (start, critical), end in zip(STAGES, stage_bounds[1:]):
        # Sample mid-stage, past the re-mapping gap.
        probe = min(start + 100.0, (start + end) / 2 + 40.0)
        for name in WORKLOAD:
            p = timeline.potential_at(name, probe)
            p = float("nan") if p is None else p
            if p < STARVATION_EPSILON:
                ever_starved = True
            rows.append([f"{start:.0f}-{end:.0f}s", critical, name, p,
                         "<-- critical" if name == critical else ""])

    text = "\n\n".join([
        render_table(["stage", "critical", "dnn", "P", ""], rows,
                     title="Fig. 10: RankMap_S under user priority shifts"),
        f"any starvation observed: {'YES' if ever_starved else 'no'} "
        "(paper: none)",
    ])
    sample_times = np.arange(0.0, HORIZON, 10.0)
    series = {n: timeline.potential_series(n, sample_times) for n in WORKLOAD}
    return ExperimentResult(experiment="fig10_priority_shift",
                            headers=["stage", "critical", "dnn", "P", "note"],
                            rows=rows, text=text,
                            extras={"series": series,
                                    "sample_times": sample_times,
                                    "ever_starved": ever_starved})
