"""Fig. 5 — normalised throughput T across mixes of 3/4/5 DNNs.

For every mix and manager, T is the mean per-DNN rate normalised by the
all-on-GPU baseline of the same mix.  The paper's headline: RankMap_D
achieves the best average T (x3.6 over the baseline at 4 DNNs, x1.2 over
OmniBoost); RankMap_S trails RankMap_D by ~15 %.  In this reproduction
OmniBoost shares RankMap's (strong) predictor instead of its own weaker
estimator, so it is expected to win raw T by sacrificing DNNs — the
deviation is recorded in EXPERIMENTS.md; the structural claims (RankMap ≫
Baseline/MOSAIC/ODMDEF, starvation-free throughput) are asserted by the
integration tests.
"""

from __future__ import annotations

import numpy as np

from ..utils import render_table
from .common import ExperimentContext, ExperimentResult
from .mix_study import MANAGER_ORDER, run_mix_study

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = run_mix_study(ctx)
    headers = ["size", "mix", *MANAGER_ORDER]
    rows: list[list] = []
    for outcome in study.outcomes:
        rows.append([
            outcome.size, outcome.mix_index,
            *(outcome.normalized_throughput(m) for m in MANAGER_ORDER),
        ])

    # Per-size averages (the paper's "Average" bars).
    avg_rows = []
    for size in study.sizes:
        outcomes = study.by_size(size)
        avg_rows.append([
            size, "avg",
            *(float(np.mean([o.normalized_throughput(m) for o in outcomes]))
              for m in MANAGER_ORDER),
        ])
    rows.extend(avg_rows)

    # RankMap_D improvement ratios (paper at 4 DNNs: x3.6 baseline,
    # x2.2 MOSAIC, x2.1 ODMDEF, x1.6 GA, x1.2 OmniBoost).
    ratio_lines = []
    for size, avg in zip(study.sizes, avg_rows):
        values = dict(zip(MANAGER_ORDER, avg[2:]))
        ratios = {m: values["rankmap_d"] / values[m]
                  for m in MANAGER_ORDER if m != "rankmap_d"}
        pretty = "  ".join(f"{m}:x{r:.2f}" for m, r in ratios.items())
        ratio_lines.append(f"{size} DNNs - rankmap_d vs {pretty}")

    text = "\n\n".join([
        render_table(headers, rows,
                     title="Fig. 5: normalized throughput T per mix"),
        "RankMap_D average-T ratios:\n" + "\n".join(ratio_lines),
    ])
    return ExperimentResult(experiment="fig05_throughput", headers=headers,
                            rows=rows, text=text,
                            extras={"ratio_lines": ratio_lines})
