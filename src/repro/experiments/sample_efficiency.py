"""Extension study — estimator sample efficiency (Table I, "fast training").

Table I credits RankMap (and OmniBoost) with "fast training" and faults
ODMDEF for needing "a considerable amount of data to achieve reliable
accuracy".  This study makes that row quantitative on our substrate:

* the multi-task estimator is trained on growing dataset sizes and scored
  by validation Spearman rank correlation — the property MCTS consumes
  (L2 is reported too);
* ODMDEF's internal linear-regression layer-cost model is fit on growing
  profiling budgets and scored by the relative error of its rate
  predictions on the same held-out workloads.

Expected shape: the estimator's ranking quality rises quickly and
saturates (it only has to *order* mappings), while the regression needs
far more data to pin down absolute layer costs — the asymmetry behind the
paper's qualitative claim.
"""

from __future__ import annotations

import numpy as np

from ..baselines import Odmdef
from ..estimator import (
    EstimatorConfig,
    EstimatorTrainConfig,
    ThroughputEstimator,
    evaluate_estimator,
    generate_dataset,
    train_estimator,
)
from ..sim import simulate
from ..utils import render_table
from ..workloads import sample_mix
from .common import ExperimentContext, ExperimentResult

__all__ = ["run"]


def _estimator_curve(ctx: ExperimentContext, sizes: list[int],
                     epochs: int) -> list[tuple[int, float, float]]:
    """(size, val_l2, val_spearman) per training-set size."""
    preset = ctx.preset
    config = EstimatorConfig()
    embedder = ctx.artifacts.embedder
    rng = np.random.default_rng(preset.seed + 13)
    full = generate_dataset(ctx.platform, rng, max(sizes), config)

    points = []
    for size in sizes:
        subset = type(full)(full.samples[:size], config)
        model = ThroughputEstimator(
            np.random.default_rng(preset.seed + 17), config)
        report = train_estimator(
            model, subset, embedder,
            EstimatorTrainConfig(epochs=epochs, seed=preset.seed))
        points.append((size, float(report.final_val_loss),
                       float(report.val_spearman)))
    return points


def _odmdef_curve(ctx: ExperimentContext, budgets: list[int]
                  ) -> list[tuple[int, float]]:
    """(profiling runs, mean relative rate-prediction error) per budget."""
    preset = ctx.preset
    rng = np.random.default_rng(preset.seed + 19)
    probes = [sample_mix(rng, 3) for _ in range(6)]

    points = []
    for budget in budgets:
        manager = Odmdef(ctx.platform, profiling_runs=budget,
                         seed=preset.seed)
        errors = []
        for mix in probes:
            decision = manager.plan(mix)
            predicted = manager.last_predicted_rates
            if predicted is None:
                continue
            actual = simulate(mix, decision.mapping, ctx.platform).rates
            errors.append(np.abs(predicted - actual)
                          / np.maximum(actual, 1e-9))
        points.append((budget, float(np.mean(errors)) if errors
                       else float("nan")))
    return points


def run(ctx: ExperimentContext) -> ExperimentResult:
    preset = ctx.preset
    top = max(120, min(preset.dataset_samples, 1200))
    sizes = sorted({max(40, top // 8), max(80, top // 4),
                    max(120, top // 2), top})
    epochs = min(preset.estimator_epochs, 8)
    budgets = sorted({max(6, preset.odmdef_profiling_runs // 8),
                      max(12, preset.odmdef_profiling_runs // 2),
                      max(24, preset.odmdef_profiling_runs)})

    est_points = _estimator_curve(ctx, sizes, epochs)
    odm_points = _odmdef_curve(ctx, budgets)

    rows: list[list] = []
    for size, l2, rho in est_points:
        rows.append(["rankmap_estimator", size, l2, rho, ""])
    for budget, err in odm_points:
        rows.append(["odmdef_regression", budget, "", "", err])

    half_budget_rho = est_points[len(est_points) // 2][2]
    text = "\n\n".join([
        render_table(
            ["model", "train_samples", "val_l2", "val_spearman",
             "rate_rel_err"],
            rows,
            title="Extension: sample efficiency (Table I 'fast training' "
                  "row, quantified)"),
        (f"estimator reaches Spearman {half_budget_rho:.2f} at half "
         f"budget; ODMDEF regression error over budgets: "
         + ", ".join(f"{b}->{e:.2f}" for b, e in odm_points)),
    ])
    return ExperimentResult(
        experiment="sample_efficiency",
        headers=["model", "train_samples", "val_l2", "val_spearman",
                 "rate_rel_err"],
        rows=rows, text=text,
        extras={"estimator": est_points, "odmdef": odm_points},
    )
