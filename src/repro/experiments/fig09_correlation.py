"""Fig. 9 — Pearson correlation of P with the priority vector (RankMap_D).

For every mix of the study, correlates the achieved potential vector with
the demand-derived dynamic priorities.  Paper averages: r = 0.85 (3 DNNs),
0.72 (4 DNNs), 0.44 (5 DNNs) — positive everywhere, degrading as the
platform saturates and RankMap_D deviates from the priorities to keep
every DNN alive.
"""

from __future__ import annotations

import numpy as np

from ..metrics import pearson_r
from ..utils import render_table
from .common import ExperimentContext, ExperimentResult
from .mix_study import run_mix_study

__all__ = ["run"]

_PAPER_AVG = {3: 0.85, 4: 0.72, 5: 0.44}


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = run_mix_study(ctx)
    headers = ["size", "mix", "pearson_r"]
    rows: list[list] = []
    avg_rows: list[list] = []
    for size in study.sizes:
        values = []
        for outcome in study.by_size(size):
            r = pearson_r(outcome.results["rankmap_d"].potentials,
                          outcome.dynamic_priorities)
            rows.append([size, outcome.mix_index, r])
            values.append(r)
        avg_rows.append([size, "avg", float(np.mean(values))])
    rows.extend(avg_rows)

    paper_note = "  ".join(
        f"{s}DNNs: ours {row[2]:.2f} vs paper {_PAPER_AVG[s]}"
        for s, row in zip(study.sizes, avg_rows)
    )
    text = "\n\n".join([
        render_table(headers, rows,
                     title="Fig. 9: Pearson r between P and priorities p "
                           "(RankMap_D)"),
        paper_note,
    ])
    return ExperimentResult(experiment="fig09_correlation", headers=headers,
                            rows=rows, text=text,
                            extras={"averages": avg_rows})
