"""Fig. 2 — potential throughput P distribution per DNN (Sec. II).

Same 300 random mappings as Fig. 1; reports the per-DNN quartiles of P.
The paper's key readings: Inception-V4's mean P is around 0.1 (the most
starvation-prone model) and more than 60 % of all DNN instances sit at
P <= 0.2.
"""

from __future__ import annotations

import numpy as np

from ..mapping import random_partition_mapping
from ..metrics import baseline_result
from ..sim import simulate
from ..utils import render_table
from ..workloads import MOTIVATION_WORKLOAD, motivation_workload
from .common import ExperimentContext, ExperimentResult

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    workload = motivation_workload()
    baseline_result(workload, ctx.platform)  # warm latency caches
    rng = np.random.default_rng(ctx.preset.seed + 1)

    potentials = []
    for _ in range(ctx.preset.motivation_mappings):
        mapping = random_partition_mapping(
            workload, ctx.platform.num_components, rng)
        potentials.append(simulate(workload, mapping, ctx.platform).potentials)
    potentials = np.stack(potentials)  # (mappings, dnns)

    rows = []
    for i, name in enumerate(MOTIVATION_WORKLOAD):
        col = potentials[:, i]
        rows.append([
            name, float(col.mean()), float(np.percentile(col, 25)),
            float(np.median(col)), float(np.percentile(col, 75)),
            float(col.max()),
        ])
    frac_low = float((potentials <= 0.2).mean())
    rows.append(["ALL<=0.2_frac", frac_low, "", "", "", ""])

    inception_mean = potentials[:, 1].mean()
    text = render_table(
        ["dnn", "mean", "q25", "median", "q75", "max"], rows,
        title=("Fig. 2: potential P per DNN over random mappings "
               f"(paper: Inception-V4 mean ~0.1, ours {inception_mean:.2f}; "
               f"paper >60% of DNNs at P<=0.2, ours {frac_low:.0%})"),
    )
    return ExperimentResult(
        experiment="fig02_potential",
        headers=["dnn", "mean", "q25", "median", "q75", "max"],
        rows=rows, text=text, extras={"potentials": potentials},
    )
