"""Fig. 8 — dynamic 4-DNN arrival scenario: RankMap_D vs OmniBoost.

Arrivals every 150 s: Inception-ResNet-V1 (t=0), AlexNet (t=150),
SqueezeNet-V1 (t=300), ResNet-50 (t=450); horizon 600 s.  The paper's
reading: both managers serve Inception at ideal throughput while alone;
as the system oversubscribes, OmniBoost ends with the higher average T
(18 vs 14 inf/s) but starves Inception and ResNet-50, while RankMap_D
keeps every DNN progressing.
"""

from __future__ import annotations

import numpy as np

from ..metrics import STARVATION_EPSILON
from ..sim import run_dynamic_scenario
from ..utils import render_table
from ..workloads import FIG8_ARRIVALS, FIG8_HORIZON, fig8_events
from .common import ExperimentContext, ExperimentResult

__all__ = ["ARRIVALS", "run"]

ARRIVALS = FIG8_ARRIVALS
HORIZON = FIG8_HORIZON


def run(ctx: ExperimentContext) -> ExperimentResult:
    managers = ctx.managers()
    sample_times = np.arange(0.0, HORIZON, 10.0)
    rows: list[list] = []
    series: dict[str, dict[str, np.ndarray]] = {}
    summaries: list[str] = []

    for manager_name in ("rankmap_d", "omniboost"):
        manager = managers[manager_name]

        def planner(workload, priorities, m=manager):
            return m.plan(workload, priorities)

        timeline = run_dynamic_scenario(fig8_events(), planner,
                                        ctx.platform, HORIZON)
        series[manager_name] = {}
        starved_names = []
        for _, dnn in ARRIVALS:
            s = timeline.potential_series(dnn, sample_times)
            series[manager_name][dnn] = s
            final = timeline.final_potentials().get(dnn, float("nan"))
            min_p = timeline.min_potential(dnn)
            end_starved = final < STARVATION_EPSILON
            if end_starved:
                starved_names.append(dnn)
            rows.append([manager_name, dnn, float(min_p), float(final),
                         "yes" if end_starved else "no"])
        avg_t = timeline.time_average_throughput()
        rows.append([manager_name, "TIME_AVG_T", avg_t, "", ""])
        summaries.append(
            f"{manager_name}: time-avg T={avg_t:.2f} inf/s, "
            f"starved at end: {starved_names or 'none'}"
        )

    text = "\n\n".join([
        render_table(["manager", "dnn", "min_P", "final_P", "starved_at_end"],
                     rows, title="Fig. 8: dynamic arrival scenario"),
        "\n".join(summaries),
        "(paper: OmniBoost T=18 vs RankMap_D T=14, but OmniBoost starves "
        "Inception-ResNet-V1 and ResNet-50 once oversubscribed)",
    ])
    return ExperimentResult(experiment="fig08_dynamic",
                            headers=["manager", "dnn", "min_P", "final_P",
                                     "starved_at_end"],
                            rows=rows, text=text,
                            extras={"series": series,
                                    "sample_times": sample_times})
