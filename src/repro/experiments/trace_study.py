"""Extension study — edge-data-center traces scored against SLA tiers.

The paper's introduction motivates RankMap with edge data centers where
users in different SLA groups submit DNN queries, but its evaluation uses
fixed mixes and two scripted scenarios.  This study closes that loop:
Poisson session traces (arrivals/departures) are replayed through three
managers, every DNN carries a gold/silver/bronze tier, and each timeline
is scored by the tiers' minimum-potential guarantees.  Expected shape:
RankMap_S has the lowest violation fraction and the highest gold-tier mean
P; the all-on-GPU baseline violates the most; OmniBoost sits between on
violations but below RankMap on the gold tier (it has no priority signal).
"""

from __future__ import annotations

import numpy as np

from ..core.predictor import EstimatorPredictor
from ..core import RankMap, RankMapConfig
from ..baselines import GpuBaseline, OmniBoost
from ..sim import run_dynamic_scenario
from ..utils import render_table
from ..workloads import (
    TraceConfig,
    assign_tiers,
    evaluate_sla,
    poisson_trace,
)
from .common import ExperimentContext, ExperimentResult

__all__ = ["run"]

#: Light-to-mid pool so a trace's concurrent set stays schedulable.
TRACE_POOL = ("alexnet", "squeezenet", "squeezenet_v2", "mobilenet",
              "mobilenet_v2", "shufflenet", "resnet12", "googlenet")


def _managers(ctx: ExperimentContext) -> dict:
    predictor = EstimatorPredictor(ctx.artifacts.estimator,
                                   ctx.artifacts.embedder)
    return {
        "baseline": GpuBaseline(),
        "omniboost": OmniBoost(ctx.platform, predictor,
                               ctx.mcts_config(600)),
        "rankmap_s": RankMap(
            ctx.platform, predictor,
            RankMapConfig(mode="static", mcts=ctx.mcts_config(700),
                          board_validation_top_k=4)),
    }


def run(ctx: ExperimentContext) -> ExperimentResult:
    preset = ctx.preset
    num_traces = max(1, preset.mixes_per_size // 2)
    config = TraceConfig(horizon_s=480.0, arrival_rate_per_s=1 / 40,
                         mean_session_s=200.0, max_concurrent=4,
                         pool=TRACE_POOL)

    rows: list[list] = []
    summary: dict[str, dict[str, float]] = {}
    for name, manager in _managers(ctx).items():
        violation_fracs, gold_means, starved = [], [], 0
        for t in range(num_traces):
            rng = np.random.default_rng(preset.seed + 1000 + t)
            events = poisson_trace(rng, config)
            if not events:
                continue
            models = {e.model.name: e.model for e in events
                      if e.model is not None}
            assignment = assign_tiers(list(models.values()))

            def planner(workload, priorities, m=manager, a=assignment):
                vector = np.array([a.tiers[x.name].priority
                                   for x in workload])
                return m.plan(workload, vector)

            timeline = run_dynamic_scenario(events, planner, ctx.platform,
                                            config.horizon_s)
            report = evaluate_sla(timeline, assignment, settle_seconds=30.0)
            violation_fracs.append(report.violation_fraction)
            gold_means.append(report.mean_potential_by_tier.get("gold",
                                                                np.nan))
            from ..metrics import STARVATION_EPSILON

            for segment in timeline.segments:
                if segment.t_start < 30.0:
                    continue
                starved += sum(p < STARVATION_EPSILON
                               for p in segment.potentials.values())
        summary[name] = {
            "violation_frac": float(np.mean(violation_fracs)),
            "gold_mean_p": float(np.nanmean(gold_means)),
            "starved_segments": starved,
        }
        rows.append([name, summary[name]["violation_frac"],
                     summary[name]["gold_mean_p"], starved])

    best = min(summary, key=lambda k: summary[k]["violation_frac"])
    text = "\n\n".join([
        render_table(
            ["manager", "sla_violation_frac", "gold_mean_P",
             "starved_segments"],
            rows,
            title=(f"Extension: {num_traces} Poisson edge traces vs SLA "
                   "tiers (gold/silver/bronze)")),
        (f"lowest violation fraction: {best} "
         "(expected: rankmap_s; extension — no paper reference values)"),
    ])
    return ExperimentResult(
        experiment="trace_study",
        headers=["manager", "sla_violation_frac", "gold_mean_P",
                 "starved_segments"],
        rows=rows, text=text, extras={"summary": summary},
    )
