"""Fig. 1 — motivation: normalised T of random mappings vs the baseline.

Reproduces Sec. II: 300 random partition+assignment mappings of the
{SqueezeNet-V2, Inception-V4, ResNet-50, VGG-16} workload, the histogram of
average throughput T normalised by the all-on-GPU baseline, split into
mappings with and without a starved DNN, plus the headline statistics
(paper: 91 % beat the baseline; 30.2 % starve at least one DNN).
"""

from __future__ import annotations

import numpy as np

from ..mapping import random_partition_mapping
from ..metrics import STARVATION_EPSILON, baseline_result
from ..sim import simulate
from ..utils import render_histogram, render_table
from ..workloads import MOTIVATION_WORKLOAD, motivation_workload
from .common import ExperimentContext, ExperimentResult

__all__ = ["MOTIVATION_WORKLOAD", "run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    workload = motivation_workload()
    base = baseline_result(workload, ctx.platform)
    rng = np.random.default_rng(ctx.preset.seed + 1)

    normalized = []
    starved_flags = []
    for _ in range(ctx.preset.motivation_mappings):
        mapping = random_partition_mapping(
            workload, ctx.platform.num_components, rng)
        result = simulate(workload, mapping, ctx.platform)
        normalized.append(result.average_throughput / base.average_throughput)
        starved_flags.append(bool(
            (result.potentials < STARVATION_EPSILON).any()))
    normalized = np.asarray(normalized)
    starved_flags = np.asarray(starved_flags)

    beat = float((normalized > 1.0).mean())
    starve = float(starved_flags.mean())
    hi = normalized >= 2.4
    starve_hi = float(starved_flags[hi].mean()) if hi.any() else float("nan")

    rows = [
        ["mappings", len(normalized), "300", ""],
        ["beat_baseline_frac", beat, "0.91", "key observation 1"],
        ["starving_frac", starve, "0.302", "key observation 2"],
        ["starving_frac_T>=2.4", starve_hi, "~1.0", "key observation 2"],
        ["median_T_norm", float(np.median(normalized)), "~1.5", ""],
        ["max_T_norm", float(normalized.max()), "~4", "front steeper here"],
    ]
    text = "\n\n".join([
        render_table(["metric", "measured", "paper", "note"], rows,
                     title="Fig. 1 statistics (random mappings vs baseline)"),
        render_histogram(normalized[~starved_flags], bins=12,
                         title="Normalized T histogram (no DNN starved)"),
        render_histogram(normalized[starved_flags], bins=12,
                         title="Normalized T histogram (>=1 DNN starved)"),
    ])
    return ExperimentResult(
        experiment="fig01_motivation",
        headers=["metric", "measured", "paper", "note"],
        rows=rows, text=text,
        extras={"normalized": normalized, "starved": starved_flags},
    )
