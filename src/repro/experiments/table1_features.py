"""Table I — qualitative comparison of managers.

The table is the paper's capability matrix; the entries for *our*
implementations are derived from the code (e.g. RankMap's priority support
is real because ``RankMap.plan`` consumes a priority vector; OmniBoost's
lack of starvation guarantees is real because its reward has no threshold).
"""

from __future__ import annotations

from ..utils import render_table
from .common import ExperimentContext, ExperimentResult

__all__ = ["run", "FEATURES"]

# feature -> manager -> supported
FEATURES: dict[str, dict[str, bool]] = {
    "single_dnn": {"mosaic": True, "odmdef": True, "ga": True,
                   "omniboost": True, "rankmap": True},
    "multi_dnn": {"mosaic": False, "odmdef": False, "ga": True,
                  "omniboost": True, "rankmap": True},
    "dnn_partitioning": {"mosaic": True, "odmdef": True, "ga": True,
                         "omniboost": True, "rankmap": True},
    "high_throughput": {"mosaic": True, "odmdef": True, "ga": True,
                        "omniboost": True, "rankmap": True},
    "priority_aware": {"mosaic": False, "odmdef": False, "ga": False,
                       "omniboost": False, "rankmap": True},
    "fast_training": {"mosaic": False, "odmdef": False, "ga": False,
                      "omniboost": True, "rankmap": True},
    "no_starvation": {"mosaic": False, "odmdef": False, "ga": False,
                      "omniboost": False, "rankmap": True},
}

_MANAGERS = ("mosaic", "odmdef", "ga", "omniboost", "rankmap")


def run(ctx: ExperimentContext) -> ExperimentResult:
    del ctx  # static table; context unused
    headers = ["feature", *_MANAGERS]
    rows = []
    for feature, support in FEATURES.items():
        rows.append([feature] + ["yes" if support[m] else "no"
                                 for m in _MANAGERS])
    text = render_table(headers, rows,
                        title="Table I: qualitative manager comparison")
    return ExperimentResult(experiment="table1_features", headers=headers,
                            rows=rows, text=text)
