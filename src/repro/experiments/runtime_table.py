"""Sec. V-D — run-time (decision latency) comparison.

Reports, for one 4-DNN workload, both the *modeled on-device* decision
latency (what the paper measures on the Orange Pi 5: Baseline ≈ instant,
MOSAIC/ODMDEF ≈ 1 s, OmniBoost/RankMap ≈ 30 s, GA slowest because every
chromosome is measured on the board) and the wall-clock of this
reproduction's implementation.
"""

from __future__ import annotations

from ..utils import render_table
from ..zoo import get_model
from .common import ExperimentContext, ExperimentResult
from .mix_study import MANAGER_ORDER

__all__ = ["RUNTIME_WORKLOAD", "run"]

RUNTIME_WORKLOAD = ("squeezenet_v2", "inception_v4", "resnet50", "vgg16")

_PAPER_NOTES = {
    "baseline": "fastest (direct GPU mapping)",
    "mosaic": "~1 s",
    "odmdef": "~1 s",
    "ga": "slowest: per-chromosome board runs",
    "omniboost": "~30 s",
    "rankmap_s": "~30 s",
    "rankmap_d": "~30 s",
}


def run(ctx: ExperimentContext) -> ExperimentResult:
    workload = [get_model(n) for n in RUNTIME_WORKLOAD]
    managers = ctx.managers()
    import numpy as np

    priorities = np.full(len(workload), 1.0 / len(workload))

    rows: list[list] = []
    for name in MANAGER_ORDER:
        manager = managers[name]
        decision = manager.plan(workload, priorities)
        rows.append([
            name,
            float(decision.decision_seconds),
            float(manager.last_wall_seconds),
            _PAPER_NOTES[name],
        ])

    modeled = {r[0]: r[1] for r in rows}
    ordering_ok = (
        modeled["baseline"] < modeled["mosaic"] <= modeled["odmdef"]
        < modeled["rankmap_d"] < modeled["ga"]
    )
    text = "\n\n".join([
        render_table(
            ["manager", "modeled_board_s", "wall_clock_s", "paper"],
            rows, title="Sec. V-D: decision latency per manager"),
        f"paper ordering (baseline < mosaic/odmdef < rankmap ~ omniboost "
        f"< ga) holds: {'yes' if ordering_ok else 'NO'}",
    ])
    return ExperimentResult(
        experiment="runtime_table",
        headers=["manager", "modeled_board_s", "wall_clock_s", "paper"],
        rows=rows, text=text, extras={"ordering_ok": ordering_ok},
    )
