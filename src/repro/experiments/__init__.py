"""Experiment suite: one module per paper figure/table (see DESIGN.md)."""

from . import (
    des_validation,
    estimator_table,
    fig01_motivation,
    fig02_potential,
    fig05_throughput,
    fig06_priority,
    fig07_starvation,
    fig08_dynamic,
    fig09_correlation,
    fig10_priority_shift,
    power_study,
    runtime_table,
    sample_efficiency,
    table1_features,
    trace_study,
)
from .common import PRESETS, ExperimentContext, ExperimentResult

__all__ = [
    "PRESETS",
    "ExperimentContext",
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
]

#: Registry: experiment id -> module with a ``run(ctx)`` function.
EXPERIMENTS = {
    "fig1": fig01_motivation,
    "fig2": fig02_potential,
    "table1": table1_features,
    "fig5": fig05_throughput,
    "fig6": fig06_priority,
    "fig7": fig07_starvation,
    "fig8": fig08_dynamic,
    "fig9": fig09_correlation,
    "fig10": fig10_priority_shift,
    "runtime": runtime_table,
    "estimator": estimator_table,
    # Extensions beyond the paper's evaluation (DESIGN.md §6).
    "power": power_study,
    "desval": des_validation,
    "sampleff": sample_efficiency,
    "trace": trace_study,
}


def run_experiment(name: str, ctx: ExperimentContext) -> ExperimentResult:
    """Run one experiment by id and save its artefacts to the results dir."""
    try:
        module = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        ) from None
    result = module.run(ctx)
    result.save(ctx.results_dir)
    return result
