"""Fig. 6 — potential P of the high-priority DNN per mix size.

For each mix the most demanding DNN is designated critical (priority 0.7
for RankMap_S).  The paper's headline: RankMap_S keeps the critical DNN's
P above 0.14 under any 4-DNN workload (peak 0.37) and improves it by up to
x57.5 over the baseline.
"""

from __future__ import annotations

import numpy as np

from ..utils import render_table
from .common import ExperimentContext, ExperimentResult
from .mix_study import MANAGER_ORDER, run_mix_study

__all__ = ["run"]


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = run_mix_study(ctx)
    headers = ["size", *MANAGER_ORDER, "rankmap_s_min", "rankmap_s_peak"]
    rows: list[list] = []
    ratio_lines: list[str] = []
    for size in study.sizes:
        outcomes = study.by_size(size)
        means = {
            m: float(np.mean([o.critical_potential(m) for o in outcomes]))
            for m in MANAGER_ORDER
        }
        s_values = [o.critical_potential("rankmap_s") for o in outcomes]
        rows.append([size, *(means[m] for m in MANAGER_ORDER),
                     float(np.min(s_values)), float(np.max(s_values))])
        ratios = {m: means["rankmap_s"] / max(means[m], 1e-9)
                  for m in MANAGER_ORDER if m != "rankmap_s"}
        pretty = "  ".join(f"{m}:x{r:.1f}" for m, r in ratios.items())
        ratio_lines.append(f"{size} DNNs - rankmap_s vs {pretty}")

    text = "\n\n".join([
        render_table(headers, rows,
                     title="Fig. 6: mean P of the high-priority DNN"),
        "RankMap_S critical-P ratios (paper at 4 DNNs: x57.5 baseline, "
        "x7.4 MOSAIC, x35.1 ODMDEF, x21.9 GA, x2.2 OmniBoost):\n"
        + "\n".join(ratio_lines),
    ])
    return ExperimentResult(experiment="fig06_priority", headers=headers,
                            rows=rows, text=text,
                            extras={"ratio_lines": ratio_lines})
