"""Shared experiment infrastructure: presets, trained artifacts, managers.

Every experiment runs through an :class:`ExperimentContext` that owns the
platform, the trained VQ-VAE + estimator (cached on disk per preset, so 11
experiments share one training run), the manager roster and the output
directory.  Presets trade fidelity for runtime:

* ``tiny``  — CI-sized smoke configuration (seconds).
* ``fast``  — the default recorded in EXPERIMENTS.md (minutes).
* ``paper`` — the paper's published sizes (10 K dataset, 50 epochs, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..baselines import GAConfig, GeneticManager, GpuBaseline, Mosaic, Odmdef, OmniBoost
from ..core import EstimatorPredictor, OraclePredictor, RankMap, RankMapConfig
from ..core.manager import Manager
from ..estimator import (
    EstimatorConfig,
    EstimatorTrainConfig,
    ThroughputEstimator,
    evaluate_estimator,
    generate_dataset,
    load_estimator_artifact,
    save_estimator_artifact,
    train_estimator,
)
from ..hw import orange_pi_5
from ..hw.platform import Platform
from ..search import MCTSConfig
from ..vqvae import EmbeddingCache, LayerVQVAE, VQVAETrainConfig, train_vqvae
from ..workloads import sample_mix

__all__ = ["ExperimentPreset", "PRESETS", "Artifacts", "ExperimentContext",
           "ExperimentResult", "sample_mix"]


@dataclass(frozen=True)
class ExperimentPreset:
    """Scaling knobs shared by all experiments."""

    name: str
    dataset_samples: int
    estimator_epochs: int
    vqvae_epochs: int
    mcts_iterations: int
    mcts_rollouts: int
    motivation_mappings: int
    mixes_per_size: int
    ga_population: int
    ga_generations: int
    odmdef_profiling_runs: int
    seed: int = 0


PRESETS: dict[str, ExperimentPreset] = {
    "tiny": ExperimentPreset(
        name="tiny", dataset_samples=48, estimator_epochs=1, vqvae_epochs=2,
        mcts_iterations=8, mcts_rollouts=2, motivation_mappings=30,
        mixes_per_size=1, ga_population=6, ga_generations=2,
        odmdef_profiling_runs=6,
    ),
    "fast": ExperimentPreset(
        name="fast", dataset_samples=2200, estimator_epochs=12,
        vqvae_epochs=12, mcts_iterations=70, mcts_rollouts=4,
        motivation_mappings=300, mixes_per_size=6, ga_population=16,
        ga_generations=8, odmdef_profiling_runs=40,
    ),
    "paper": ExperimentPreset(
        name="paper", dataset_samples=10_000, estimator_epochs=50,
        vqvae_epochs=30, mcts_iterations=250, mcts_rollouts=4,
        motivation_mappings=300, mixes_per_size=6, ga_population=24,
        ga_generations=15, odmdef_profiling_runs=120,
    ),
}


@dataclass
class Artifacts:
    """Trained learning components shared across experiments."""

    vqvae: LayerVQVAE
    embedder: EmbeddingCache
    estimator: ThroughputEstimator
    estimator_val_l2: float
    estimator_val_spearman: float


@dataclass
class ExperimentResult:
    """Uniform experiment output: rows for CSV plus rendered text."""

    experiment: str
    headers: list[str]
    rows: list[list]
    text: str
    extras: dict = field(default_factory=dict)

    def save(self, directory: Path) -> None:
        from ..utils import to_csv

        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{self.experiment}.csv").write_text(
            to_csv(self.headers, self.rows))
        (directory / f"{self.experiment}.txt").write_text(self.text + "\n")




class ExperimentContext:
    """Holds the platform, trained artifacts and the manager roster."""

    def __init__(self, preset: str | ExperimentPreset = "fast",
                 results_dir: str | Path = "results",
                 platform: Platform | None = None,
                 use_artifact_cache: bool = True):
        self.preset = (preset if isinstance(preset, ExperimentPreset)
                       else PRESETS[preset])
        self.platform = platform or orange_pi_5()
        self.results_dir = Path(results_dir)
        self.use_artifact_cache = use_artifact_cache
        self._artifacts: Artifacts | None = None
        self._mix_study = None  # filled by experiments.mix_study

    # ------------------------------------------------------------------
    @property
    def artifacts(self) -> Artifacts:
        if self._artifacts is None:
            self._artifacts = self._build_or_load_artifacts()
        return self._artifacts

    def _cache_path(self) -> Path:
        # Keyed by platform as well as preset: the dataset (and therefore
        # the trained weights) depends on the board the rates were
        # simulated on, and a platform-blind cache would let one board's
        # weights be re-stamped as another's by estimator_artifact_path.
        return (self.results_dir /
                f"artifacts_{self.preset.name}_{self.platform.name}.npz")

    def _build_or_load_artifacts(self) -> Artifacts:
        cache = self._cache_path()
        rng = np.random.default_rng(self.preset.seed)
        vqvae = LayerVQVAE(np.random.default_rng(self.preset.seed))
        estimator = ThroughputEstimator(
            np.random.default_rng(self.preset.seed + 1), EstimatorConfig())

        if self.use_artifact_cache and cache.exists():
            blob = np.load(cache, allow_pickle=False)
            vqvae.load_arrays([blob[f"vq_{i}"]
                               for i in range(int(blob["n_vq"]))])
            vqvae.quantizer.load_arrays([blob[f"cb_{i}"]
                                         for i in range(int(blob["n_cb"]))])
            vqvae.eval()
            estimator.load_arrays([blob[f"est_{i}"]
                                   for i in range(int(blob["n_est"]))])
            return Artifacts(
                vqvae=vqvae, embedder=EmbeddingCache(vqvae),
                estimator=estimator,
                estimator_val_l2=float(blob["val_l2"]),
                estimator_val_spearman=float(blob["val_rho"]),
            )

        vqvae, _ = train_vqvae(
            config=VQVAETrainConfig(epochs=self.preset.vqvae_epochs,
                                    seed=self.preset.seed))
        embedder = EmbeddingCache(vqvae)
        dataset = generate_dataset(self.platform, rng,
                                   self.preset.dataset_samples)
        report = train_estimator(
            estimator, dataset, embedder,
            EstimatorTrainConfig(epochs=self.preset.estimator_epochs,
                                 seed=self.preset.seed),
        )
        _, val = dataset.split(0.1, np.random.default_rng(self.preset.seed))
        val_l2, val_rho = evaluate_estimator(estimator, val, embedder)
        del report

        artifacts = Artifacts(
            vqvae=vqvae, embedder=embedder, estimator=estimator,
            estimator_val_l2=val_l2, estimator_val_spearman=val_rho,
        )
        if self.use_artifact_cache:
            self._save_artifacts(artifacts, cache)
        return artifacts

    def _save_artifacts(self, artifacts: Artifacts, cache: Path) -> None:
        cache.parent.mkdir(parents=True, exist_ok=True)
        payload: dict[str, np.ndarray] = {}
        vq_arrays = artifacts.vqvae.state_arrays()
        cb_arrays = artifacts.vqvae.quantizer.state_arrays()
        est_arrays = artifacts.estimator.state_arrays()
        payload["n_vq"] = np.array(len(vq_arrays))
        payload["n_cb"] = np.array(len(cb_arrays))
        payload["n_est"] = np.array(len(est_arrays))
        payload["val_l2"] = np.array(artifacts.estimator_val_l2)
        payload["val_rho"] = np.array(artifacts.estimator_val_spearman)
        for i, a in enumerate(vq_arrays):
            payload[f"vq_{i}"] = a
        for i, a in enumerate(cb_arrays):
            payload[f"cb_{i}"] = a
        for i, a in enumerate(est_arrays):
            payload[f"est_{i}"] = a
        np.savez_compressed(cache, **payload)

    # ------------------------------------------------------------------
    def mcts_config(self, seed_offset: int = 0) -> MCTSConfig:
        return MCTSConfig(iterations=self.preset.mcts_iterations,
                          rollouts_per_leaf=self.preset.mcts_rollouts,
                          seed=self.preset.seed + seed_offset)

    def managers(self) -> dict[str, Manager]:
        """The paper's full roster, in the evaluation's display order."""
        predictor = EstimatorPredictor(self.artifacts.estimator,
                                       self.artifacts.embedder)
        return {
            "baseline": GpuBaseline(),
            "mosaic": Mosaic(self.platform),
            "odmdef": Odmdef(
                self.platform,
                profiling_runs=self.preset.odmdef_profiling_runs,
                seed=self.preset.seed,
            ),
            "ga": GeneticManager(
                self.platform,
                GAConfig(population=self.preset.ga_population,
                         generations=self.preset.ga_generations,
                         seed=self.preset.seed),
            ),
            "omniboost": OmniBoost(self.platform, predictor,
                                   self.mcts_config(100)),
            # RankMap re-measures its top-4 candidates on the board before
            # deploying (deployment hardening; see EXPERIMENTS.md) — the
            # extra 4 measurement windows are part of its modeled latency.
            "rankmap_s": RankMap(
                self.platform, predictor,
                RankMapConfig(mode="static", mcts=self.mcts_config(200),
                              board_validation_top_k=4),
            ),
            "rankmap_d": RankMap(
                self.platform, predictor,
                RankMapConfig(mode="dynamic", mcts=self.mcts_config(300),
                              board_validation_top_k=4),
            ),
        }

    def rankmap_oracle(self, mode: str) -> RankMap:
        """RankMap driven by the simulator oracle (ablation helper)."""
        return RankMap(self.platform, OraclePredictor(self.platform),
                       RankMapConfig(mode=mode, mcts=self.mcts_config(400)))

    def estimator_artifact_path(self, refresh: bool = False) -> Path:
        """Train-or-load the context's estimator once; return its artifact.

        The first call trains (or loads from the artifact cache) the
        VQ-VAE + estimator and persists them as one
        :func:`repro.estimator.save_estimator_artifact` file under the
        results directory; later calls — and every
        :class:`~repro.runner.ScenarioRunner` worker a sweep fans out —
        reuse that file by path.  This is what lets
        :meth:`serve_sweep`/:meth:`fleet_serve_sweep` pay for training
        exactly once per (preset, platform) regardless of worker count.
        The filename is keyed by platform and an existing file is
        fingerprint-validated before reuse, so a stale artifact left by
        a context on a different board — or a corrupt file — is
        retrained instead of silently downgrading every sweep cell.
        """
        path = (self.results_dir /
                f"estimator_{self.preset.name}_{self.platform.name}.pkl")
        if not refresh and path.exists():
            try:
                load_estimator_artifact(path, self.platform)
                return path
            except ValueError:
                pass    # wrong platform / corrupt / old format: retrain
        artifacts = self.artifacts
        save_estimator_artifact(
            path, artifacts.estimator, artifacts.vqvae, self.platform,
            val_l2=artifacts.estimator_val_l2,
            val_spearman=artifacts.estimator_val_spearman)
        return path

    def refresh_estimator(self, results, config=None):
        """Fine-tune the context's estimator on served telemetry segments.

        Closes the paper's open loop: ``results`` are
        :class:`~repro.runner.DynamicResult` /
        :class:`~repro.runner.FleetResult` objects from an observed sweep
        (``observe=True`` so telemetry was recorded); their realized
        ``(workload, mapping, rates)`` segments become fine-tuning rows
        (:func:`repro.obs.export_segments` through a
        :class:`repro.estimator.FinetuneBuffer`, so duplicates collapse
        deterministically) and :func:`repro.estimator.refresh_artifact`
        warm-starts from the newest generation of
        :meth:`estimator_artifact_path`, writing the next
        ``.gen<N>`` sibling.  Later sweeps through
        :meth:`serve_sweep`/:meth:`fleet_serve_sweep` pick the new
        generation up automatically
        (:func:`repro.runner.resolve_predictor` prefers the newest
        compatible generation).

        Returns ``(artifact_path, FinetuneReport)``.  Raises
        ``ValueError`` when no result carries telemetry segments — a
        silent no-op refresh would masquerade as adaptation.
        """
        from ..estimator import FinetuneBuffer, refresh_artifact
        from ..obs import export_segments

        buffer = FinetuneBuffer()
        for result in results:
            snapshot = getattr(result, "telemetry", None)
            if snapshot is not None:
                buffer.ingest(export_segments(snapshot))
        rows = buffer.rows()
        if not rows:
            raise ValueError(
                "no telemetry segments to fine-tune on — run the sweep "
                "with observe=True so served segments are recorded")
        return refresh_artifact(self.estimator_artifact_path(), rows,
                                self.platform, config=config)

    # ------------------------------------------------------------------
    def fleet_sweep(self, managers: tuple[str, ...] = ("baseline", "mosaic",
                                                       "rankmap_d"),
                    sizes: tuple[int, ...] = (3, 4, 5),
                    mixes_per_size: int | None = None,
                    platform: str | None = None,
                    max_workers: int | None = None):
        """Oracle-backed mix sweep fanned across a process pool.

        This is the scale-out successor of the hand-rolled serial loops the
        experiments used to carry: the preset's MCTS budget and mix count
        turn into declarative :class:`~repro.runner.Scenario` specs and a
        :class:`~repro.runner.ScenarioRunner` executes them on all cores
        with per-scenario seeded determinism (the result list is identical
        for any worker count).  Returns ``(results, summary_rows)``.

        Workers rebuild the platform from a ``runner.PLATFORM_SPECS``
        preset key; by default the context's own platform name, which must
        therefore be a preset (a custom Platform object cannot cross the
        process boundary by name — pass ``platform=`` explicitly).
        """
        from ..runner import PLATFORM_SPECS, ScenarioRunner, mix_scenarios, summarise

        if platform is None:
            platform = self.platform.name
        if platform not in PLATFORM_SPECS:
            raise ValueError(
                f"platform {platform!r} is not a runner preset; "
                f"choose from {sorted(PLATFORM_SPECS)}")
        scenarios = mix_scenarios(
            managers=managers, sizes=sizes,
            mixes_per_size=(mixes_per_size if mixes_per_size is not None
                            else self.preset.mixes_per_size),
            seed=self.preset.seed, platform=platform,
            search_iterations=self.preset.mcts_iterations,
            search_rollouts=self.preset.mcts_rollouts,
        )
        results = ScenarioRunner(max_workers=max_workers).run(scenarios)
        return results, summarise(results)

    def serve_sweep(self, policies: tuple[str, ...] = ("full", "warm",
                                                       "cache"),
                    managers: tuple[str, ...] = ("rankmap_d",),
                    traces_per_cell: int = 2,
                    horizon_s: float = 600.0,
                    arrival_rate_per_s: float = 1.0 / 45.0,
                    pool: tuple[str, ...] = (),
                    platform: str | None = None,
                    preemption: str = "none",
                    max_workers: int | None = None,
                    cache_path=None,
                    predictor: str = "oracle",
                    estimator_path=None):
        """Dynamic-traffic study fanned across the process pool.

        The online analogue of :meth:`fleet_sweep`: every (policy,
        manager) cell serves the same sampled Poisson traces through
        :func:`repro.serve.serve_trace` on a worker process, so replan
        policies are compared on identical arrival processes.  The
        preset's MCTS budget scales the search managers; ``cache_path``
        optionally points workers at a persisted evaluation cache and
        ``preemption`` keys the admission-side preemption policy
        (:data:`repro.serve.PREEMPTION_POLICIES`) in every cell.
        ``predictor="estimator"`` runs the paper's learned decision path:
        the context trains (or loads) its estimator artifact *once*
        (:meth:`estimator_artifact_path`, unless ``estimator_path``
        points at an existing artifact) and every worker loads it by
        path.  Returns ``(results, summary_rows)``.
        """
        from ..runner import (
            PLATFORM_SPECS,
            ScenarioRunner,
            dynamic_sweep_scenarios,
            summarise_dynamic,
        )

        if platform is None:
            platform = self.platform.name
        if platform not in PLATFORM_SPECS:
            raise ValueError(
                f"platform {platform!r} is not a runner preset; "
                f"choose from {sorted(PLATFORM_SPECS)}")
        if predictor == "estimator" and estimator_path is None:
            # The context trains for its own platform; fanning that
            # artifact to a sweep on a *different* platform would
            # downgrade every cell to the oracle — a config error, not a
            # study.  Callers with a matching artifact pass it explicitly.
            if platform != self.platform.name:
                raise ValueError(
                    f"the context's estimator is trained for "
                    f"{self.platform.name!r}; a {platform!r} sweep would "
                    "downgrade every cell to the oracle — pass an "
                    "estimator_path trained for that platform")
            estimator_path = self.estimator_artifact_path()
        scenarios = dynamic_sweep_scenarios(
            policies=policies, managers=managers,
            traces_per_cell=traces_per_cell, seed=self.preset.seed,
            platform=platform, horizon_s=horizon_s,
            arrival_rate_per_s=arrival_rate_per_s, pool=pool,
            preemption=preemption,
            search_iterations=self.preset.mcts_iterations,
            search_rollouts=self.preset.mcts_rollouts,
            cache_path=(str(cache_path) if cache_path is not None
                        else None),
            predictor=predictor,
            estimator_path=(str(estimator_path)
                            if estimator_path is not None else None),
        )
        results = ScenarioRunner(max_workers=max_workers).run_dynamic(
            scenarios)
        return results, summarise_dynamic(results)

    def fleet_serve_sweep(self, routings: tuple[str, ...] = ("round_robin",
                                                             "least_loaded",
                                                             "tier_affinity"),
                          num_nodes: int = 3,
                          manager: str = "rankmap_d",
                          policy: str = "warm",
                          platforms: tuple[str, ...] = ("orange_pi_5",
                                                        "jetson_class"),
                          traces_per_cell: int = 2,
                          horizon_s: float = 600.0,
                          arrival_rate_per_s: float = 1.0 / 15.0,
                          pool: tuple[str, ...] = (),
                          capacity: int = 3,
                          preemption: str = "none",
                          fail_at: tuple[tuple[int, float], ...] = (),
                          max_workers: int | None = None,
                          cache_path=None,
                          predictor: str = "oracle",
                          estimator_path=None,
                          observe: bool = False,
                          feedback_rounds: int = 0,
                          rate_shift: tuple[float, float] | None = None):
        """Cluster-scale serving study fanned across the process pool.

        The multi-node analogue of :meth:`serve_sweep`: every routing
        policy dispatches the *same* sampled aggregate Poisson traces
        across a heterogeneous fleet (node ``i`` runs the
        ``platforms[i % len(platforms)]`` preset), each node serving its
        slice through :func:`repro.serve.serve_trace` on a worker
        process.  The preset's MCTS budget scales the node managers,
        ``preemption`` keys every node's admission-side preemption
        policy, and ``fail_at`` optionally kills nodes mid-run to
        exercise the re-dispatch path.  ``predictor="estimator"`` gives
        every node the learned decision path via one shared artifact
        (trained once by :meth:`estimator_artifact_path` unless
        ``estimator_path`` is given); nodes on platforms the artifact
        was not trained for downgrade to the oracle with a warning,
        mirroring a shared ``cache_path``.

        ``observe=True`` records telemetry on every node (the segments
        feed :meth:`refresh_estimator`), ``feedback_rounds`` iterates
        dispatch with measured node pressure
        (:class:`~repro.runner.FleetScenario`), and ``rate_shift``
        drifts the Poisson demand mid-run — together the knobs of the
        closed-loop adaptation study.  Returns
        ``(results, summary_rows)``.
        """
        from ..runner import (
            PLATFORM_SPECS,
            ScenarioRunner,
            fleet_sweep_scenarios,
            summarise_fleet,
        )

        for platform in platforms:
            if platform not in PLATFORM_SPECS:
                raise ValueError(
                    f"platform {platform!r} is not a runner preset; "
                    f"choose from {sorted(PLATFORM_SPECS)}")
        if predictor == "estimator" and estimator_path is None:
            # Heterogeneous fleets legitimately warm only the nodes the
            # artifact matches, but a fleet with *no* node on the
            # context's platform would downgrade every node — refuse.
            # Check the platforms nodes actually get (node i runs
            # platforms[i % len(platforms)]), not the raw tuple: a short
            # fleet may never reach the matching entry.
            node_platforms = {platforms[i % len(platforms)]
                              for i in range(num_nodes)}
            if self.platform.name not in node_platforms:
                raise ValueError(
                    f"the context's estimator is trained for "
                    f"{self.platform.name!r}, which is not among the fleet "
                    f"node platforms {sorted(node_platforms)} — every "
                    "node would downgrade to the oracle; pass an "
                    "estimator_path trained for one of them")
            estimator_path = self.estimator_artifact_path()
        scenarios = fleet_sweep_scenarios(
            routings=routings, traces_per_cell=traces_per_cell,
            num_nodes=num_nodes, manager=manager, policy=policy,
            platforms=platforms, seed=self.preset.seed,
            horizon_s=horizon_s, arrival_rate_per_s=arrival_rate_per_s,
            pool=pool, capacity=capacity, preemption=preemption,
            search_iterations=self.preset.mcts_iterations,
            search_rollouts=self.preset.mcts_rollouts,
            cache_path=(str(cache_path) if cache_path is not None
                        else None),
            predictor=predictor,
            estimator_path=(str(estimator_path)
                            if estimator_path is not None else None),
            fail_at=fail_at, observe=observe,
            feedback_rounds=feedback_rounds, rate_shift=rate_shift,
        )
        results = ScenarioRunner(max_workers=max_workers).run_fleet(
            scenarios)
        return results, summarise_fleet(results)
