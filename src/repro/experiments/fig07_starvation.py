"""Fig. 7 — starvation comparison across all mix-study DNN instances.

Counts starved DNNs (P below the measurement-resolution epsilon) per
manager over the 6x(3+4+5) = 72 DNN instances.  Paper: Baseline 19,
MOSAIC 9, ODMDEF 13, GA 11, OmniBoost 5, RankMap_S 0, RankMap_D 0.
"""

from __future__ import annotations

from ..metrics import STARVATION_EPSILON
from ..utils import render_histogram, render_table
from .common import ExperimentContext, ExperimentResult
from .mix_study import MANAGER_ORDER, run_mix_study

__all__ = ["run"]

_PAPER_COUNTS = {"baseline": 19, "mosaic": 9, "odmdef": 13, "ga": 11,
                 "omniboost": 5, "rankmap_s": 0, "rankmap_d": 0}


def run(ctx: ExperimentContext) -> ExperimentResult:
    study = run_mix_study(ctx)
    headers = ["manager", "instances", "starved", "paper_starved",
               "min_P", "median_P"]
    rows: list[list] = []
    histograms: list[str] = []
    for manager in MANAGER_ORDER:
        potentials = study.all_potentials(manager)
        starved = int((potentials < STARVATION_EPSILON).sum())
        rows.append([
            manager, len(potentials), starved, _PAPER_COUNTS[manager],
            float(potentials.min()),
            float(sorted(potentials)[len(potentials) // 2]),
        ])
        histograms.append(render_histogram(
            potentials, bins=10, value_range=(0.0, 1.0),
            title=f"P histogram - {manager}"))

    text = "\n\n".join([
        render_table(headers, rows,
                     title="Fig. 7: starved DNN instances per manager "
                           f"(starved = P < {STARVATION_EPSILON})"),
        *histograms,
    ])
    return ExperimentResult(experiment="fig07_starvation", headers=headers,
                            rows=rows, text=text)
