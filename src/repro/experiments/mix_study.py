"""The shared mix study behind Figs. 5, 6, 7 and 9.

Sec. V-A evaluates every manager on 6 random mixes of 3, 4 and 5 concurrent
DNNs (18 mixes, 72 DNN instances).  Each experiment consumes a different
projection of the same runs, so the study executes once per context and is
memoised on it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.priorities import dynamic_priorities, static_priorities
from ..sim import SimResult, simulate
from ..zoo.layers import ModelSpec
from .common import ExperimentContext, sample_mix

__all__ = ["MixOutcome", "MixStudy", "run_mix_study", "MANAGER_ORDER"]

MANAGER_ORDER = ("baseline", "mosaic", "odmdef", "ga", "omniboost",
                 "rankmap_s", "rankmap_d")


@dataclass
class MixOutcome:
    """All managers' results on one mix."""

    size: int
    mix_index: int
    names: tuple[str, ...]
    critical_index: int                 # the user-prioritised DNN (heaviest)
    static_priorities: np.ndarray
    dynamic_priorities: np.ndarray
    results: dict[str, SimResult]

    def normalized_throughput(self, manager: str) -> float:
        base = self.results["baseline"].average_throughput
        return self.results[manager].average_throughput / base

    def critical_potential(self, manager: str) -> float:
        return float(self.results[manager].potentials[self.critical_index])


@dataclass
class MixStudy:
    """The full 3x6-mix sweep over every manager."""

    outcomes: list[MixOutcome]
    sizes: tuple[int, ...]

    def by_size(self, size: int) -> list[MixOutcome]:
        return [o for o in self.outcomes if o.size == size]

    def all_potentials(self, manager: str) -> np.ndarray:
        return np.concatenate([
            o.results[manager].potentials for o in self.outcomes
        ])


def run_mix_study(ctx: ExperimentContext,
                  sizes: tuple[int, ...] = (3, 4, 5)) -> MixStudy:
    """Run (or return the memoised) mix study for ``ctx``."""
    if ctx._mix_study is not None:
        return ctx._mix_study

    rng = np.random.default_rng(ctx.preset.seed + 42)
    managers = ctx.managers()
    outcomes: list[MixOutcome] = []
    for size in sizes:
        for mix_index in range(ctx.preset.mixes_per_size):
            workload = sample_mix(rng, size)
            outcomes.append(
                _run_one_mix(ctx, managers, workload, size, mix_index))
    study = MixStudy(outcomes=outcomes, sizes=sizes)
    ctx._mix_study = study
    return study


def _run_one_mix(ctx: ExperimentContext, managers, workload: list[ModelSpec],
                 size: int, mix_index: int) -> MixOutcome:
    critical = int(np.argmax([m.macs for m in workload]))
    p_static = static_priorities(len(workload), critical)
    p_dynamic = dynamic_priorities(workload)

    results: dict[str, SimResult] = {}
    for name in MANAGER_ORDER:
        decision = managers[name].plan(workload, p_static)
        results[name] = simulate(workload, decision.mapping, ctx.platform)
    return MixOutcome(
        size=size, mix_index=mix_index,
        names=tuple(m.name for m in workload),
        critical_index=critical,
        static_priorities=p_static,
        dynamic_priorities=p_dynamic,
        results=results,
    )
