"""Stable metric + span registry for the telemetry subsystem.

Every metric a :class:`~repro.obs.recorder.TelemetryRecorder` will accept
is declared here, once, with a kind and a description — instrumentation
sites reference the module-level name constants instead of spelling raw
strings, so a typo'd metric name fails loudly at record time instead of
silently splitting a counter into two series.  The registry is part of
the exported trace contract: ``tools/trace_summary.py`` and the future
estimator fine-tuning loop key on these names, so renaming an entry is a
schema change (bump :data:`repro.obs.recorder.SCHEMA_VERSION`).

Kinds:

* ``counter`` — monotonically accumulated value (events, modeled
  seconds).  Merging sums.
* ``gauge`` — last-written value stamped with its *simulated* time;
  merging keeps the latest ``(t_s, value)``.
* ``histogram`` — streaming distribution over the fixed log-spaced
  :data:`~repro.obs.recorder.HISTOGRAM_EDGES` bucket ladder (bounded
  memory regardless of observation count).  Merging sums buckets.

Counters and histograms take an optional ``label`` — one free-form
dimension (SLA tier, verdict, node name) under the registered base name,
the Prometheus idiom.  The *names* are the stable registry; labels are
data.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Metric", "METRICS", "SPANS",
           "COUNTER", "GAUGE", "HISTOGRAM"]

#: Metric kinds (see module docstring for the merge semantics of each).
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class Metric:
    """One registered metric: its stable name, kind and meaning."""

    name: str
    kind: str                      # COUNTER | GAUGE | HISTOGRAM
    unit: str                      # "1" for dimensionless counts
    description: str


# --------------------------------------------------------------- serve
#: Admission verdicts, labelled ``"<tier>/<verdict>"`` — the per-tier
#: admission funnel ``tools/trace_summary.py`` tabulates.
ADMISSION_VERDICT = "serve.admission.verdict"
#: Sessions entering the waiting room (fresh arrivals and parked
#: eviction victims alike).
QUEUE_ENQUEUED = "serve.queue.enqueued"
#: Queue-timeout abandonments (fresh stays and parked victims).
QUEUE_ABANDONED = "serve.queue.abandoned"
#: Waiting-room occupancy after the latest enqueue/dequeue.
QUEUE_DEPTH = "serve.queue.depth"
#: Waiting-room seconds of each drained (admitted-from-queue) stay.
QUEUE_WAIT_S = "serve.queue.wait_s"
#: Live resident sessions after the latest admission/departure.
LIVE_SESSIONS = "serve.sessions.live"
#: Preemption-policy decisions, labelled by action
#: (``evict`` / ``demote`` / ``none``).
PREEMPT_PLAN = "serve.preempt.plan"
#: Executed eviction (suspension) events.
PREEMPT_EVICTIONS = "serve.preempt.evictions"
#: Executed tier-demotion (renegotiation) events.
PREEMPT_DEMOTIONS = "serve.preempt.demotions"
#: Evicted sessions re-admitted from the waiting room.
PREEMPT_RESUMPTIONS = "serve.preempt.resumptions"
#: Replan invocations, labelled by outcome kind
#: (``full`` / ``warm`` / ``warm_fallback`` / ``cache_hit`` / ...).
REPLAN_INVOCATIONS = "serve.replan.invocations"
#: Modeled decision seconds of each replan outcome.
REPLAN_DECISION_S = "serve.replan.decision_s"
#: Evaluation-cache hits accumulated during one serving run.
EVAL_CACHE_HITS = "serve.eval_cache.hits"
#: Evaluation-cache misses accumulated during one serving run.
EVAL_CACHE_MISSES = "serve.eval_cache.misses"

# --------------------------------------------------------------- fleet
#: Sessions the dispatcher routed, labelled by target node name.
DISPATCH_ROUTED = "fleet.dispatch.routed"
#: Failure-drained session continuations re-routed to survivors.
DISPATCH_REDISPATCHED = "fleet.dispatch.re_dispatched"
#: Arrivals no alive node could take.
DISPATCH_LOST = "fleet.dispatch.lost"
#: Routing-policy choices, labelled ``"<policy>/<node>"``.
ROUTING_CHOICE = "fleet.routing.choice"
#: Estimated fleet board draw after each dispatch event (simulated time).
POWER_FLEET_WATTS = "fleet.power.watts"
#: Watt-seconds above the cap in force, labelled by node name.
POWER_OVER_CAP_WS = "fleet.power.over_cap_ws"
#: DVFS renegotiation steps, labelled ``"<node>/<new_level>"``.
POWER_DVFS_TRANSITIONS = "fleet.power.dvfs_transitions"
#: Arrivals dropped by the power governor, labelled by SLA tier.
POWER_SHED = "fleet.power.shed"

# ----------------------------------------------------------- estimator
#: Learned-path candidate-scoring batches (one fused forward each).
PREDICT_CALLS = "estimator.predict.calls"
#: Candidate-roster size of each learned-path scoring batch.
PREDICT_BATCH_SIZE = "estimator.predict.batch_size"
#: Modeled on-board decision seconds accumulated by the learned path
#: (batch size x 0.04 s/eval).
PREDICT_MODELED_S = "estimator.predict.modeled_s"

# -------------------------------------------------------------- runner
#: Estimator-artifact platform mismatches downgraded to the oracle.
PREDICTOR_DOWNGRADES = "runner.predictor.downgrades"
#: cache_path files that failed to load (wrong platform / corrupt),
#: downgraded to a cold start.
EVAL_CACHE_DOWNGRADES = "runner.eval_cache.downgrades"


def _m(name: str, kind: str, unit: str, description: str) -> Metric:
    return Metric(name, kind, unit, description)


#: The stable metric registry: every recordable name, keyed by itself.
METRICS: dict[str, Metric] = {m.name: m for m in (
    _m(ADMISSION_VERDICT, COUNTER, "1",
       "admission verdicts, labelled '<tier>/<verdict>'"),
    _m(QUEUE_ENQUEUED, COUNTER, "1", "waiting-room enqueues"),
    _m(QUEUE_ABANDONED, COUNTER, "1", "queue-timeout abandonments"),
    _m(QUEUE_DEPTH, GAUGE, "1", "waiting-room occupancy"),
    _m(QUEUE_WAIT_S, HISTOGRAM, "s", "waiting-room time of drained stays"),
    _m(LIVE_SESSIONS, GAUGE, "1", "live resident sessions"),
    _m(PREEMPT_PLAN, COUNTER, "1",
       "preemption-policy decisions, labelled by action"),
    _m(PREEMPT_EVICTIONS, COUNTER, "1", "executed evictions"),
    _m(PREEMPT_DEMOTIONS, COUNTER, "1", "executed tier demotions"),
    _m(PREEMPT_RESUMPTIONS, COUNTER, "1", "eviction resumptions"),
    _m(REPLAN_INVOCATIONS, COUNTER, "1",
       "replan invocations, labelled by outcome kind"),
    _m(REPLAN_DECISION_S, HISTOGRAM, "s",
       "modeled decision seconds per replan"),
    _m(EVAL_CACHE_HITS, COUNTER, "1", "evaluation-cache hits in-run"),
    _m(EVAL_CACHE_MISSES, COUNTER, "1", "evaluation-cache misses in-run"),
    _m(DISPATCH_ROUTED, COUNTER, "1",
       "dispatched sessions, labelled by node"),
    _m(DISPATCH_REDISPATCHED, COUNTER, "1",
       "failure-drained re-dispatches"),
    _m(DISPATCH_LOST, COUNTER, "1", "arrivals with no alive node"),
    _m(ROUTING_CHOICE, COUNTER, "1",
       "routing choices, labelled '<policy>/<node>'"),
    _m(POWER_FLEET_WATTS, GAUGE, "W", "estimated fleet board draw"),
    _m(POWER_OVER_CAP_WS, COUNTER, "W*s",
       "watt-seconds over the cap, labelled by node"),
    _m(POWER_DVFS_TRANSITIONS, COUNTER, "1",
       "DVFS steps, labelled '<node>/<new_level>'"),
    _m(POWER_SHED, COUNTER, "1",
       "power-governor dropped arrivals, labelled by tier"),
    _m(PREDICT_CALLS, COUNTER, "1", "learned-path scoring batches"),
    _m(PREDICT_BATCH_SIZE, HISTOGRAM, "1",
       "candidate-roster size per scoring batch"),
    _m(PREDICT_MODELED_S, COUNTER, "s",
       "modeled learned-path decision seconds"),
    _m(PREDICTOR_DOWNGRADES, COUNTER, "1",
       "estimator-artifact downgrades to the oracle"),
    _m(EVAL_CACHE_DOWNGRADES, COUNTER, "1",
       "cache_path files downgraded to a cold start"),
)}


# ---------------------------------------------------------------- spans
#: One admission decision (duration 0; the verdict is an attribute).
SPAN_ADMISSION = "serve.admission.decide"
#: One executed preemption (eviction or demotion) on an arrival's behalf.
SPAN_PREEMPT = "serve.preempt.apply"
#: One replan decision; the span duration is the modeled decision
#: seconds the serving loop turns into re-mapping gap time.
SPAN_REPLAN = "serve.replan"
#: One fleet routing decision (duration 0; the chosen node is an
#: attribute).
SPAN_DISPATCH = "fleet.dispatch.route"

#: The stable span-name registry; recorders refuse unknown span names.
SPANS: frozenset[str] = frozenset(
    {SPAN_ADMISSION, SPAN_PREEMPT, SPAN_REPLAN, SPAN_DISPATCH})
