"""Deterministic telemetry & tracing for the serving stack.

``repro.obs`` is the observability layer: a zero-overhead-when-off
:class:`Recorder` the serving loop, admission controller, preemption and
replan policies, fleet dispatcher and estimator predictor all accept.
With the default :data:`NULL_RECORDER` nothing is collected and reports
are untouched; with a :class:`TelemetryRecorder` the same run
additionally produces a :class:`TelemetrySnapshot` — counters, gauges,
streaming histograms, a top-K decision-span trace stamped in *simulated*
time, and realized ``(workload, mapping, rates)`` segment usage — all
bounded-memory, all bit-reproducible, and mergeable across process-pool
workers (:func:`merge_snapshots`) without changing a single bit relative
to a 1-worker run.

Traces persist as versioned JSONL (:func:`write_trace` /
:func:`read_trace`); :func:`export_segments` emits the realized plan
usage the estimator fine-tuning loop will train on.  The metric and
span names live in :mod:`repro.obs.registry`.  See
``docs/observability.md`` for the full contract.
"""

from .recorder import (
    HISTOGRAM_EDGES,
    NULL_RECORDER,
    SCHEMA_VERSION,
    HistogramState,
    Recorder,
    SegmentUsage,
    Span,
    TelemetryRecorder,
    TelemetrySnapshot,
    merge_snapshots,
)
from .export import TRACE_SCHEMA, export_segments, read_trace, write_trace
from .registry import METRICS, SPANS, Metric

__all__ = [
    "SCHEMA_VERSION",
    "HISTOGRAM_EDGES",
    "TRACE_SCHEMA",
    "Metric",
    "METRICS",
    "SPANS",
    "Recorder",
    "NULL_RECORDER",
    "TelemetryRecorder",
    "Span",
    "HistogramState",
    "SegmentUsage",
    "TelemetrySnapshot",
    "merge_snapshots",
    "write_trace",
    "read_trace",
    "export_segments",
]
