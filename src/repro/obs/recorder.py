"""Deterministic, bounded-memory telemetry recorders.

The serving stack takes a :class:`Recorder` everywhere it makes a
decision.  The default is :data:`NULL_RECORDER` — an instance of the
no-op base class, so the off path costs one attribute check per
instrumentation site and reports stay bit-identical with recording on or
off (the recorder is a passive side channel: it never draws randomness,
never reorders events, never feeds anything back into a decision).

:class:`TelemetryRecorder` is the recording implementation.  Everything
it keeps is bounded and deterministic:

* **Counters** and **gauges** are dictionaries keyed on the stable
  :mod:`~repro.obs.registry` names (plus one free-form label for
  counters); gauges remember the latest ``(simulated time, value)``.
* **Histograms** are streaming: each observation lands in one of the
  fixed log-spaced :data:`HISTOGRAM_EDGES` buckets, so a million
  observations cost the same memory as ten.
* **Spans** — the decision-path trace — are stamped in *simulated*
  seconds with modeled decision durations (never wall clock, so traces
  are bit-reproducible).  Retention is top-K by duration
  (``max_spans``), compacted amortised; exact per-name totals survive in
  the span stats regardless of which spans are retained.
* **Segments** — realized ``(workload, mapping, rates)`` intervals —
  aggregate duration by identical plan, so memory is bounded by plan
  diversity, not event count (the ``record_timeline=False`` contract of
  the streaming serving core).

:meth:`TelemetryRecorder.snapshot` freezes the state into a
:class:`TelemetrySnapshot` of plain sorted tuples — picklable across the
process pool, comparable with ``==`` — and :func:`merge_snapshots` folds
per-worker snapshots deterministically: the runner merges node snapshots
in node order, so an N-worker fleet run merges to the bit-identical
telemetry of the 1-worker run.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Mapping, NamedTuple, Sequence

from .registry import COUNTER, GAUGE, HISTOGRAM, METRICS, SPANS

__all__ = [
    "SCHEMA_VERSION",
    "HISTOGRAM_EDGES",
    "Recorder",
    "NULL_RECORDER",
    "TelemetryRecorder",
    "Span",
    "HistogramState",
    "SegmentUsage",
    "TelemetrySnapshot",
    "merge_snapshots",
]

#: Version of the snapshot/trace contract (metric registry semantics,
#: span fields, JSONL record layout).  Bump on any incompatible change.
SCHEMA_VERSION = 1

#: Fixed histogram bucket ladder: quarter-decade log spacing over
#: ``[1e-4, 1e4]`` seconds/counts.  Bucket ``i`` holds observations in
#: ``(edges[i-1], edges[i]]``; bucket 0 everything at or below the first
#: edge, the last bucket everything above the final edge — 34 buckets
#: total, the same for every histogram, forever (part of the schema).
HISTOGRAM_EDGES: tuple[float, ...] = tuple(
    10.0 ** (-4.0 + k / 4.0) for k in range(33))


class Span(NamedTuple):
    """One traced decision, stamped in simulated time.

    ``duration_s`` is the *modeled* decision cost (a replan's decision
    seconds; 0.0 for instantaneous verdicts).  ``attrs`` is a sorted
    tuple of ``(key, value)`` pairs with JSON-scalar values; ``seq`` is
    the recorder-local emission index, the final tie-break that keeps
    top-K retention a total order.
    """

    name: str
    where: str
    t_s: float
    duration_s: float
    attrs: tuple[tuple[str, object], ...]
    seq: int


class HistogramState(NamedTuple):
    """Frozen streaming-histogram summary over :data:`HISTOGRAM_EDGES`."""

    count: int
    total: float
    min_value: float
    max_value: float
    buckets: tuple[int, ...]       # len(HISTOGRAM_EDGES) + 1 entries


class SegmentUsage(NamedTuple):
    """Accumulated service time of one realized ``(workload, mapping)``.

    ``workload`` is the model-name roster in mapping order,
    ``assignments`` the mapping's per-block component rows, ``rates`` the
    solver's realized per-DNN rates for that plan — exactly the triple
    the estimator fine-tuning loop trains on — and ``duration_s`` the
    total simulated seconds the plan was live.
    """

    workload: tuple[str, ...]
    assignments: tuple[tuple[int, ...], ...]
    rates: tuple[float, ...]
    duration_s: float


#: Span retention order: longest decision first, then earliest, then the
#: stable name/where/seq tie-breaks — a total order, so top-K is unique.
#: Index access so it ranks both :class:`Span` instances and the plain
#: field-ordered tuples the recorder buffers internally.
def _span_rank(span: Sequence) -> tuple:
    return (-span[3], span[2], span[0], span[1], span[5])


class Recorder:
    """No-op telemetry interface — also the zero-overhead default.

    Instrumentation sites call these methods unconditionally (they cost
    one method dispatch when recording is off) and guard any *argument
    construction* with :attr:`enabled`, so the off path allocates
    nothing.  :data:`NULL_RECORDER` is the shared default instance;
    :class:`TelemetryRecorder` overrides everything.
    """

    #: False on the null recorder; call sites skip attr-building work.
    enabled: bool = False

    def count(self, name: str, value: float = 1.0, label: str = "") -> None:
        """Accumulate ``value`` onto counter ``name`` (no-op here)."""

    def gauge(self, name: str, t_s: float, value: float) -> None:
        """Record gauge ``name`` = ``value`` at simulated ``t_s`` (no-op)."""

    def observe(self, name: str, value: float, label: str = "") -> None:
        """Add one observation to histogram ``name`` (no-op here)."""

    def span(self, name: str, t_s: float, duration_s: float,
             attrs: Mapping[str, object] | Iterable = ()) -> None:
        """Trace one decision span (no-op here)."""

    def span_batch(self, name: str, items: Iterable) -> None:
        """Bulk-ingest ``(t_s, duration_s, attrs)`` spans (no-op here)."""

    def segment(self, key: tuple | None, duration_s: float) -> None:
        """Accumulate a realized plan segment (no-op here)."""

    def snapshot(self) -> "TelemetrySnapshot | None":
        """Freeze recorded state; ``None`` from the null recorder."""
        return None


#: The shared zero-overhead default recorder.
NULL_RECORDER = Recorder()


def _check(name: str, kind: str) -> None:
    metric = METRICS.get(name)
    if metric is None:
        raise KeyError(
            f"unregistered metric {name!r}; declare it in "
            "repro.obs.registry first")
    if metric.kind != kind:
        raise TypeError(
            f"metric {name!r} is a {metric.kind}, recorded as a {kind}")


#: Per-kind name sets: one frozenset membership test on the hot path
#: replaces the dict-lookup-plus-compare of :func:`_check`, which only
#: runs (for its precise error message) once a name fails the set.
_COUNTER_NAMES = frozenset(n for n, m in METRICS.items()
                           if m.kind == COUNTER)
_GAUGE_NAMES = frozenset(n for n, m in METRICS.items() if m.kind == GAUGE)
_HISTOGRAM_NAMES = frozenset(n for n, m in METRICS.items()
                             if m.kind == HISTOGRAM)


class TelemetryRecorder(Recorder):
    """The recording implementation (see the module docstring).

    ``where`` stamps every span with its origin (a scenario or node
    name), which keeps merged fleet traces attributable and makes span
    retention a total order across workers.  ``max_spans`` bounds the
    retained trace; the top-``max_spans`` longest decisions survive,
    per-name count/total stats stay exact regardless.
    """

    enabled = True

    def __init__(self, where: str = "", max_spans: int = 64):
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.where = where
        self.max_spans = max_spans
        self._counters: dict[tuple[str, str], float] = {}
        self._gauges: dict[str, tuple[float, float]] = {}
        # name -> [count, total, min, max, bucket-count list]
        self._hists: dict[tuple[str, str], list] = {}
        self._spans: list[tuple] = []      # Span fields, unwrapped
        self._span_seq = 0
        self._span_stats: dict[str, list] = {}     # name -> [count, total]
        self._segments: dict[tuple, float] = {}

    # ------------------------------------------------------------- metrics
    def count(self, name: str, value: float = 1.0, label: str = "") -> None:
        """Accumulate ``value`` onto counter ``(name, label)``."""
        try:
            self._counters[name, label] += value
        except KeyError:
            # First tick of this key: validate the name, then seed it
            # (an unregistered name raises before anything is stored).
            if name not in _COUNTER_NAMES:
                _check(name, COUNTER)
            self._counters[name, label] = value

    def gauge(self, name: str, t_s: float, value: float) -> None:
        """Set gauge ``name`` to ``value`` at simulated ``t_s``
        (last write wins)."""
        if name not in _GAUGE_NAMES:
            _check(name, GAUGE)
        self._gauges[name] = (t_s, value)

    def observe(self, name: str, value: float, label: str = "") -> None:
        """Stream ``value`` into histogram ``(name, label)``."""
        if name not in _HISTOGRAM_NAMES:
            _check(name, HISTOGRAM)
        key = (name, label)
        state = self._hists.get(key)
        if state is None:
            state = [0, 0.0, value, value,
                     [0] * (len(HISTOGRAM_EDGES) + 1)]
            self._hists[key] = state
        state[0] += 1
        state[1] += value
        if value < state[2]:
            state[2] = value
        if value > state[3]:
            state[3] = value
        state[4][bisect_left(HISTOGRAM_EDGES, value)] += 1

    # --------------------------------------------------------------- spans
    def span(self, name: str, t_s: float, duration_s: float,
             attrs: Mapping[str, object] | Iterable = ()) -> None:
        """Trace one decision span at simulated ``t_s``.

        ``attrs`` is a mapping (or pair iterable) of JSON-scalar
        attributes; it is canonicalised to a sorted pair tuple so equal
        spans compare equal regardless of construction order.  A plain
        ``tuple`` argument is trusted to be key-sorted pairs already —
        the hot instrumentation sites build them that way to skip the
        per-span sort.
        """
        if name not in SPANS:
            raise KeyError(
                f"unregistered span name {name!r}; declare it in "
                "repro.obs.registry first")
        try:
            stats = self._span_stats[name]
            stats[0] += 1
            stats[1] += duration_s
        except KeyError:
            self._span_stats[name] = [1, duration_s]
        if type(attrs) is not tuple:
            attrs = tuple(sorted(
                attrs.items() if isinstance(attrs, Mapping) else attrs))
        seq = self._span_seq
        self._span_seq = seq + 1
        spans = self._spans
        # Buffered as a plain Span-field-ordered tuple; snapshot() wraps
        # the few retained ones in the Span type.
        spans.append((name, self.where, t_s, duration_s, attrs, seq))
        if len(spans) >= 2 * self.max_spans:
            # Amortised top-K compaction: any span in the final top-K is
            # in the top-K of every prefix containing it, so compacting
            # early never evicts a span the full trace would retain.
            spans.sort(key=_span_rank)
            del spans[self.max_spans:]

    def span_batch(self, name: str, items: Iterable) -> None:
        """Bulk-ingest spans of one ``name``.

        ``items`` yields ``(t_s, duration_s, attrs)`` triples in
        emission order.  Equivalent to calling :meth:`span` per triple —
        same retention, same stats — at a fraction of the per-span cost
        (one validation, one stats update, hoisted locals); the serving
        loop buffers its per-arrival admission spans and feeds them
        through here.
        """
        if name not in SPANS:
            raise KeyError(
                f"unregistered span name {name!r}; declare it in "
                "repro.obs.registry first")
        spans = self._spans
        where = self.where
        seq = self._span_seq
        count = 0
        total = 0.0
        limit = 2 * self.max_spans
        keep = self.max_spans
        for t_s, duration_s, attrs in items:
            if type(attrs) is not tuple:
                attrs = tuple(sorted(
                    attrs.items() if isinstance(attrs, Mapping)
                    else attrs))
            spans.append((name, where, t_s, duration_s, attrs, seq))
            seq += 1
            count += 1
            total += duration_s
            if len(spans) >= limit:
                spans.sort(key=_span_rank)
                del spans[keep:]
        self._span_seq = seq
        if count:
            try:
                stats = self._span_stats[name]
                stats[0] += count
                stats[1] += total
            except KeyError:
                self._span_stats[name] = [count, total]

    # ------------------------------------------------------------ segments
    def segment(self, key: tuple | None, duration_s: float) -> None:
        """Accumulate ``duration_s`` onto the realized plan ``key``.

        ``key`` is ``(workload names, mapping assignments, rates)`` as
        built by the serving loop's segment state; ``None`` (no deployed
        mapping — an idle or pre-plan interval) is skipped.
        """
        if key is None or duration_s <= 0.0:
            return
        self._segments[key] = self._segments.get(key, 0.0) + duration_s

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> "TelemetrySnapshot":
        """Freeze the recorded state into a plain-data snapshot."""
        spans = [Span._make(s) for s in
                 sorted(self._spans, key=_span_rank)[:self.max_spans]]
        return TelemetrySnapshot(
            where=self.where,
            max_spans=self.max_spans,
            counters=tuple(sorted(
                (name, label, value)
                for (name, label), value in self._counters.items())),
            gauges=tuple(sorted(
                (name, t_s, value)
                for name, (t_s, value) in self._gauges.items())),
            histograms=tuple(sorted(
                (name, label, HistogramState(c, total, lo, hi,
                                             tuple(buckets)))
                for (name, label), (c, total, lo, hi, buckets)
                in self._hists.items())),
            spans=tuple(spans),
            span_stats=tuple(sorted(
                (name, count, total)
                for name, (count, total) in self._span_stats.items())),
            segments=tuple(
                SegmentUsage(workload, assignments, rates, duration)
                for (workload, assignments, rates), duration
                in sorted(self._segments.items())),
        )


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Frozen, order-canonical telemetry of one run (or a merged fleet).

    Every field is a sorted tuple of plain values, so snapshots pickle
    across the process pool, compare with ``==``, and round-trip through
    the JSONL trace format (:mod:`repro.obs.export`) bit-exactly.
    """

    where: str
    max_spans: int
    counters: tuple[tuple[str, str, float], ...]
    gauges: tuple[tuple[str, float, float], ...]
    histograms: tuple[tuple[str, str, HistogramState], ...]
    spans: tuple[Span, ...]
    span_stats: tuple[tuple[str, int, float], ...]
    segments: tuple[SegmentUsage, ...]

    def counter(self, name: str, label: str = "") -> float:
        """The accumulated value of counter ``(name, label)`` (0.0 if
        never recorded)."""
        for c_name, c_label, value in self.counters:
            if c_name == name and c_label == label:
                return value
        return 0.0

    def counter_total(self, name: str) -> float:
        """The value of counter ``name`` summed across all labels."""
        return sum(value for c_name, _, value in self.counters
                   if c_name == name)

    def gauge_value(self, name: str) -> float | None:
        """The last written value of gauge ``name`` (``None`` if never
        written)."""
        for g_name, _, value in self.gauges:
            if g_name == name:
                return value
        return None


def merge_snapshots(snapshots: Sequence[TelemetrySnapshot],
                    where: str = "merged") -> TelemetrySnapshot:
    """Fold per-worker snapshots into one, deterministically.

    Counters, histograms, span stats and segments sum; gauges keep the
    latest simulated-time write (later snapshots win ties); spans
    re-compact to the largest ``max_spans`` of the inputs.  The fold
    runs in the order given — callers pass worker snapshots in task
    order (process pools return results in input order), so the merge of
    an N-worker run is bit-identical to the 1-worker run's.
    """
    counters: dict[tuple[str, str], float] = {}
    gauges: dict[str, tuple[float, float]] = {}
    hists: dict[tuple[str, str], list] = {}
    spans: list[Span] = []
    span_stats: dict[str, list] = {}
    segments: dict[tuple, float] = {}
    max_spans = 1
    for snap in snapshots:
        max_spans = max(max_spans, snap.max_spans)
        for name, label, value in snap.counters:
            key = (name, label)
            counters[key] = counters.get(key, 0.0) + value
        for name, t_s, value in snap.gauges:
            held = gauges.get(name)
            if held is None or t_s >= held[0]:
                gauges[name] = (t_s, value)
        for name, label, state in snap.histograms:
            key = (name, label)
            held = hists.get(key)
            if held is None:
                hists[key] = [state.count, state.total, state.min_value,
                              state.max_value, list(state.buckets)]
            else:
                held[0] += state.count
                held[1] += state.total
                held[2] = min(held[2], state.min_value)
                held[3] = max(held[3], state.max_value)
                for i, n in enumerate(state.buckets):
                    held[4][i] += n
        spans.extend(snap.spans)
        for name, count, total in snap.span_stats:
            held = span_stats.get(name)
            if held is None:
                span_stats[name] = [count, total]
            else:
                held[0] += count
                held[1] += total
        for usage in snap.segments:
            key = (usage.workload, usage.assignments, usage.rates)
            segments[key] = segments.get(key, 0.0) + usage.duration_s
    spans.sort(key=_span_rank)
    return TelemetrySnapshot(
        where=where,
        max_spans=max_spans,
        counters=tuple(sorted(
            (name, label, value)
            for (name, label), value in counters.items())),
        gauges=tuple(sorted(
            (name, t_s, value)
            for name, (t_s, value) in gauges.items())),
        histograms=tuple(sorted(
            (name, label, HistogramState(c, total, lo, hi, tuple(buckets)))
            for (name, label), (c, total, lo, hi, buckets)
            in hists.items())),
        spans=tuple(spans[:max_spans]),
        span_stats=tuple(sorted(
            (name, count, total)
            for name, (count, total) in span_stats.items())),
        segments=tuple(
            SegmentUsage(workload, assignments, rates, duration)
            for (workload, assignments, rates), duration
            in sorted(segments.items())),
    )
