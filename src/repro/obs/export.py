"""Versioned JSONL trace export for telemetry snapshots.

A trace file is line-delimited JSON: one header line (schema name +
:data:`~repro.obs.recorder.SCHEMA_VERSION` + snapshot identity), then
one line per record with a ``type`` tag (``counter`` / ``gauge`` /
``histogram`` / ``span`` / ``span_stat`` / ``segment``).  Records are
written in the snapshot's canonical sorted order and floats go through
Python's shortest-round-trip ``repr``, so
``read_trace(write_trace(snap)) == snap`` bit-exactly — the round-trip
the property suite pins.

:func:`export_segments` emits the realized ``(workload, mapping,
rates)`` usage records in the plain-dict shape the estimator
fine-tuning loop (ROADMAP: closed-loop adaptive control) will consume
as training rows.
"""

from __future__ import annotations

import json
from pathlib import Path

from .recorder import (
    SCHEMA_VERSION,
    HistogramState,
    SegmentUsage,
    Span,
    TelemetrySnapshot,
)

__all__ = ["TRACE_SCHEMA", "write_trace", "read_trace", "export_segments"]

#: The header's schema identifier; readers refuse anything else.
TRACE_SCHEMA = "repro.obs.trace"


def write_trace(snapshot: TelemetrySnapshot, path: str | Path) -> int:
    """Write ``snapshot`` to ``path`` as a JSONL trace; returns the
    record count (header excluded).

    The parent directory is created if needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({
            "schema": TRACE_SCHEMA, "version": SCHEMA_VERSION,
            "where": snapshot.where, "max_spans": snapshot.max_spans,
        }) + "\n")

        def emit(record: dict) -> None:
            nonlocal records
            fh.write(json.dumps(record) + "\n")
            records += 1

        for name, label, value in snapshot.counters:
            emit({"type": "counter", "name": name, "label": label,
                  "value": value})
        for name, t_s, value in snapshot.gauges:
            emit({"type": "gauge", "name": name, "t_s": t_s,
                  "value": value})
        for name, label, state in snapshot.histograms:
            emit({"type": "histogram", "name": name, "label": label,
                  "count": state.count, "total": state.total,
                  "min": state.min_value, "max": state.max_value,
                  "buckets": list(state.buckets)})
        for span in snapshot.spans:
            emit({"type": "span", "name": span.name, "where": span.where,
                  "t_s": span.t_s, "duration_s": span.duration_s,
                  "attrs": dict(span.attrs), "seq": span.seq})
        for name, count, total in snapshot.span_stats:
            emit({"type": "span_stat", "name": name, "count": count,
                  "total_s": total})
        for usage in snapshot.segments:
            emit({"type": "segment", "workload": list(usage.workload),
                  "assignments": [list(row) for row in usage.assignments],
                  "rates": list(usage.rates),
                  "duration_s": usage.duration_s})
    return records


def read_trace(path: str | Path) -> TelemetrySnapshot:
    """Rebuild a :class:`TelemetrySnapshot` from a :func:`write_trace`
    file.

    Refuses (``ValueError``) a file whose header is missing, names a
    different schema, or carries an unknown version — the trace layout
    is a contract, not a suggestion.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise ValueError(f"trace file {path} is empty")
    header = json.loads(lines[0])
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"trace file {path} has schema {header.get('schema')!r}; "
            f"expected {TRACE_SCHEMA!r}")
    if header.get("version") != SCHEMA_VERSION:
        raise ValueError(
            f"trace file {path} has version {header.get('version')!r}; "
            f"this build reads version {SCHEMA_VERSION}")
    counters: list = []
    gauges: list = []
    histograms: list = []
    spans: list = []
    span_stats: list = []
    segments: list = []
    for line in lines[1:]:
        record = json.loads(line)
        kind = record.get("type")
        if kind == "counter":
            counters.append((record["name"], record["label"],
                             record["value"]))
        elif kind == "gauge":
            gauges.append((record["name"], record["t_s"], record["value"]))
        elif kind == "histogram":
            histograms.append((record["name"], record["label"],
                               HistogramState(record["count"],
                                              record["total"],
                                              record["min"], record["max"],
                                              tuple(record["buckets"]))))
        elif kind == "span":
            spans.append(Span(record["name"], record["where"],
                              record["t_s"], record["duration_s"],
                              tuple(sorted(record["attrs"].items())),
                              record["seq"]))
        elif kind == "span_stat":
            span_stats.append((record["name"], record["count"],
                               record["total_s"]))
        elif kind == "segment":
            segments.append(SegmentUsage(
                tuple(record["workload"]),
                tuple(tuple(row) for row in record["assignments"]),
                tuple(record["rates"]),
                record["duration_s"]))
        else:
            raise ValueError(
                f"trace file {path} has unknown record type {kind!r}")
    return TelemetrySnapshot(
        where=header.get("where", ""),
        max_spans=header.get("max_spans", 64),
        counters=tuple(counters),
        gauges=tuple(gauges),
        histograms=tuple(histograms),
        spans=tuple(spans),
        span_stats=tuple(span_stats),
        segments=tuple(segments),
    )


def export_segments(snapshot: TelemetrySnapshot) -> list[dict]:
    """The realized plan-usage rows of ``snapshot`` as plain dicts.

    Each row is one ``(workload, mapping, rates)`` triple with its total
    realized service seconds — the training-row shape the estimator
    fine-tuning loop consumes (realized rates as regression targets,
    ``duration_s`` as a natural sample weight).

    Rows come back sorted by ``(workload, assignments, rates,
    duration_s)`` regardless of the order segments were recorded — a
    merged snapshot's segment order depends on the merge order of its
    parts, and the fine-tuning loop's bit-identity contract needs the
    exported rows to be a pure function of the snapshot's *contents*.
    A snapshot with no segments exports ``[]``.
    """
    ordered = sorted(
        snapshot.segments,
        key=lambda u: (u.workload, u.assignments, u.rates, u.duration_s))
    return [{
        "workload": list(usage.workload),
        "assignments": [list(row) for row in usage.assignments],
        "rates": list(usage.rates),
        "duration_s": usage.duration_s,
    } for usage in ordered]
