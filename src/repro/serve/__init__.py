"""Online serving layer: admission control + warm-start replanning.

The paper's motivating setting — an edge data center where multiple users
submit DNN queries — is a *serving* problem, not a one-shot planning
problem.  This subsystem closes that gap:

* :mod:`repro.serve.admission` — SLA-tier-aware accept/queue/reject
  decisions instead of the blind ``max_concurrent`` drop.
* :mod:`repro.serve.preempt` — pluggable preemption: a blocked
  higher-tier arrival may evict (suspend + later resume) or tier-demote
  a running lower-tier session instead of waiting behind it.
* :mod:`repro.serve.replan` — pluggable replanning on every workload
  change: full search, warm start from the incumbent mapping, or a plan
  cache keyed on the canonical workload.
* :mod:`repro.serve.loop` — the event-driven loop tying both to the
  steady-state simulator, with re-mapping gap semantics shared with
  :func:`repro.sim.run_dynamic_scenario`.  Arrivals stream: any ordered
  iterable of requests works, so million-session traces are served
  without ever being materialised.
* :mod:`repro.serve.reference` — the pre-streaming loop kept as an
  executable oracle; the property suite pins the two bit-identical.
* :mod:`repro.serve.report` — plain-data per-session and aggregate
  outcomes (:class:`ServeReport`), safe to ship across process pools.
* :mod:`repro.serve.fleet` — the cluster layer: a dispatcher routing one
  shared demand across N heterogeneous nodes (round-robin, least-loaded,
  tier-affinity), with node-failure draining and a :class:`FleetReport`
  rollup of per-node reports.

``repro.runner.DynamicScenario`` wraps a single node into a declarative
spec for dynamic-traffic sweeps; ``repro.runner.FleetScenario`` does the
same for whole fleets, fanning nodes across the process pool.

Every decision point accepts a :class:`repro.obs.Recorder` (default: the
zero-overhead null recorder) — see :mod:`repro.obs` for the deterministic
telemetry subsystem and its bit-identical-reports contract.
"""

from .admission import (
    ADMIT,
    PREEMPT,
    QUEUE,
    REJECT,
    AdmissionConfig,
    AdmissionController,
)
from .loop import ServeConfig, serve_trace
from .preempt import (
    PREEMPTION_POLICIES,
    EvictLowestTier,
    LiveView,
    NoPreempt,
    PreemptionDecision,
    PreemptionPolicy,
    RenegotiateTier,
    build_preemption_policy,
)
from .reference import serve_trace_reference
from .replan import (
    REPLAN_POLICIES,
    FullReplan,
    PlanCacheReplan,
    ReplanOutcome,
    ReplanPolicy,
    WarmStartReplan,
    build_replan_policy,
)
from .report import ServeReport, SessionOutcome

__all__ = [
    "ADMIT",
    "QUEUE",
    "REJECT",
    "PREEMPT",
    "AdmissionConfig",
    "AdmissionController",
    "PreemptionPolicy",
    "PreemptionDecision",
    "LiveView",
    "NoPreempt",
    "EvictLowestTier",
    "RenegotiateTier",
    "PREEMPTION_POLICIES",
    "build_preemption_policy",
    "ServeConfig",
    "serve_trace",
    "serve_trace_reference",
    "ReplanPolicy",
    "ReplanOutcome",
    "FullReplan",
    "WarmStartReplan",
    "PlanCacheReplan",
    "REPLAN_POLICIES",
    "build_replan_policy",
    "ServeReport",
    "SessionOutcome",
]
