"""SLA-tier-aware admission control.

The blind ``TraceConfig.max_concurrent`` cap drops every arrival beyond
the multi-tenancy level, regardless of who is asking.  The serving loop
replaces it with an :class:`AdmissionController` that knows the SLA tier
ladder: a request that cannot be placed immediately is *queued* when its
tier ranks high enough and the waiting room has space, and only otherwise
rejected.  Queued requests abandon after ``max_queue_wait_s`` and are
drained highest-tier-first whenever capacity frees up.

A configured :mod:`~repro.serve.preempt` policy adds a fourth verdict:
:data:`PREEMPT` — the arrival displaces a running lower-tier session
(eviction or tier demotion) instead of waiting behind it.  The controller
only *decides*; the serving loop executes the preemption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..obs import NULL_RECORDER, Recorder
from ..obs.registry import ADMISSION_VERDICT, PREEMPT_PLAN
from ..workloads.sla import SLA_TIERS, SlaClass
from .preempt import (
    EVICT,
    PREEMPTION_POLICIES,
    LiveView,
    PreemptionDecision,
    build_preemption_policy,
)

__all__ = ["AdmissionConfig", "AdmissionController",
           "ADMIT", "QUEUE", "REJECT", "PREEMPT"]

ADMIT = "admit"
QUEUE = "queue"
REJECT = "reject"
PREEMPT = "preempt"


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control knobs of one serving node.

    ``capacity`` is the multi-tenancy level (the paper evaluates up to 5
    concurrent DNNs).  ``min_queue_priority`` draws the line between tiers
    that may wait for a slot and tiers that are turned away outright when
    the node is saturated — with the default ladder, gold and silver
    queue, bronze is rejected.  ``preemption`` keys the
    :data:`~repro.serve.preempt.PREEMPTION_POLICIES` roster; the default
    ``"none"`` keeps the accept/queue/reject ladder untouched.
    """

    capacity: int = 4
    queue_limit: int = 8
    max_queue_wait_s: float = 180.0
    min_queue_priority: float = 0.15
    preemption: str = "none"

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        if self.max_queue_wait_s <= 0:
            raise ValueError("max_queue_wait_s must be positive")
        if self.preemption not in PREEMPTION_POLICIES:
            raise ValueError(
                f"unknown preemption policy {self.preemption!r}; "
                f"choose from {sorted(PREEMPTION_POLICIES)}")


class AdmissionController:
    """Accept / preempt / queue / reject decisions over the tier ladder.

    ``recorder`` (default: the no-op :data:`~repro.obs.NULL_RECORDER`)
    receives one :data:`~repro.obs.registry.ADMISSION_VERDICT` counter
    tick per decision, labelled ``"<tier>/<verdict>"`` — the per-tier
    admission funnel.  Ticks batch locally and reach the recorder on
    :meth:`flush_verdicts` (the serving loop flushes at end of run).
    Recording never changes a verdict.
    """

    def __init__(self, config: AdmissionConfig | None = None,
                 tiers: tuple[SlaClass, ...] = SLA_TIERS,
                 recorder: Recorder = NULL_RECORDER):
        self.config = config if config is not None else AdmissionConfig()
        self.preemption = build_preemption_policy(self.config.preemption)
        self.recorder = recorder
        self._tiers = {t.name: t for t in tiers}
        # Batched admission-funnel ticks keyed ``(tier, verdict)`` and
        # preemption-plan ticks keyed by action.  decide_with_plan runs
        # once per arrival, so both counters accumulate locally and land
        # on the recorder in one :meth:`flush_verdicts` call — same
        # totals, a dict add per event instead of a labelled recorder
        # call.
        self._verdict_acc: dict[tuple[str, str], float] = {}
        self._plan_acc: dict[str, float] = {}

    def tier(self, name: str) -> SlaClass:
        """Resolve a tier name to its :class:`SlaClass` (or raise)."""
        try:
            return self._tiers[name]
        except KeyError:
            raise ValueError(
                f"unknown SLA tier {name!r}; "
                f"choose from {sorted(self._tiers)}") from None

    def can_admit(self, active_count: int, can_place: bool) -> bool:
        """The immediate-admission fast path: a free capacity slot and a
        free pool model name.  Exposed so the serving loop can skip
        building preemption views for arrivals that admit outright."""
        return can_place and active_count < self.config.capacity

    def floor_tier(self) -> SlaClass:
        """The ladder's lowest-priority tier — the demotion floor.

        Derived from whatever ladder this controller was built with, so
        renegotiation works on custom tier sets, not just the default
        gold/silver/bronze one.
        """
        return min(self._tiers.values(), key=lambda t: t.priority)

    def decide(self, tier_name: str, active_count: int, queue_len: int,
               can_place: bool,
               live: Sequence[LiveView] | None = None) -> str:
        """One arrival's fate given the node's current occupancy.

        ``can_place`` tells the controller whether a pool model name is
        free for immediate admission (the event engine identifies DNNs by
        name, so a saturated name pool blocks placement even below the
        capacity cap).  ``live`` — views of the running sessions — feeds
        the preemption policy; without it (or with the ``"none"``
        policy) the verdict degrades to the accept/queue/reject ladder.
        """
        return self.decide_with_plan(tier_name, active_count, queue_len,
                                     can_place, live)[0]

    def decide_with_plan(self, tier_name: str, active_count: int,
                         queue_len: int, can_place: bool,
                         live: Sequence[LiveView] | None = None,
                         ) -> tuple[str, PreemptionDecision | None]:
        """Like :meth:`decide`, but returns the verdict *with* the
        concrete preemption to execute on :data:`PREEMPT`.

        The serving loop uses this form so the executed preemption is
        exactly the decision that produced the verdict — victim
        selection runs once per arrival, and a future stateful policy
        cannot diverge between deciding and executing.
        """
        tier = self.tier(tier_name)
        verdict: tuple[str, PreemptionDecision | None]
        if self.can_admit(active_count, can_place):
            verdict = (ADMIT, None)
        else:
            plan = (self.plan_preemption(tier_name, active_count,
                                         can_place, live)
                    if live is not None else None)
            if plan is not None:
                verdict = (PREEMPT, plan)
            elif queue_len < self.config.queue_limit \
                    and tier.priority >= self.config.min_queue_priority:
                verdict = (QUEUE, None)
            else:
                verdict = (REJECT, None)
        if self.recorder.enabled:
            pair = (tier_name, verdict[0])
            acc = self._verdict_acc
            try:
                acc[pair] += 1.0
            except KeyError:
                acc[pair] = 1.0
        return verdict

    def flush_verdicts(self) -> None:
        """Flush the batched funnel and preemption-plan ticks.

        The serving loop calls this once when the run finishes; anyone
        driving the controller directly with a recording recorder should
        flush before snapshotting.  Idempotent: flushed ticks are
        cleared.
        """
        for (tier_name, decision), value in self._verdict_acc.items():
            self.recorder.count(ADMISSION_VERDICT, value,
                                label=f"{tier_name}/{decision}")
        self._verdict_acc.clear()
        for action, value in self._plan_acc.items():
            self.recorder.count(PREEMPT_PLAN, value, label=action)
        self._plan_acc.clear()

    def plan_preemption(self, tier_name: str, active_count: int,
                        can_place: bool, live: Sequence[LiveView],
                        ) -> PreemptionDecision | None:
        """The executable preemption for a blocked arrival, if any.

        Feasibility is checked here, on top of the policy's own victim
        selection: an eviction frees one slot *and* one pool name, so it
        only needs the post-eviction count to fit the capacity; a
        demotion frees nothing, so it needs a free pool name and
        overcommit headroom (``capacity + max_overcommit``).
        """
        decision = self.preemption.consider(tier_name, live, self)
        if self.recorder.enabled:
            # The same PREEMPT_PLAN tick PreemptionPolicy.decide would
            # emit, batched with the funnel (see flush_verdicts).
            label = decision.action if decision is not None else "none"
            acc = self._plan_acc
            try:
                acc[label] += 1.0
            except KeyError:
                acc[label] = 1.0
        if decision is None:
            return None
        if decision.action == EVICT:
            if active_count - 1 >= self.config.capacity:
                return None
            return decision
        if not can_place:
            return None
        if active_count >= self.config.capacity \
                + self.preemption.max_overcommit:
            return None
        return decision

    def queue_order_key(self, tier_name: str, enqueue_s: float,
                        session_id: int) -> tuple:
        """Drain order: highest tier first, FIFO within a tier."""
        return (-self.tier(tier_name).priority, enqueue_s, session_id)

    def queue_deadline(self, enqueue_s: float) -> float:
        """When a session enqueued at ``enqueue_s`` abandons the queue.

        The serving loop schedules an explicit timeout event at this
        instant (instead of lazily scanning the waiting room on whatever
        event happens next), so abandonments carry their true time even
        through quiet stretches of the trace.
        """
        return enqueue_s + self.config.max_queue_wait_s
