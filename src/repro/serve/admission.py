"""SLA-tier-aware admission control.

The blind ``TraceConfig.max_concurrent`` cap drops every arrival beyond
the multi-tenancy level, regardless of who is asking.  The serving loop
replaces it with an :class:`AdmissionController` that knows the SLA tier
ladder: a request that cannot be placed immediately is *queued* when its
tier ranks high enough and the waiting room has space, and only otherwise
rejected.  Queued requests abandon after ``max_queue_wait_s`` and are
drained highest-tier-first whenever capacity frees up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.sla import SLA_TIERS, SlaClass

__all__ = ["AdmissionConfig", "AdmissionController",
           "ADMIT", "QUEUE", "REJECT"]

ADMIT = "admit"
QUEUE = "queue"
REJECT = "reject"


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control knobs of one serving node.

    ``capacity`` is the multi-tenancy level (the paper evaluates up to 5
    concurrent DNNs).  ``min_queue_priority`` draws the line between tiers
    that may wait for a slot and tiers that are turned away outright when
    the node is saturated — with the default ladder, gold and silver
    queue, bronze is rejected.
    """

    capacity: int = 4
    queue_limit: int = 8
    max_queue_wait_s: float = 180.0
    min_queue_priority: float = 0.15

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        if self.max_queue_wait_s <= 0:
            raise ValueError("max_queue_wait_s must be positive")


class AdmissionController:
    """Accept / queue / reject decisions over the SLA tier ladder."""

    def __init__(self, config: AdmissionConfig | None = None,
                 tiers: tuple[SlaClass, ...] = SLA_TIERS):
        self.config = config if config is not None else AdmissionConfig()
        self._tiers = {t.name: t for t in tiers}

    def tier(self, name: str) -> SlaClass:
        """Resolve a tier name to its :class:`SlaClass` (or raise)."""
        try:
            return self._tiers[name]
        except KeyError:
            raise ValueError(
                f"unknown SLA tier {name!r}; "
                f"choose from {sorted(self._tiers)}") from None

    def decide(self, tier_name: str, active_count: int, queue_len: int,
               can_place: bool) -> str:
        """One arrival's fate given the node's current occupancy.

        ``can_place`` tells the controller whether a pool model name is
        free for immediate admission (the event engine identifies DNNs by
        name, so a saturated name pool blocks placement even below the
        capacity cap).
        """
        tier = self.tier(tier_name)
        if can_place and active_count < self.config.capacity:
            return ADMIT
        if queue_len < self.config.queue_limit \
                and tier.priority >= self.config.min_queue_priority:
            return QUEUE
        return REJECT

    def queue_order_key(self, tier_name: str, enqueue_s: float,
                        session_id: int) -> tuple:
        """Drain order: highest tier first, FIFO within a tier."""
        return (-self.tier(tier_name).priority, enqueue_s, session_id)
