"""Event-driven online serving loop.

This is the online layer over the planning stack: raw session requests
(:func:`repro.workloads.sample_session_requests`) flow through an
SLA-tier-aware :class:`~repro.serve.admission.AdmissionController`
(whose configured :mod:`~repro.serve.preempt` policy may evict or
demote a running lower-tier session for a blocked arrival), every
admission/departure/priority shift invokes the configured
:class:`~repro.serve.replan.ReplanPolicy`, and the modeled decision
latency opens a re-mapping gap during which residents keep running on the
restricted incumbent mapping while the change's subject makes no progress
— the same gap semantics as :func:`repro.sim.run_dynamic_scenario`, but
with live accept/queue/reject decisions instead of a replayed fixed
timeline.

Everything is deterministic in ``(requests, policy manager seed,
ServeConfig.seed)``: the event order is a total order, the only rng draws
pick pool model names at admission, and segment rates come from the
deterministic steady-state solver (via an :class:`EvaluationCache`, so a
persistent warm cache makes repeated runs cheap without changing a bit of
the output).

Note the decision/measurement split when the replan policy's manager
scores candidates with the *learned* estimator
(:class:`~repro.core.EstimatorPredictor`, wired in via
``DynamicScenario.predictor = "estimator"``): the estimator only picks
mappings — and prices each candidate evaluation at the paper's 0.04 s
instead of a full on-board measurement window, shrinking the re-mapping
gaps — while the *realized* segment rates here always come from the
simulated board, the stand-in for what actually runs on the hardware.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..sim.cache import EvaluationCache
from ..sim.dynamic import Segment, Timeline, restrict_mapping
from ..workloads.traces import SessionRequest
from ..zoo.layers import ModelSpec
from ..zoo.registry import MODEL_POOL, get_model
from .admission import ADMIT, PREEMPT, QUEUE, AdmissionConfig, AdmissionController
from .preempt import EVICT, LiveView
from .replan import ReplanPolicy
from .report import (
    ABANDONED,
    EVICTED,
    OUT_OF_HORIZON,
    QUEUED,
    REJECTED,
    SERVED,
    SERVING,
    ServeReport,
    SessionOutcome,
)

__all__ = ["ServeConfig", "serve_trace"]

# Same-timestamp processing order: free capacity before admitting into it.
_RANK_DEPARTURE = 0
_RANK_SHIFT = 1
_RANK_ARRIVAL = 2


@dataclass(frozen=True)
class ServeConfig:
    """One serving node's configuration."""

    horizon_s: float = 600.0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    pool: tuple[str, ...] = MODEL_POOL
    seed: int = 0                  # drives pool-model choice at admission

    def __post_init__(self):
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if not self.pool:
            raise ValueError("pool must not be empty")


class _Live:
    """Mutable accounting record of one admitted session.

    A record survives eviction: it is parked in the waiting room with
    its remaining duration and carried back into the live set on
    resumption, so served/delivered/violation accounting accumulates
    across suspensions.  ``epoch`` increments on every (re-)admission
    and guards the heap against stale departure/shift events scheduled
    for an earlier service interval.  ``pending_shift`` is the not-yet-
    fired tier shift, as an offset relative to ``last_admit_s`` —
    suspended time does not advance it, mirroring how the remaining
    duration freezes while evicted.
    """

    __slots__ = ("request", "model", "tier", "admitted_s", "queue_wait_s",
                 "served", "delivered", "gap", "violation",
                 "last_admit_s", "depart_s", "epoch", "pending_shift",
                 "evictions", "demotions", "resumptions")

    def __init__(self, request: SessionRequest, model: ModelSpec,
                 admitted_s: float, queue_wait_s: float):
        self.request = request
        self.model = model
        self.tier = request.tier
        self.admitted_s = admitted_s
        self.queue_wait_s = queue_wait_s
        self.served = 0.0
        self.delivered = 0.0
        self.gap = 0.0
        self.violation = 0.0
        self.last_admit_s = admitted_s
        self.depart_s = admitted_s + request.duration_s
        self.epoch = 0
        self.pending_shift = request.tier_shift
        self.evictions = 0
        self.demotions = 0
        self.resumptions = 0

    def outcome(self, state: str, departed_s: float | None) -> SessionOutcome:
        return SessionOutcome(
            session_id=self.request.session_id, tier=self.tier,
            arrival_s=self.request.arrival_s, outcome=state,
            model=self.model.name, admitted_s=self.admitted_s,
            departed_s=departed_s, queue_wait_s=self.queue_wait_s,
            served_seconds=self.served, delivered_inferences=self.delivered,
            gap_seconds=self.gap, violation_seconds=self.violation,
            evictions=self.evictions, demotions=self.demotions,
            resumptions=self.resumptions,
        )


def _manager_name(policy: ReplanPolicy) -> str:
    inner = policy
    while not hasattr(inner, "manager") and hasattr(inner, "inner"):
        inner = inner.inner
    manager = getattr(inner, "manager", None)
    return getattr(manager, "name", "unknown")


def serve_trace(requests: list[SessionRequest], policy: ReplanPolicy,
                platform: Platform, config: ServeConfig | None = None,
                cache: EvaluationCache | None = None) -> ServeReport:
    """Serve a raw session-request trace and report what happened.

    ``cache`` is the evaluation cache segment rates are solved through;
    pass a shared (possibly disk-loaded) instance to start warm — the
    report is bit-identical either way, only the wall clock changes.
    """
    config = config if config is not None else ServeConfig()
    if cache is None:
        cache = EvaluationCache(platform)
    controller = AdmissionController(config.admission)
    preempting = config.admission.preemption != "none"
    for request in requests:                   # validate tiers up front
        controller.tier(request.tier)
        if request.tier_shift is not None:
            controller.tier(request.tier_shift[1])
    rng = np.random.default_rng(config.seed)
    horizon = config.horizon_s

    heap: list[tuple] = []
    seq = 0

    def push(time: float, rank: int, kind: str, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, rank, seq, kind, payload))
        seq += 1

    live: dict[str, _Live] = {}                # name -> record, in order
    # Waiting room: (request, enqueue_s, suspended record | None,
    # remaining duration).  Fresh arrivals carry no record; evicted
    # sessions park their accounting record + unserved remainder here.
    queue: list[tuple[SessionRequest, float, _Live | None, float]] = []
    results: dict[int, SessionOutcome] = {}
    epoch_seq = 0                              # admission epochs, see _Live

    for request in sorted(requests,
                          key=lambda r: (r.arrival_s, r.session_id)):
        if request.arrival_s < horizon:
            push(request.arrival_s, _RANK_ARRIVAL, "arrival", request)
        else:
            # A trace sampled for a longer horizon: account for the demand
            # this run never observes instead of silently dropping it.
            results[request.session_id] = SessionOutcome(
                session_id=request.session_id, tier=request.tier,
                arrival_s=request.arrival_s, outcome=OUT_OF_HORIZON)
    timeline = Timeline()
    current: tuple[list[ModelSpec], Mapping] | None = None
    incumbent: tuple[tuple[str, ...], Mapping] | None = None
    clock = 0.0
    replans = 0
    kinds: dict[str, int] = {}
    decision_total = 0.0

    # ------------------------------------------------------------------
    def emit(t0: float, t1: float) -> None:
        duration = t1 - t0
        if duration <= 0:
            return
        names = tuple(live.keys())
        if current is None:
            rates = {n: 0.0 for n in names}
            pots = dict(rates)
        else:
            models, mapping = current
            result = cache.simulate_one(models, mapping)
            rates = {m.name: float(r)
                     for m, r in zip(models, result.rates)}
            pots = {m.name: float(p)
                    for m, p in zip(models, result.potentials)}
            for n in names:                    # admitted but not yet mapped
                rates.setdefault(n, 0.0)
                pots.setdefault(n, 0.0)
        timeline.segments.append(Segment(t0, t1, names, rates, pots))
        for n, record in live.items():
            rate = rates[n]
            record.served += duration
            record.delivered += rate * duration
            if rate <= 0.0:
                record.gap += duration
            if pots[n] < controller.tier(record.tier).min_potential:
                record.violation += duration

    # ------------------------------------------------------------------
    def purge_queue(t: float) -> None:
        max_wait = controller.config.max_queue_wait_s
        kept = []
        for request, enqueued, record, remaining in queue:
            if t - enqueued > max_wait:
                if record is None:
                    results[request.session_id] = SessionOutcome(
                        session_id=request.session_id, tier=request.tier,
                        arrival_s=request.arrival_s, outcome=ABANDONED,
                        queue_wait_s=max_wait)
                else:
                    # A suspended session that waited out the timeout is
                    # eviction collateral, not a plain abandonment.
                    record.queue_wait_s += max_wait
                    results[request.session_id] = record.outcome(
                        EVICTED, departed_s=None)
            else:
                kept.append((request, enqueued, record, remaining))
        queue[:] = kept

    def admit(request: SessionRequest, t: float, queue_wait: float,
              record: _Live | None = None,
              remaining_s: float | None = None) -> None:
        nonlocal epoch_seq
        free = [n for n in config.pool if n not in live]
        name = str(rng.choice(free))
        if record is None:
            record = _Live(request, get_model(name), t, queue_wait)
            duration = request.duration_s
        else:
            # Resumption: the suspended record re-admits with its
            # remainder, possibly under a different free pool name.
            record.model = get_model(name)
            record.resumptions += 1
            record.queue_wait_s += queue_wait
            duration = remaining_s
        epoch_seq += 1
        record.epoch = epoch_seq
        record.last_admit_s = t
        record.depart_s = t + duration
        live[name] = record
        if record.depart_s < horizon:
            push(record.depart_s, _RANK_DEPARTURE, "departure",
                 (name, request.session_id, record.epoch))
        if record.pending_shift is not None:
            offset, new_tier = record.pending_shift
            shift_t = t + offset
            if shift_t < min(record.depart_s, horizon):
                push(shift_t, _RANK_SHIFT, "shift",
                     (name, request.session_id, record.epoch, new_tier))

    def queue_tier(item: tuple) -> str:
        """Drain priority follows the *current* tier of a suspended
        record (shifts and demotions included), the request tier else."""
        request, _, record, _ = item
        return record.tier if record is not None else request.tier

    def drain(t: float) -> bool:
        admitted_any = False
        while True:
            purge_queue(t)
            if not queue or len(live) >= controller.config.capacity:
                break
            if all(n in live for n in config.pool):
                break
            queue.sort(key=lambda item: controller.queue_order_key(
                queue_tier(item), item[1], item[0].session_id))
            request, enqueued, record, remaining = queue.pop(0)
            admit(request, t, queue_wait=t - enqueued, record=record,
                  remaining_s=remaining)
            admitted_any = True
        return admitted_any

    def evict(name: str, t: float) -> None:
        """Suspend the named session: park its record (and remainder) in
        the waiting room and free its slot + pool name."""
        victim = live.pop(name)
        remaining = victim.depart_s - t
        if remaining <= 0:
            # A decision gap delayed the victim's own departure past this
            # arrival: it has already served its full duration, so it
            # completes here instead of parking an empty remainder (and
            # being misreported as eviction collateral).
            results[victim.request.session_id] = victim.outcome(
                SERVED, departed_s=t)
            return
        victim.evictions += 1
        if victim.pending_shift is not None:
            offset, new_tier = victim.pending_shift
            victim.pending_shift = (offset - (t - victim.last_admit_s),
                                    new_tier)
        queue.append((victim.request, t, victim, remaining))

    # ------------------------------------------------------------------
    def handle(kind: str, payload, t: float) -> bool:
        """Apply one event; returns True when a replan is needed."""
        if kind == "arrival":
            request = payload
            purge_queue(t)
            free = any(n not in live for n in config.pool)
            if preempting and not controller.can_admit(len(live), free):
                views = tuple(
                    LiveView(name=n, session_id=r.request.session_id,
                             tier=r.tier,
                             priority=controller.tier(r.tier).priority,
                             admitted_s=r.last_admit_s,
                             served_s=r.served)
                    for n, r in live.items())
                # Suspended (evicted) sessions park in the waiting room
                # but do not consume its bounded slots — only fresh
                # arrivals count against queue_limit, else evictions
                # would crowd out the very tier they were made for.
                fresh_queued = sum(1 for item in queue
                                   if item[2] is None)
            else:
                # No policy can preempt (every queue entry is fresh, so
                # len(queue) is exact) — or the arrival admits outright
                # and the verdict reads neither value: skip the
                # per-arrival view build either way.
                views = None
                fresh_queued = len(queue)
            decision, plan = controller.decide_with_plan(
                request.tier, len(live), fresh_queued, free, views)
            if decision == ADMIT:
                admit(request, t, queue_wait=0.0)
                return True
            if decision == PREEMPT:
                if plan.action == EVICT:
                    evict(plan.victim, t)
                else:
                    victim = live[plan.victim]
                    victim.tier = plan.demote_to
                    victim.demotions += 1
                    # The tier contract was renegotiated: a pending
                    # mid-session promotion is void with it (its heap
                    # event is ignored by the None guard below).
                    victim.pending_shift = None
                admit(request, t, queue_wait=0.0)
                return True
            if decision == QUEUE:
                queue.append((request, t, None, request.duration_s))
                return False
            results[request.session_id] = SessionOutcome(
                session_id=request.session_id, tier=request.tier,
                arrival_s=request.arrival_s, outcome=REJECTED)
            return False
        if kind == "departure":
            name, session_id, epoch = payload
            record = live.get(name)
            if record is None or record.request.session_id != session_id \
                    or record.epoch != epoch:
                return False       # stale: slot reused or session resumed
            del live[name]
            results[session_id] = record.outcome(SERVED, departed_s=t)
            drain(t)
            return True
        # kind == "shift"
        name, session_id, epoch, new_tier = payload
        record = live.get(name)
        if record is None or record.request.session_id != session_id \
                or record.epoch != epoch:
            return False
        if record.pending_shift is None:
            return False     # cancelled — e.g. voided by a renegotiation
        record.tier = new_tier
        record.pending_shift = None
        return True

    # ------------------------------------------------------------------
    def replan(t: float) -> float:
        nonlocal current, incumbent, replans, decision_total
        if not live:
            current = None
            incumbent = None
            return t
        workload = [record.model for record in live.values()]
        vector = np.array([controller.tier(record.tier).priority
                           for record in live.values()])
        outcome = policy.replan(workload, vector, incumbent)
        replans += 1
        kinds[outcome.kind] = kinds.get(outcome.kind, 0) + 1
        decision_total += outcome.decision_seconds
        gap = max(0.0, outcome.decision_seconds)
        if gap > 0 and t < horizon:
            # Decision window: residents run the restricted incumbent,
            # the change's subject waits at rate 0.
            if current is not None:
                prev_models, prev_mapping = current
                current = restrict_mapping(
                    prev_mapping, [m.name for m in prev_models], workload)
            gap_end = min(t + gap, horizon)
            emit(t, gap_end)
            t = gap_end
        current = (workload, outcome.mapping)
        incumbent = (tuple(m.name for m in workload), outcome.mapping)
        return t

    # ------------------------------------------------------------------
    while heap:
        t_event = heap[0][0]
        if t_event >= horizon:
            break
        # Events landing inside a decision gap take effect when it closes.
        effective = max(clock, t_event)
        emit(clock, effective)
        clock = effective
        needs_replan = False
        while heap and heap[0][0] == t_event:
            _, _, _, kind, payload = heapq.heappop(heap)
            needs_replan |= handle(kind, payload, clock)
        if needs_replan:
            clock = replan(clock)

    emit(clock, horizon)

    # ------------------------------------------------------- finalize
    for record in live.values():
        results[record.request.session_id] = record.outcome(
            SERVING, departed_s=None)
    max_wait = controller.config.max_queue_wait_s
    for request, enqueued, record, _ in queue:
        wait = horizon - enqueued
        if record is not None:
            record.queue_wait_s += min(wait, max_wait)
            results[request.session_id] = record.outcome(
                EVICTED, departed_s=None)
            continue
        state = ABANDONED if wait > max_wait else QUEUED
        results[request.session_id] = SessionOutcome(
            session_id=request.session_id, tier=request.tier,
            arrival_s=request.arrival_s, outcome=state,
            queue_wait_s=min(wait, max_wait))

    sessions = tuple(results[sid] for sid in sorted(results))
    return ServeReport(
        horizon_s=horizon, policy=policy.name,
        manager=_manager_name(policy), sessions=sessions,
        timeline=timeline, replans=replans, replan_kinds=kinds,
        total_decision_seconds=decision_total,
    )
