"""Event-driven online serving loop, built to stream million-session traces.

This is the online layer over the planning stack: raw session requests
(:func:`repro.workloads.iter_session_requests`) flow through an
SLA-tier-aware :class:`~repro.serve.admission.AdmissionController`
(whose configured :mod:`~repro.serve.preempt` policy may evict or
demote a running lower-tier session for a blocked arrival), every
admission/departure/priority shift invokes the configured
:class:`~repro.serve.replan.ReplanPolicy`, and the modeled decision
latency opens a re-mapping gap during which residents keep running on the
restricted incumbent mapping while the change's subject makes no progress
— the same gap semantics as :func:`repro.sim.run_dynamic_scenario`, but
with live accept/queue/reject decisions instead of a replayed fixed
timeline.

The loop is architected for traces far longer than memory:

* **Streaming arrivals** — ``requests`` may be any iterable ordered by
  ``(arrival_s, session_id)``; exactly one not-yet-due arrival is held in
  the event heap, so a generator-fed multi-day trace is never
  materialised.  Lists and tuples are sorted (and tier-validated) up
  front, exactly as before.
* **Keyed waiting room** — a lazy-deletion heap on
  :meth:`~repro.serve.admission.AdmissionController.queue_order_key`
  makes every drain admission O(log n) instead of a full re-sort.
* **Scheduled queue timeouts** — each enqueue schedules an explicit
  timeout event at
  :meth:`~repro.serve.admission.AdmissionController.queue_deadline`, so
  abandonments fire (and are stamped) at their true time even through
  quiet stretches, instead of whenever the next unrelated event happened
  to scan the queue.
* **Vectorized accounting** — served/delivered/gap/violation accumulate
  in shared numpy arrays with a per-state precomputed index, one
  fancy-indexed add per segment instead of a python loop over residents;
  ``ServeConfig.record_timeline=False`` additionally drops the O(events)
  segment list for scale runs.

:func:`repro.serve.reference.serve_trace_reference` is the seed
architecture kept as an oracle; the property suite pins the two loops
bit-identical on randomized traces.

Everything is deterministic in ``(requests, policy manager seed,
ServeConfig.seed)``: the event order is a total order, the only rng draws
pick pool model names at admission, and segment rates come from the
deterministic steady-state solver (via an :class:`EvaluationCache`, so a
persistent warm cache makes repeated runs cheap without changing a bit of
the output).

Note the decision/measurement split when the replan policy's manager
scores candidates with the *learned* estimator
(:class:`~repro.core.EstimatorPredictor`, wired in via
``DynamicScenario.predictor = "estimator"``): the estimator only picks
mappings — and prices each candidate evaluation at the paper's 0.04 s
instead of a full on-board measurement window, shrinking the re-mapping
gaps — while the *realized* segment rates here always come from the
simulated board, the stand-in for what actually runs on the hardware.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..hw.platform import Platform
from ..obs import NULL_RECORDER, Recorder
from ..obs.registry import (
    EVAL_CACHE_HITS,
    EVAL_CACHE_MISSES,
    LIVE_SESSIONS,
    PREEMPT_DEMOTIONS,
    PREEMPT_EVICTIONS,
    PREEMPT_RESUMPTIONS,
    QUEUE_ABANDONED,
    QUEUE_DEPTH,
    QUEUE_ENQUEUED,
    QUEUE_WAIT_S,
    REPLAN_DECISION_S,
    REPLAN_INVOCATIONS,
    SPAN_ADMISSION,
    SPAN_PREEMPT,
    SPAN_REPLAN,
)
from ..sim.cache import EvaluationCache
from ..sim.dynamic import Segment, Timeline, restrict_mapping
from ..workloads.traces import SessionRequest
from ..zoo.registry import MODEL_POOL, get_model
from .admission import ADMIT, PREEMPT, QUEUE, AdmissionConfig, AdmissionController
from .preempt import EVICT, LiveView
from .replan import ReplanPolicy
from .report import (
    ABANDONED,
    EVICTED,
    OUT_OF_HORIZON,
    QUEUED,
    REJECTED,
    SERVED,
    SERVING,
    ServeReport,
    SessionOutcome,
)

__all__ = ["ServeConfig", "serve_trace"]

# Same-timestamp processing order: free capacity before admitting into
# it; queue timeouts after everything else, so a session admitted (or
# counted by an arrival's queue-length check) at exactly its deadline is
# not abandoned — the strict `waited > max_wait` test of the original
# lazy purge, now encoded in event rank.
_RANK_DEPARTURE = 0
_RANK_SHIFT = 1
_RANK_ARRIVAL = 2
_RANK_TIMEOUT = 3

#: Buffered telemetry spans flush to the recorder in chunks of this
#: size, so loop-side buffering stays O(chunk) on million-session
#: traces (the recorder itself retains top-K spans only).
_SPAN_CHUNK = 4096


@dataclass(frozen=True)
class ServeConfig:
    """One serving node's configuration.

    ``record_timeline`` keeps the per-segment :class:`Timeline` on the
    report; scale runs over millions of events switch it off, which
    drops the only per-event allocation that outlives the event —
    per-session outcomes and aggregates are unaffected.
    """

    horizon_s: float = 600.0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    pool: tuple[str, ...] = MODEL_POOL
    seed: int = 0                  # drives pool-model choice at admission
    record_timeline: bool = True

    def __post_init__(self):
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if not self.pool:
            raise ValueError("pool must not be empty")


class _Accumulators:
    """Growable numpy columns of per-session service accounting.

    One row per admitted session (``_Live.acc`` is the row index); a
    segment update is a single fancy-indexed add per column over the
    resident rows.  Kept float64 elementwise so every accumulated value
    is bit-identical to the seed loop's per-record python-float adds.
    """

    __slots__ = ("served", "delivered", "gap", "violation", "rows")

    def __init__(self, capacity: int = 64):
        self.rows = 0
        self.served = np.zeros(capacity)
        self.delivered = np.zeros(capacity)
        self.gap = np.zeros(capacity)
        self.violation = np.zeros(capacity)

    def add_row(self) -> int:
        """Claim the next row, doubling the columns when full."""
        if self.rows == self.served.shape[0]:
            grown = self.rows * 2
            for name in self.__slots__[:4]:
                column = np.zeros(grown)
                column[:self.rows] = getattr(self, name)
                setattr(self, name, column)
        self.rows += 1
        return self.rows - 1


class _Live:
    """Mutable accounting record of one admitted session.

    A record survives eviction: it is parked in the waiting room with
    its remaining duration and carried back into the live set on
    resumption, so served/delivered/violation accounting accumulates
    across suspensions.  ``epoch`` increments on every (re-)admission
    and guards the heap against stale departure/shift events scheduled
    for an earlier service interval.  ``pending_shift`` is the not-yet-
    fired tier shift, as an offset relative to ``last_admit_s`` —
    suspended time does not advance it, mirroring how the remaining
    duration freezes while evicted.  ``acc`` is the session's row in the
    loop's :class:`_Accumulators` columns, where the served/delivered/
    gap/violation totals live.
    """

    __slots__ = ("request", "model", "tier", "admitted_s", "queue_wait_s",
                 "last_admit_s", "depart_s", "epoch", "pending_shift",
                 "evictions", "demotions", "resumptions", "acc")

    def __init__(self, request: SessionRequest, model, admitted_s: float,
                 queue_wait_s: float, acc: int):
        self.request = request
        self.model = model
        self.tier = request.tier
        self.admitted_s = admitted_s
        self.queue_wait_s = queue_wait_s
        self.last_admit_s = admitted_s
        self.depart_s = admitted_s + request.duration_s
        self.epoch = 0
        self.pending_shift = request.tier_shift
        self.evictions = 0
        self.demotions = 0
        self.resumptions = 0
        self.acc = acc

    def outcome(self, state: str, departed_s: float | None,
                acc: _Accumulators,
                abandoned_s: float | None = None) -> SessionOutcome:
        """Freeze this record (plus its accumulator row) as an outcome."""
        row = self.acc
        return SessionOutcome(
            session_id=self.request.session_id, tier=self.tier,
            arrival_s=self.request.arrival_s, outcome=state,
            model=self.model.name, admitted_s=self.admitted_s,
            departed_s=departed_s, queue_wait_s=self.queue_wait_s,
            served_seconds=float(acc.served[row]),
            delivered_inferences=float(acc.delivered[row]),
            gap_seconds=float(acc.gap[row]),
            violation_seconds=float(acc.violation[row]),
            evictions=self.evictions, demotions=self.demotions,
            resumptions=self.resumptions, abandoned_s=abandoned_s,
        )


class _WaitEntry:
    """One stay in the waiting room (fresh arrival or parked eviction).

    Lazy heap deletion: draining or timing out flips ``active`` instead
    of searching the heap; stale heap items and stale timeout events
    recognise the flag and miss.  A re-parked session gets a fresh entry,
    so the timeout of an earlier stay can never touch it.
    """

    __slots__ = ("request", "enqueue_s", "record", "remaining", "active")

    def __init__(self, request: SessionRequest, enqueue_s: float,
                 record: _Live | None, remaining: float):
        self.request = request
        self.enqueue_s = enqueue_s
        self.record = record
        self.remaining = remaining
        self.active = True


def _manager_name(policy: ReplanPolicy) -> str:
    inner = policy
    while not hasattr(inner, "manager") and hasattr(inner, "inner"):
        inner = inner.inner
    manager = getattr(inner, "manager", None)
    return getattr(manager, "name", "unknown")


def serve_trace(requests: Iterable[SessionRequest], policy: ReplanPolicy,
                platform: Platform, config: ServeConfig | None = None,
                cache: EvaluationCache | None = None,
                recorder: Recorder = NULL_RECORDER) -> ServeReport:
    """Serve a raw session-request trace and report what happened.

    ``requests`` is any iterable of :class:`SessionRequest`.  A list or
    tuple is tier-validated and sorted up front, exactly as before.  Any
    other iterable — e.g. :func:`repro.workloads.iter_session_requests`
    — is consumed lazily, one arrival ahead of the event clock, and must
    already be ordered by ``(arrival_s, session_id)``; a disordered
    stream raises :class:`ValueError` at the offending request.

    ``cache`` is the evaluation cache segment rates are solved through;
    pass a shared (possibly disk-loaded) instance to start warm — the
    report is bit-identical either way, only the wall clock changes.

    ``recorder`` is the telemetry sink (:mod:`repro.obs`).  The default
    null recorder collects nothing; a
    :class:`~repro.obs.TelemetryRecorder` additionally captures the
    decision path (admission verdicts, preemptions, replans), queue and
    live-set metrics, realized plan segments and the in-run evaluation
    cache hit/miss deltas — all as a pure side channel: the report is
    bit-identical with recording on or off.
    """
    config = config if config is not None else ServeConfig()
    if cache is None:
        cache = EvaluationCache(platform)
    recording = recorder.enabled
    # Hot-path telemetry is accumulated locally and flushed to the
    # recorder once at the end: gauges keep only their last write and
    # segments sum per plan key, so the flushed snapshot is bit-identical
    # to per-event recording at a fraction of the per-event cost.
    live_gauge: tuple[float, float] | None = None
    depth_gauge: tuple[float, float] | None = None
    count_acc: dict[tuple[str, str], float] = {}
    adm_spans: list[tuple] = []       # (t, tier, verdict, session_id)
    replan_spans: list[tuple] = []    # (t, decision_seconds, kind, dnns)
    tier_pairs: dict[str, tuple] = {}     # interned low-cardinality
    verdict_pairs: dict[str, tuple] = {}  # span attr pairs
    kind_pairs: dict[str, tuple] = {}

    def tick(name: str, label: str = "") -> None:
        """Accumulate one locally batched counter tick (recording only)."""
        try:
            count_acc[name, label] += 1.0
        except KeyError:
            count_acc[name, label] = 1.0

    def flush_spans() -> None:
        """Bulk-feed the buffered span streams to the recorder.

        Runs at every :data:`_SPAN_CHUNK` boundary and once at end of
        run; identical retained spans and stats to per-event emission
        (only the recorder-local seq numbering shifts, which no
        contract observes).
        """
        if adm_spans:
            def admission_items():
                for t, tier, verdict, session in adm_spans:
                    tp = tier_pairs.get(tier)
                    if tp is None:
                        tp = tier_pairs[tier] = ("tier", tier)
                    vp = verdict_pairs.get(verdict)
                    if vp is None:
                        vp = verdict_pairs[verdict] = ("verdict", verdict)
                    yield t, 0.0, (("session", session), tp, vp)

            recorder.span_batch(SPAN_ADMISSION, admission_items())
            adm_spans.clear()
        if replan_spans:
            policy_pair = ("policy", policy.name)

            def replan_items():
                for t, duration, kind, dnns in replan_spans:
                    kp = kind_pairs.get(kind)
                    if kp is None:
                        kp = kind_pairs[kind] = ("kind", kind)
                    yield t, duration, (("dnns", dnns), kp, policy_pair)

            recorder.span_batch(SPAN_REPLAN, replan_items())
            for _, duration, _, _ in replan_spans:
                recorder.observe(REPLAN_DECISION_S, duration)
            replan_spans.clear()

    cache_hits0, cache_misses0 = cache.hits, cache.misses
    controller = AdmissionController(config.admission, recorder=recorder)
    preempting = config.admission.preemption != "none"
    rng = np.random.default_rng(config.seed)
    horizon = config.horizon_s
    max_wait = controller.config.max_queue_wait_s
    capacity = controller.config.capacity
    pool = config.pool

    def validate(request: SessionRequest) -> None:
        controller.tier(request.tier)
        if request.tier_shift is not None:
            controller.tier(request.tier_shift[1])

    results: dict[int, SessionOutcome] = {}
    if isinstance(requests, (list, tuple)):
        for request in requests:               # validate tiers up front
            validate(request)
        stream = iter(sorted(requests,
                             key=lambda r: (r.arrival_s, r.session_id)))
        presorted = True
    else:
        stream = iter(requests)
        presorted = False
    last_key = None

    heap: list[tuple] = []
    seq = 0

    def push(time: float, rank: int, kind: str, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, rank, seq, kind, payload))
        seq += 1

    def pull_arrival() -> None:
        """Advance the stream until one in-horizon arrival is on the heap.

        Out-of-horizon requests get their ledger outcome immediately; an
        ordered stream only yields those from the first one on, so this
        drains the tail in one go and the stream ends.
        """
        nonlocal last_key
        for request in stream:
            if not presorted:
                validate(request)
                key = (request.arrival_s, request.session_id)
                if last_key is not None and key < last_key:
                    raise ValueError(
                        "streamed session requests must be ordered by "
                        f"(arrival_s, session_id); got {key} after "
                        f"{last_key}")
                last_key = key
            if request.arrival_s < horizon:
                push(request.arrival_s, _RANK_ARRIVAL, "arrival", request)
                return
            # A trace sampled for a longer horizon: account for the demand
            # this run never observes instead of silently dropping it.
            results[request.session_id] = SessionOutcome(
                session_id=request.session_id, tier=request.tier,
                arrival_s=request.arrival_s, outcome=OUT_OF_HORIZON)

    live: dict[str, _Live] = {}                # name -> record, in order
    acc = _Accumulators()
    # Waiting room: keyed min-heap over queue_order_key with lazy
    # deletion; counters track the active (and active-fresh) entries so
    # admission decisions never scan it.
    wait_heap: list[tuple[tuple, int, _WaitEntry]] = []
    wait_seq = 0
    queued_total = 0
    queued_fresh = 0
    epoch_seq = 0                              # admission epochs, see _Live

    pull_arrival()

    timeline = Timeline()
    record_timeline = config.record_timeline
    current = None
    incumbent = None
    clock = 0.0
    replans = 0
    kinds: dict[str, int] = {}
    decision_total = 0.0

    # --------------------------------------------------------- accounting
    # Per-segment state is a pure function of (live set, tiers, current
    # mapping); it is rebuilt only when one of those changes, so a burst
    # of rejected arrivals re-uses the same rates, index vector and
    # violation mask across all its segments.
    seg_state = None
    seg_dirty = True
    # Realized-plan accumulator cells ``[result, key, duration]``,
    # memoised on the cache's SimResult identity: the cache returns the
    # *same* result object for a repeated (workload, mapping), and
    # holding the result in the cell keeps its id from being reused.  A
    # rebuild for a plan already seen skips re-deriving the (names,
    # assignments, rates) triple, and emit adds onto the cell — never
    # hashing the nested key on the hot path.  Memory is O(distinct
    # plans), the recorder-segment contract.
    seg_cells: dict[int, list] = {}

    def rebuild_segment_state():
        names = tuple(live.keys())
        seg_cell = None
        if current is None:
            rates = {n: 0.0 for n in names}
            pots = dict(rates)
        else:
            models, mapping = current
            result = cache.simulate_one(models, mapping)
            rates = {m.name: float(r)
                     for m, r in zip(models, result.rates)}
            pots = {m.name: float(p)
                    for m, p in zip(models, result.potentials)}
            for n in names:                    # admitted but not yet mapped
                rates.setdefault(n, 0.0)
                pots.setdefault(n, 0.0)
            if recording:
                # The realized (workload, mapping, rates) identity of
                # this plan — service time aggregates by it, so
                # telemetry stays O(distinct plans), not O(events).
                seg_cell = seg_cells.get(id(result))
                if seg_cell is None:
                    key = (tuple(m.name for m in models),
                           mapping.assignments,
                           tuple(float(r) for r in result.rates))
                    seg_cell = seg_cells[id(result)] = [result, key, 0.0]
        count = len(names)
        idx = np.fromiter((r.acc for r in live.values()),
                          dtype=np.intp, count=count)
        rate_vec = np.fromiter((rates[n] for n in names),
                               dtype=np.float64, count=count)
        gap_rows = idx[rate_vec <= 0.0]
        violating = np.fromiter(
            (pots[n] < controller.tier(r.tier).min_potential
             for n, r in live.items()), dtype=bool, count=count)
        viol_rows = idx[violating]
        return names, rates, pots, idx, rate_vec, gap_rows, viol_rows, seg_cell

    def emit(t0: float, t1: float) -> None:
        nonlocal seg_state, seg_dirty
        duration = t1 - t0
        if duration <= 0:
            return
        if seg_dirty:
            seg_state = rebuild_segment_state()
            seg_dirty = False
        (names, rates, pots, idx, rate_vec, gap_rows, viol_rows,
         seg_cell) = seg_state
        if record_timeline:
            timeline.segments.append(Segment(t0, t1, names, rates, pots))
        if seg_cell is not None:          # set only when recording
            seg_cell[2] += duration
        if idx.size:
            acc.served[idx] += duration
            acc.delivered[idx] += rate_vec * duration
            if gap_rows.size:
                acc.gap[gap_rows] += duration
            if viol_rows.size:
                acc.violation[viol_rows] += duration

    # ------------------------------------------------------- waiting room
    def enqueue(request: SessionRequest, t: float, record: _Live | None,
                remaining: float) -> None:
        nonlocal wait_seq, queued_total, queued_fresh, depth_gauge
        entry = _WaitEntry(request, t, record, remaining)
        tier = record.tier if record is not None else request.tier
        heapq.heappush(wait_heap, (
            controller.queue_order_key(tier, t, request.session_id),
            wait_seq, entry))
        wait_seq += 1
        queued_total += 1
        if record is None:
            queued_fresh += 1
        if recording:
            tick(QUEUE_ENQUEUED, tier)
            depth_gauge = (t, queued_total)
        deadline = controller.queue_deadline(t)
        if deadline < horizon:
            push(deadline, _RANK_TIMEOUT, "timeout", entry)

    def deactivate(entry: _WaitEntry) -> None:
        nonlocal queued_total, queued_fresh
        entry.active = False
        queued_total -= 1
        if entry.record is None:
            queued_fresh -= 1

    def compact_wait_heap() -> None:
        """Drop lazily deleted entries once they dominate the heap, so
        its footprint tracks the live waiting room, not total churn."""
        if len(wait_heap) > 64 and len(wait_heap) > 2 * queued_total:
            wait_heap[:] = [item for item in wait_heap if item[2].active]
            heapq.heapify(wait_heap)

    def timeout(entry: _WaitEntry, t: float) -> None:
        """Abandon a waited-out stay at its true deadline ``t``."""
        nonlocal depth_gauge
        if not entry.active:
            return                 # drained into a slot before the bell
        deactivate(entry)
        compact_wait_heap()
        record = entry.record
        if recording:
            tick(QUEUE_ABANDONED, record.tier if record is not None
                 else entry.request.tier)
            depth_gauge = (t, queued_total)
        if record is None:
            results[entry.request.session_id] = SessionOutcome(
                session_id=entry.request.session_id,
                tier=entry.request.tier,
                arrival_s=entry.request.arrival_s, outcome=ABANDONED,
                queue_wait_s=max_wait, abandoned_s=t)
        else:
            # A suspended session that waited out the timeout is
            # eviction collateral, not a plain abandonment.
            record.queue_wait_s += max_wait
            results[entry.request.session_id] = record.outcome(
                EVICTED, departed_s=None, acc=acc, abandoned_s=t)

    def admit(request: SessionRequest, t: float, queue_wait: float,
              record: _Live | None = None,
              remaining_s: float | None = None) -> None:
        nonlocal epoch_seq, seg_dirty, live_gauge
        free = [n for n in pool if n not in live]
        name = str(rng.choice(free))
        if record is None:
            record = _Live(request, get_model(name), t, queue_wait,
                           acc.add_row())
            duration = request.duration_s
        else:
            # Resumption: the suspended record re-admits with its
            # remainder, possibly under a different free pool name.
            record.model = get_model(name)
            record.resumptions += 1
            record.queue_wait_s += queue_wait
            duration = remaining_s
            if recording:
                tick(PREEMPT_RESUMPTIONS)
        if recording and queue_wait > 0.0:
            recorder.observe(QUEUE_WAIT_S, queue_wait)
        epoch_seq += 1
        record.epoch = epoch_seq
        record.last_admit_s = t
        record.depart_s = t + duration
        live[name] = record
        seg_dirty = True
        if recording:
            live_gauge = (t, len(live))
        if record.depart_s < horizon:
            push(record.depart_s, _RANK_DEPARTURE, "departure",
                 (name, request.session_id, record.epoch))
        if record.pending_shift is not None:
            offset, new_tier = record.pending_shift
            shift_t = t + offset
            if shift_t < min(record.depart_s, horizon):
                push(shift_t, _RANK_SHIFT, "shift",
                     (name, request.session_id, record.epoch, new_tier))

    def drain(t: float) -> bool:
        """Admit waiting sessions into freed capacity, best key first.

        Keys are frozen at enqueue time — a parked record's tier cannot
        change while suspended — so each admission is one (amortised)
        heap pop, not a re-sort of the room.
        """
        nonlocal depth_gauge
        admitted_any = False
        while queued_total and len(live) < capacity:
            if all(n in live for n in pool):
                break
            while not wait_heap[0][2].active:
                heapq.heappop(wait_heap)
            _, _, entry = heapq.heappop(wait_heap)
            deactivate(entry)
            admit(entry.request, t, queue_wait=t - entry.enqueue_s,
                  record=entry.record, remaining_s=entry.remaining)
            admitted_any = True
        if recording and admitted_any:
            depth_gauge = (t, queued_total)
        return admitted_any

    def evict(name: str, t: float) -> None:
        """Suspend the named session: park its record (and remainder) in
        the waiting room and free its slot + pool name."""
        nonlocal seg_dirty, live_gauge
        victim = live.pop(name)
        seg_dirty = True
        if recording:
            live_gauge = (t, len(live))
        remaining = victim.depart_s - t
        if remaining <= 0:
            # A decision gap delayed the victim's own departure past this
            # arrival: it has already served its full duration, so it
            # completes here instead of parking an empty remainder (and
            # being misreported as eviction collateral).
            results[victim.request.session_id] = victim.outcome(
                SERVED, departed_s=t, acc=acc)
            return
        victim.evictions += 1
        if victim.pending_shift is not None:
            offset, new_tier = victim.pending_shift
            victim.pending_shift = (offset - (t - victim.last_admit_s),
                                    new_tier)
        enqueue(victim.request, t, victim, remaining)

    # ------------------------------------------------------------------
    def handle(kind: str, payload, t: float) -> bool:
        """Apply one event; returns True when a replan is needed."""
        nonlocal seg_dirty, live_gauge
        if kind == "arrival":
            request = payload
            free = any(n not in live for n in pool)
            if preempting and not controller.can_admit(len(live), free):
                views = tuple(
                    LiveView(name=n, session_id=r.request.session_id,
                             tier=r.tier,
                             priority=controller.tier(r.tier).priority,
                             admitted_s=r.last_admit_s,
                             served_s=float(acc.served[r.acc]))
                    for n, r in live.items())
                # Suspended (evicted) sessions park in the waiting room
                # but do not consume its bounded slots — only fresh
                # arrivals count against queue_limit, else evictions
                # would crowd out the very tier they were made for.
                queue_len = queued_fresh
            else:
                # No policy can preempt (every queued entry is fresh, so
                # the total count is exact) — or the arrival admits
                # outright and the verdict reads neither value: skip the
                # per-arrival view build either way.
                views = None
                queue_len = queued_total
            decision, plan = controller.decide_with_plan(
                request.tier, len(live), queue_len, free, views)
            if recording:
                # Highest-volume span site: buffered raw, bulk-fed to
                # the recorder at chunk boundaries (see flush_spans).
                adm_spans.append((t, request.tier, decision,
                                  request.session_id))
                if len(adm_spans) >= _SPAN_CHUNK:
                    flush_spans()
            if decision == ADMIT:
                admit(request, t, queue_wait=0.0)
                return True
            if decision == PREEMPT:
                if recording:
                    tick(PREEMPT_EVICTIONS if plan.action == EVICT
                         else PREEMPT_DEMOTIONS)
                    recorder.span(SPAN_PREEMPT, t, 0.0,
                                  (("action", plan.action),
                                   ("session", request.session_id),
                                   ("victim", plan.victim)))
                if plan.action == EVICT:
                    evict(plan.victim, t)
                else:
                    victim = live[plan.victim]
                    victim.tier = plan.demote_to
                    victim.demotions += 1
                    # The tier contract was renegotiated: a pending
                    # mid-session promotion is void with it (its heap
                    # event is ignored by the None guard below).
                    victim.pending_shift = None
                    seg_dirty = True
                admit(request, t, queue_wait=0.0)
                return True
            if decision == QUEUE:
                enqueue(request, t, None, request.duration_s)
                return False
            results[request.session_id] = SessionOutcome(
                session_id=request.session_id, tier=request.tier,
                arrival_s=request.arrival_s, outcome=REJECTED)
            return False
        if kind == "departure":
            name, session_id, epoch = payload
            record = live.get(name)
            if record is None or record.request.session_id != session_id \
                    or record.epoch != epoch:
                return False       # stale: slot reused or session resumed
            del live[name]
            seg_dirty = True
            if recording:
                live_gauge = (t, len(live))
            results[session_id] = record.outcome(SERVED, departed_s=t,
                                                 acc=acc)
            drain(t)
            return True
        # kind == "shift"
        name, session_id, epoch, new_tier = payload
        record = live.get(name)
        if record is None or record.request.session_id != session_id \
                or record.epoch != epoch:
            return False
        if record.pending_shift is None:
            return False     # cancelled — e.g. voided by a renegotiation
        record.tier = new_tier
        record.pending_shift = None
        seg_dirty = True
        return True

    # ------------------------------------------------------------------
    def replan(t: float) -> float:
        nonlocal current, incumbent, replans, decision_total, seg_dirty
        if not live:
            current = None
            incumbent = None
            seg_dirty = True
            return t
        workload = [record.model for record in live.values()]
        vector = np.array([controller.tier(record.tier).priority
                           for record in live.values()])
        outcome = policy.replan(workload, vector, incumbent)
        replans += 1
        kinds[outcome.kind] = kinds.get(outcome.kind, 0) + 1
        decision_total += outcome.decision_seconds
        if recording:
            # Buffered like the admission spans; the invocation counter
            # flushes from the loop's own `kinds` tally at end of run.
            replan_spans.append((t, outcome.decision_seconds,
                                 outcome.kind, len(workload)))
            if len(replan_spans) >= _SPAN_CHUNK:
                flush_spans()
        gap = max(0.0, outcome.decision_seconds)
        if gap > 0 and t < horizon:
            # Decision window: residents run the restricted incumbent,
            # the change's subject waits at rate 0.
            if current is not None:
                prev_models, prev_mapping = current
                current = restrict_mapping(
                    prev_mapping, [m.name for m in prev_models], workload)
            seg_dirty = True
            gap_end = min(t + gap, horizon)
            emit(t, gap_end)
            t = gap_end
        current = (workload, outcome.mapping)
        incumbent = (tuple(m.name for m in workload), outcome.mapping)
        seg_dirty = True
        return t

    # ------------------------------------------------------------------
    while heap:
        t_event, _, _, kind, payload = heap[0]
        if t_event >= horizon:
            break
        if kind == "timeout":
            # Out of band: an abandonment changes no live session, emits
            # no segment and does not advance the clock — it only stamps
            # the true (gap-adjusted) abandonment time on the outcome.
            heapq.heappop(heap)
            timeout(payload, max(clock, t_event))
            continue
        # Events landing inside a decision gap take effect when it closes.
        effective = max(clock, t_event)
        emit(clock, effective)
        clock = effective
        needs_replan = False
        while heap and heap[0][0] == t_event:
            _, _, _, kind, payload = heapq.heappop(heap)
            if kind == "timeout":
                timeout(payload, clock)
            else:
                needs_replan |= handle(kind, payload, clock)
                if kind == "arrival":
                    pull_arrival()
        if needs_replan:
            clock = replan(clock)

    emit(clock, horizon)

    # ------------------------------------------------------- finalize
    for record in live.values():
        results[record.request.session_id] = record.outcome(
            SERVING, departed_s=None, acc=acc)
    for _, _, entry in wait_heap:
        if not entry.active:
            continue
        # Still waiting at the horizon: the timeout event would have
        # fired inside the horizon, so the stay is shorter than max_wait.
        wait = min(horizon - entry.enqueue_s, max_wait)
        record = entry.record
        if record is not None:
            record.queue_wait_s += wait
            results[entry.request.session_id] = record.outcome(
                EVICTED, departed_s=None, acc=acc)
            continue
        results[entry.request.session_id] = SessionOutcome(
            session_id=entry.request.session_id, tier=entry.request.tier,
            arrival_s=entry.request.arrival_s, outcome=QUEUED,
            queue_wait_s=wait)

    if recording:
        # Flush the locally accumulated hot-path telemetry (see the
        # declarations up top): batched counter ticks and per-plan
        # segment sums in first-seen order, then the final gauge writes.
        controller.flush_verdicts()
        flush_spans()
        for kind, n in kinds.items():
            recorder.count(REPLAN_INVOCATIONS, float(n), label=kind)
        for (name, label), value in count_acc.items():
            recorder.count(name, value, label=label)
        for cell in seg_cells.values():
            recorder.segment(cell[1], cell[2])
        if live_gauge is not None:
            recorder.gauge(LIVE_SESSIONS, live_gauge[0], live_gauge[1])
        if depth_gauge is not None:
            recorder.gauge(QUEUE_DEPTH, depth_gauge[0], depth_gauge[1])
        # In-run evaluation-cache effectiveness: deltas against the
        # (possibly pre-warmed, possibly shared) cache's starting totals.
        recorder.count(EVAL_CACHE_HITS, float(cache.hits - cache_hits0))
        recorder.count(EVAL_CACHE_MISSES,
                       float(cache.misses - cache_misses0))

    sessions = tuple(results[sid] for sid in sorted(results))
    return ServeReport(
        horizon_s=horizon, policy=policy.name,
        manager=_manager_name(policy), sessions=sessions,
        timeline=timeline, replans=replans, replan_kinds=kinds,
        total_decision_seconds=decision_total,
    )
