"""Event-driven online serving loop.

This is the online layer over the planning stack: raw session requests
(:func:`repro.workloads.sample_session_requests`) flow through an
SLA-tier-aware :class:`~repro.serve.admission.AdmissionController`, every
admission/departure/priority shift invokes the configured
:class:`~repro.serve.replan.ReplanPolicy`, and the modeled decision
latency opens a re-mapping gap during which residents keep running on the
restricted incumbent mapping while the change's subject makes no progress
— the same gap semantics as :func:`repro.sim.run_dynamic_scenario`, but
with live accept/queue/reject decisions instead of a replayed fixed
timeline.

Everything is deterministic in ``(requests, policy manager seed,
ServeConfig.seed)``: the event order is a total order, the only rng draws
pick pool model names at admission, and segment rates come from the
deterministic steady-state solver (via an :class:`EvaluationCache`, so a
persistent warm cache makes repeated runs cheap without changing a bit of
the output).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..sim.cache import EvaluationCache
from ..sim.dynamic import Segment, Timeline, restrict_mapping
from ..workloads.traces import SessionRequest
from ..zoo.layers import ModelSpec
from ..zoo.registry import MODEL_POOL, get_model
from .admission import ADMIT, QUEUE, AdmissionConfig, AdmissionController
from .replan import ReplanPolicy
from .report import (
    ABANDONED,
    OUT_OF_HORIZON,
    QUEUED,
    REJECTED,
    SERVED,
    SERVING,
    ServeReport,
    SessionOutcome,
)

__all__ = ["ServeConfig", "serve_trace"]

# Same-timestamp processing order: free capacity before admitting into it.
_RANK_DEPARTURE = 0
_RANK_SHIFT = 1
_RANK_ARRIVAL = 2


@dataclass(frozen=True)
class ServeConfig:
    """One serving node's configuration."""

    horizon_s: float = 600.0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    pool: tuple[str, ...] = MODEL_POOL
    seed: int = 0                  # drives pool-model choice at admission

    def __post_init__(self):
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if not self.pool:
            raise ValueError("pool must not be empty")


class _Live:
    """Mutable accounting record of one admitted session."""

    __slots__ = ("request", "model", "tier", "admitted_s", "queue_wait_s",
                 "served", "delivered", "gap", "violation")

    def __init__(self, request: SessionRequest, model: ModelSpec,
                 admitted_s: float, queue_wait_s: float):
        self.request = request
        self.model = model
        self.tier = request.tier
        self.admitted_s = admitted_s
        self.queue_wait_s = queue_wait_s
        self.served = 0.0
        self.delivered = 0.0
        self.gap = 0.0
        self.violation = 0.0

    def outcome(self, state: str, departed_s: float | None) -> SessionOutcome:
        return SessionOutcome(
            session_id=self.request.session_id, tier=self.tier,
            arrival_s=self.request.arrival_s, outcome=state,
            model=self.model.name, admitted_s=self.admitted_s,
            departed_s=departed_s, queue_wait_s=self.queue_wait_s,
            served_seconds=self.served, delivered_inferences=self.delivered,
            gap_seconds=self.gap, violation_seconds=self.violation,
        )


def _manager_name(policy: ReplanPolicy) -> str:
    inner = policy
    while not hasattr(inner, "manager") and hasattr(inner, "inner"):
        inner = inner.inner
    manager = getattr(inner, "manager", None)
    return getattr(manager, "name", "unknown")


def serve_trace(requests: list[SessionRequest], policy: ReplanPolicy,
                platform: Platform, config: ServeConfig | None = None,
                cache: EvaluationCache | None = None) -> ServeReport:
    """Serve a raw session-request trace and report what happened.

    ``cache`` is the evaluation cache segment rates are solved through;
    pass a shared (possibly disk-loaded) instance to start warm — the
    report is bit-identical either way, only the wall clock changes.
    """
    config = config if config is not None else ServeConfig()
    if cache is None:
        cache = EvaluationCache(platform)
    controller = AdmissionController(config.admission)
    for request in requests:                   # validate tiers up front
        controller.tier(request.tier)
        if request.tier_shift is not None:
            controller.tier(request.tier_shift[1])
    rng = np.random.default_rng(config.seed)
    horizon = config.horizon_s

    heap: list[tuple] = []
    seq = 0

    def push(time: float, rank: int, kind: str, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, rank, seq, kind, payload))
        seq += 1

    live: dict[str, _Live] = {}                # name -> record, in order
    queue: list[tuple[SessionRequest, float]] = []   # (request, enqueue_s)
    results: dict[int, SessionOutcome] = {}

    for request in sorted(requests,
                          key=lambda r: (r.arrival_s, r.session_id)):
        if request.arrival_s < horizon:
            push(request.arrival_s, _RANK_ARRIVAL, "arrival", request)
        else:
            # A trace sampled for a longer horizon: account for the demand
            # this run never observes instead of silently dropping it.
            results[request.session_id] = SessionOutcome(
                session_id=request.session_id, tier=request.tier,
                arrival_s=request.arrival_s, outcome=OUT_OF_HORIZON)
    timeline = Timeline()
    current: tuple[list[ModelSpec], Mapping] | None = None
    incumbent: tuple[tuple[str, ...], Mapping] | None = None
    clock = 0.0
    replans = 0
    kinds: dict[str, int] = {}
    decision_total = 0.0

    # ------------------------------------------------------------------
    def emit(t0: float, t1: float) -> None:
        duration = t1 - t0
        if duration <= 0:
            return
        names = tuple(live.keys())
        if current is None:
            rates = {n: 0.0 for n in names}
            pots = dict(rates)
        else:
            models, mapping = current
            result = cache.simulate_one(models, mapping)
            rates = {m.name: float(r)
                     for m, r in zip(models, result.rates)}
            pots = {m.name: float(p)
                    for m, p in zip(models, result.potentials)}
            for n in names:                    # admitted but not yet mapped
                rates.setdefault(n, 0.0)
                pots.setdefault(n, 0.0)
        timeline.segments.append(Segment(t0, t1, names, rates, pots))
        for n, record in live.items():
            rate = rates[n]
            record.served += duration
            record.delivered += rate * duration
            if rate <= 0.0:
                record.gap += duration
            if pots[n] < controller.tier(record.tier).min_potential:
                record.violation += duration

    # ------------------------------------------------------------------
    def purge_queue(t: float) -> None:
        max_wait = controller.config.max_queue_wait_s
        kept = []
        for request, enqueued in queue:
            if t - enqueued > max_wait:
                results[request.session_id] = SessionOutcome(
                    session_id=request.session_id, tier=request.tier,
                    arrival_s=request.arrival_s, outcome=ABANDONED,
                    queue_wait_s=max_wait)
            else:
                kept.append((request, enqueued))
        queue[:] = kept

    def admit(request: SessionRequest, t: float, queue_wait: float) -> None:
        free = [n for n in config.pool if n not in live]
        name = str(rng.choice(free))
        record = _Live(request, get_model(name), t, queue_wait)
        live[name] = record
        depart = t + request.duration_s
        if depart < horizon:
            push(depart, _RANK_DEPARTURE, "departure",
                 (name, request.session_id))
        if request.tier_shift is not None:
            offset, new_tier = request.tier_shift
            shift_t = t + offset
            if shift_t < min(depart, horizon):
                push(shift_t, _RANK_SHIFT, "shift",
                     (name, request.session_id, new_tier))

    def drain(t: float) -> bool:
        admitted_any = False
        while True:
            purge_queue(t)
            if not queue or len(live) >= controller.config.capacity:
                break
            if all(n in live for n in config.pool):
                break
            queue.sort(key=lambda item: controller.queue_order_key(
                item[0].tier, item[1], item[0].session_id))
            request, enqueued = queue.pop(0)
            admit(request, t, queue_wait=t - enqueued)
            admitted_any = True
        return admitted_any

    # ------------------------------------------------------------------
    def handle(kind: str, payload, t: float) -> bool:
        """Apply one event; returns True when a replan is needed."""
        if kind == "arrival":
            request = payload
            purge_queue(t)
            free = any(n not in live for n in config.pool)
            decision = controller.decide(request.tier, len(live),
                                         len(queue), free)
            if decision == ADMIT:
                admit(request, t, queue_wait=0.0)
                return True
            if decision == QUEUE:
                queue.append((request, t))
                return False
            results[request.session_id] = SessionOutcome(
                session_id=request.session_id, tier=request.tier,
                arrival_s=request.arrival_s, outcome=REJECTED)
            return False
        if kind == "departure":
            name, session_id = payload
            record = live.get(name)
            if record is None or record.request.session_id != session_id:
                return False
            del live[name]
            results[session_id] = record.outcome(SERVED, departed_s=t)
            drain(t)
            return True
        # kind == "shift"
        name, session_id, new_tier = payload
        record = live.get(name)
        if record is None or record.request.session_id != session_id:
            return False
        record.tier = new_tier
        return True

    # ------------------------------------------------------------------
    def replan(t: float) -> float:
        nonlocal current, incumbent, replans, decision_total
        if not live:
            current = None
            incumbent = None
            return t
        workload = [record.model for record in live.values()]
        vector = np.array([controller.tier(record.tier).priority
                           for record in live.values()])
        outcome = policy.replan(workload, vector, incumbent)
        replans += 1
        kinds[outcome.kind] = kinds.get(outcome.kind, 0) + 1
        decision_total += outcome.decision_seconds
        gap = max(0.0, outcome.decision_seconds)
        if gap > 0 and t < horizon:
            # Decision window: residents run the restricted incumbent,
            # the change's subject waits at rate 0.
            if current is not None:
                prev_models, prev_mapping = current
                current = restrict_mapping(
                    prev_mapping, [m.name for m in prev_models], workload)
            gap_end = min(t + gap, horizon)
            emit(t, gap_end)
            t = gap_end
        current = (workload, outcome.mapping)
        incumbent = (tuple(m.name for m in workload), outcome.mapping)
        return t

    # ------------------------------------------------------------------
    while heap:
        t_event = heap[0][0]
        if t_event >= horizon:
            break
        # Events landing inside a decision gap take effect when it closes.
        effective = max(clock, t_event)
        emit(clock, effective)
        clock = effective
        needs_replan = False
        while heap and heap[0][0] == t_event:
            _, _, _, kind, payload = heapq.heappop(heap)
            needs_replan |= handle(kind, payload, clock)
        if needs_replan:
            clock = replan(clock)

    emit(clock, horizon)

    # ------------------------------------------------------- finalize
    for record in live.values():
        results[record.request.session_id] = record.outcome(
            SERVING, departed_s=None)
    max_wait = controller.config.max_queue_wait_s
    for request, enqueued in queue:
        wait = horizon - enqueued
        state = ABANDONED if wait > max_wait else QUEUED
        results[request.session_id] = SessionOutcome(
            session_id=request.session_id, tier=request.tier,
            arrival_s=request.arrival_s, outcome=state,
            queue_wait_s=min(wait, max_wait))

    sessions = tuple(results[sid] for sid in sorted(results))
    return ServeReport(
        horizon_s=horizon, policy=policy.name,
        manager=_manager_name(policy), sessions=sessions,
        timeline=timeline, replans=replans, replan_kinds=kinds,
        total_decision_seconds=decision_total,
    )
