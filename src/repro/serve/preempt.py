"""Preemption and tier-renegotiation policies for the serving loop.

The admission controller alone can only accept, queue or reject: a gold
arrival into a saturated node waits behind *running* bronze sessions —
exactly the starvation mode a priority-aware manager exists to avoid.
This module adds the missing lever as a pluggable strategy the
:class:`~repro.serve.admission.AdmissionController` consults whenever
immediate admission fails:

* :class:`NoPreempt` — the baseline: never touch running sessions; the
  arrival queues or is rejected as before.
* :class:`EvictLowestTier` — *suspend* the cheapest strictly-lower-tier
  running session (lowest tier priority, least accumulated service on
  ties) and admit the blocked arrival into the freed slot.  The victim
  re-enters the waiting room with its remaining duration and resumes
  when capacity frees up; if it never does, it ends in the ``evicted``
  terminal state.
* :class:`RenegotiateTier` — demote the same victim's SLA tier to the
  ladder floor (the controller's lowest tier, whatever the ladder)
  instead of evicting it, and admit the arrival by
  *overcommitting* the node one slot past its admission capacity.  The
  victim keeps running — squeezed by the extra contention and stripped
  of its tier guarantee — so there is no eviction collateral, at the
  price of lower potentials for everyone while overcommitted.

Policies never preempt on behalf of an equal-or-lower-tier arrival
(no gold-vs-gold self-preemption) and are deterministic in (arrival
tier, live-session views).  The serving loop executes the returned
:class:`PreemptionDecision` and accounts evictions, demotions and
resumptions in the :class:`~repro.serve.report.ServeReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..obs import NULL_RECORDER, Recorder
from ..obs.registry import PREEMPT_PLAN

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .admission import AdmissionController

__all__ = [
    "EVICT",
    "DEMOTE",
    "LiveView",
    "PreemptionDecision",
    "PreemptionPolicy",
    "NoPreempt",
    "EvictLowestTier",
    "RenegotiateTier",
    "PREEMPTION_POLICIES",
    "build_preemption_policy",
]

#: Preemption actions a policy may decide on.
EVICT = "evict"
DEMOTE = "demote"


@dataclass(frozen=True)
class LiveView:
    """Controller-side snapshot of one running session at an arrival.

    ``name`` is the pool model name the session occupies (the node-local
    resource eviction frees); ``priority`` is its *current* tier's
    resolved priority weight, so mid-session tier shifts and earlier
    demotions are visible to the victim selection.  ``served_s`` is the
    session's accumulated service time across suspensions — the
    investment the tie-break protects (``admitted_s`` is the latest
    admission instant, which resets on resumption and would re-target
    previously evicted sessions).
    """

    name: str
    session_id: int
    tier: str
    priority: float
    admitted_s: float
    served_s: float = 0.0


@dataclass(frozen=True)
class PreemptionDecision:
    """A policy's answer: what to do to which running session.

    ``action`` is :data:`EVICT` (suspend the victim, admit into its
    slot) or :data:`DEMOTE` (drop the victim's tier to ``demote_to``
    and admit the arrival by overcommitting).  ``victim`` names the
    victim's pool model slot.
    """

    action: str
    victim: str
    demote_to: str | None = None


def _lowest_victim(live: Sequence[LiveView],
                   below_priority: float,
                   above_priority: float = 0.0) -> LiveView | None:
    """The cheapest preemptable session, deterministically.

    Candidates rank strictly below ``below_priority`` (an arrival never
    preempts its own tier or better) and strictly above
    ``above_priority`` (renegotiation cannot demote a session already at
    the floor).  Among candidates the lowest priority loses; ties break
    to the session with the least accumulated service (cheapest to
    throw away — and immune to resumption resetting admission times),
    then the highest session id.
    """
    candidates = [v for v in live
                  if above_priority < v.priority < below_priority]
    if not candidates:
        return None
    return min(candidates,
               key=lambda v: (v.priority, v.served_s, -v.session_id))


class PreemptionPolicy:
    """Strategy interface: may a blocked arrival displace a resident?

    ``consider`` sees the arrival's tier name, the views of every
    running session and the controller (for tier-ladder resolution) and
    returns a :class:`PreemptionDecision` or ``None`` (no preemption —
    the admission verdict falls through to queue/reject).
    ``max_overcommit`` is how many slots past the admission capacity
    the policy's decisions may push the node (only demotions do).
    """

    name: str = "preemption"
    max_overcommit: int = 0

    def consider(self, tier_name: str, live: Sequence[LiveView],
                 controller: "AdmissionController",
                 ) -> PreemptionDecision | None:
        """Return the preemption to perform for this arrival, if any."""
        raise NotImplementedError  # pragma: no cover

    def decide(self, tier_name: str, live: Sequence[LiveView],
               controller: "AdmissionController",
               recorder: Recorder = NULL_RECORDER,
               ) -> PreemptionDecision | None:
        """:meth:`consider`, with the verdict counted on ``recorder``.

        One :data:`~repro.obs.registry.PREEMPT_PLAN` counter tick per
        consult, labelled by the planned action (``evict`` / ``demote``
        / ``none``), for callers driving a policy directly.  (The
        admission controller calls :meth:`consider` and batches the
        identical tick — see ``AdmissionController.flush_verdicts``.)
        The decision itself is exactly ``consider``'s — the recorder is
        a passive side channel.
        """
        decision = self.consider(tier_name, live, controller)
        if recorder.enabled:
            recorder.count(PREEMPT_PLAN,
                           label=decision.action if decision is not None
                           else "none")
        return decision


class NoPreempt(PreemptionPolicy):
    """The baseline: running sessions are untouchable."""

    name = "none"

    def consider(self, tier_name, live, controller):
        """Never preempt; the arrival queues or is rejected as before."""
        return None


class EvictLowestTier(PreemptionPolicy):
    """Suspend the cheapest strictly-lower-tier session for the arrival.

    The victim is the running session with the lowest current tier
    priority (least accumulated service on ties); it is only chosen when
    its priority is *strictly* below the arrival's, so equal tiers never
    preempt each other.  The serving loop re-queues the victim with its
    remaining duration — a later drain resumes it, otherwise it ends
    ``evicted``.
    """

    name = "evict_lowest_tier"

    def consider(self, tier_name, live, controller):
        """Pick the lowest-tier victim strictly below the arrival."""
        arrival = controller.tier(tier_name)
        victim = _lowest_victim(live, below_priority=arrival.priority)
        if victim is None:
            return None
        return PreemptionDecision(action=EVICT, victim=victim.name)


class RenegotiateTier(PreemptionPolicy):
    """Demote the victim's tier instead of evicting it.

    The victim selection matches :class:`EvictLowestTier`, but a victim
    already at the ladder floor (``floor_tier``) is not demotable — the
    arrival then falls through to queue/reject, so an all-bronze node
    renegotiates nothing.  Demotion voids the victim's old contract
    entirely: a pending mid-session tier shift is cancelled with it —
    the session stays at the floor instead of silently re-promoting
    later.  The arrival is admitted by overcommitting the
    node up to ``max_overcommit`` slots past its admission capacity
    (the contention solver handles the extra co-runner; everyone's
    potential drops while overcommitted, which is the policy's price).
    """

    name = "renegotiate"

    def __init__(self, floor_tier: str | None = None,
                 max_overcommit: int = 1):
        if max_overcommit < 1:
            raise ValueError("max_overcommit must be at least 1")
        # None = the controller ladder's lowest tier, resolved per call,
        # so the policy works on custom tier sets too.
        self.floor_tier = floor_tier
        self.max_overcommit = max_overcommit

    def consider(self, tier_name, live, controller):
        """Pick a victim demotable to the floor, strictly below the
        arrival's tier; ``None`` when everyone is already at the floor."""
        arrival = controller.tier(tier_name)
        floor = (controller.tier(self.floor_tier)
                 if self.floor_tier is not None
                 else controller.floor_tier())
        victim = _lowest_victim(live, below_priority=arrival.priority,
                                above_priority=floor.priority)
        if victim is None:
            return None
        return PreemptionDecision(action=DEMOTE, victim=victim.name,
                                  demote_to=floor.name)


#: Roster of preemption-policy factories, keyed for scenario specs and
#: :class:`~repro.serve.admission.AdmissionConfig.preemption`.
PREEMPTION_POLICIES = {
    "none": NoPreempt,
    "evict_lowest_tier": EvictLowestTier,
    "renegotiate": RenegotiateTier,
}


def build_preemption_policy(key: str) -> PreemptionPolicy:
    """Build a fresh preemption policy from its roster key.

    Scenario specs store the key (like the replan and routing rosters);
    an unknown key raises with the known choices listed.
    """
    try:
        factory = PREEMPTION_POLICIES[key]
    except KeyError:
        raise ValueError(
            f"unknown preemption policy {key!r}; "
            f"choose from {sorted(PREEMPTION_POLICIES)}") from None
    return factory()
