"""Replanning policies for the online serving loop.

Every arrival, departure or priority shift changes the workload the
incumbent mapping was planned for.  Re-running the full search each time
is the paper's implicit policy, and its decision latency is what opens the
grey re-mapping gaps of Fig. 10.  The serving loop therefore takes the
policy as a pluggable strategy:

* :class:`FullReplan` — re-plan from scratch through the wrapped manager.
* :class:`WarmStartReplan` — extend the incumbent mapping: residents keep
  their placement, each new DNN is tried whole on every component, and the
  small candidate set is scored through the manager's (cache-backed)
  predictor.  Only when no candidate clears the starvation thresholds does
  a reduced-budget search run.  Decision latency is the few candidate
  measurements instead of the full search budget.
* :class:`PlanCacheReplan` — memoise ``(workload names, priorities) ->
  mapping`` across the run; a recurring canonical workload is answered in
  O(1) with zero modeled latency and bit-identical steady-state rates.

Policies report their modeled decision latency via
:class:`ReplanOutcome`; the loop turns it into gap time exactly like
:func:`repro.sim.run_dynamic_scenario` does for planner latency.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.manager import Manager, RankMap
from ..core.priorities import dynamic_priorities, normalize_priorities
from ..mapping.mapping import Mapping, gpu_only_mapping
from ..obs import NULL_RECORDER, Recorder
from ..obs.registry import (
    REPLAN_DECISION_S,
    REPLAN_INVOCATIONS,
    SPAN_REPLAN,
)
from ..search.reward import DISQUALIFIED, mapping_reward, thresholds_for
from ..zoo.layers import ModelSpec

__all__ = [
    "Incumbent",
    "ReplanOutcome",
    "ReplanPolicy",
    "FullReplan",
    "WarmStartReplan",
    "PlanCacheReplan",
    "REPLAN_POLICIES",
    "build_replan_policy",
]

#: What the loop remembers of the previous decision: the workload names it
#: was planned for (in order) and the deployed mapping.
Incumbent = tuple[tuple[str, ...], Mapping]


@dataclass(frozen=True)
class ReplanOutcome:
    """A policy's answer: the mapping, its modeled latency, and how."""

    mapping: Mapping
    decision_seconds: float
    kind: str                      # "full" | "warm" | "warm_fallback" | ...


class ReplanPolicy:
    """Strategy interface invoked on every workload/priority change."""

    name: str = "replan"

    def replan(self, workload: list[ModelSpec],
               priorities: np.ndarray | None,
               incumbent: Incumbent | None) -> ReplanOutcome:
        """Decide the next mapping for ``workload``.

        ``incumbent`` is what the loop remembers of the previous decision
        (``None`` on the first plan of a run); ``priorities`` is the user
        vector for static-mode managers, ``None`` in dynamic mode.
        """
        raise NotImplementedError  # pragma: no cover

    def replan_observed(self, workload: list[ModelSpec],
                        priorities: np.ndarray | None,
                        incumbent: Incumbent | None,
                        now_s: float,
                        recorder: Recorder = NULL_RECORDER) -> ReplanOutcome:
        """:meth:`replan`, traced on ``recorder``.

        For callers driving a policy directly (the serving loop batches
        the identical telemetry itself): each outcome
        ticks the kind-labelled
        :data:`~repro.obs.registry.REPLAN_INVOCATIONS` counter, streams
        its modeled decision seconds into the
        :data:`~repro.obs.registry.REPLAN_DECISION_S` histogram, and
        traces a :data:`~repro.obs.registry.SPAN_REPLAN` span at
        simulated ``now_s`` whose duration *is* the modeled decision
        latency.  The outcome is exactly ``replan``'s — recording never
        feeds back into the decision.
        """
        outcome = self.replan(workload, priorities, incumbent)
        if recorder.enabled:
            recorder.count(REPLAN_INVOCATIONS, label=outcome.kind)
            recorder.observe(REPLAN_DECISION_S, outcome.decision_seconds)
            recorder.span(SPAN_REPLAN, now_s, outcome.decision_seconds,
                          (("dnns", len(workload)),
                           ("kind", outcome.kind),
                           ("policy", self.name)))
        return outcome


class FullReplan(ReplanPolicy):
    """Re-plan from scratch on every change (the paper's implicit policy)."""

    name = "full"

    def __init__(self, manager: Manager):
        self.manager = manager

    def replan(self, workload, priorities, incumbent) -> ReplanOutcome:
        """Run the wrapped manager's full search, ignoring the incumbent."""
        decision = self.manager.plan(workload, priorities)
        return ReplanOutcome(decision.mapping, decision.decision_seconds,
                             "full")


class WarmStartReplan(ReplanPolicy):
    """Extend the incumbent mapping instead of searching from scratch.

    Requires a :class:`~repro.core.manager.RankMap` (the policy reuses its
    predictor, reward configuration and starvation thresholds).  The first
    plan of a run — no incumbent — is a full search: it seeds the state
    every later warm start extends.
    """

    name = "warm"

    def __init__(self, manager: Manager, fallback_fraction: float = 0.25):
        if not isinstance(manager, RankMap):
            raise ValueError(
                "WarmStartReplan needs a RankMap manager (it reuses the "
                f"predictor and reward config); got {type(manager).__name__}")
        if not 0.0 < fallback_fraction <= 1.0:
            raise ValueError("fallback_fraction must be in (0, 1]")
        self.manager = manager
        mcts = manager.config.mcts
        reduced = replace(
            mcts, iterations=max(4, int(mcts.iterations * fallback_fraction)))
        # Shares the predictor (and therefore the evaluation cache) with
        # the wrapped manager; only the search budget shrinks.
        self._fallback = RankMap(manager.platform, manager.predictor,
                                 replace(manager.config, mcts=reduced))

    # ------------------------------------------------------------------
    def _candidates(self, workload: list[ModelSpec],
                    incumbent: Incumbent) -> list[Mapping]:
        old_names, old_mapping = incumbent
        by_name = dict(zip(old_names, old_mapping.assignments))
        new_models = [m for m in workload if m.name not in by_name]
        num_components = self.manager.platform.num_components

        def extend(component: int) -> Mapping:
            rows = []
            for m in workload:
                kept = by_name.get(m.name)
                rows.append(kept if kept is not None
                            else tuple(component
                                       for _ in range(m.num_blocks)))
            return Mapping(tuple(rows))

        if new_models:
            candidates = [extend(c) for c in range(num_components)]
        else:
            # Departure / priority shift: the restricted incumbent itself.
            candidates = [extend(0)]
        candidates.append(gpu_only_mapping(workload))
        # Distinct candidates only (extend(0) can equal the GPU mapping).
        seen: set = set()
        unique: list[Mapping] = []
        for cand in candidates:
            if cand.assignments not in seen:
                seen.add(cand.assignments)
                unique.append(cand)
        return unique

    def _resolve_priorities(self, workload: list[ModelSpec],
                            priorities: np.ndarray | None) -> np.ndarray:
        if self.manager.config.mode == "dynamic":
            return dynamic_priorities(workload)
        if priorities is None:
            raise ValueError("static mode requires a user priority vector")
        return normalize_priorities(priorities)

    def replan(self, workload, priorities, incumbent) -> ReplanOutcome:
        """Extend the incumbent; fall back to a reduced search only when
        no extension candidate clears the starvation floors."""
        if incumbent is None:
            decision = self.manager.plan(workload, priorities)
            return ReplanOutcome(decision.mapping, decision.decision_seconds,
                                 "full")
        manager = self.manager
        candidates = self._candidates(workload, incumbent)
        p = self._resolve_priorities(workload, priorities)
        reward_cfg = manager.config.resolved_reward()
        thresholds = thresholds_for(workload, manager.platform, reward_cfg, p)
        ideals = (np.array([manager.platform.ideal_throughput(m)
                            for m in workload])
                  if reward_cfg.normalize_by_ideal else None)
        # One fused batched evaluation across the candidate roster — with
        # an EstimatorPredictor this is the paper's learned decision path
        # (stacked Q assembly + a single forward pass).
        rates = manager.predictor.predict_batch(workload, candidates)
        rewards = [mapping_reward(row, p, thresholds, ideals, reward_cfg.kind)
                   for row in rates]
        # Each candidate is priced at the predictor's modeled per-eval
        # latency: a full measurement window on the oracle, the paper's
        # 0.04 s learned decision latency on the estimator.
        spent = len(candidates) * manager.predictor.board_latency_per_eval
        best = int(np.argmax(rewards))
        if rewards[best] > DISQUALIFIED:
            return ReplanOutcome(candidates[best], spent, "warm")
        # No extension clears the starvation floors: short full search.
        decision = self._fallback.plan(workload, priorities)
        return ReplanOutcome(decision.mapping,
                             spent + decision.decision_seconds,
                             "warm_fallback")


class PlanCacheReplan(ReplanPolicy):
    """Memoise plans by canonical workload across the serving run.

    The key is ``(workload names in order, rounded priority vector)`` —
    the same canonicalization idea as the evaluation cache, one level up.
    A hit replays the previously deployed mapping with zero modeled
    latency, so recurring workloads re-map gap-free with identical
    steady-state rates.
    """

    name = "cache"

    def __init__(self, inner: ReplanPolicy, round_decimals: int = 6):
        self.inner = inner
        self.name = f"cache({inner.name})"
        self.round_decimals = round_decimals
        self.hits = 0
        self.misses = 0
        self._store: dict[tuple, Mapping] = {}

    def key(self, workload: list[ModelSpec],
            priorities: np.ndarray | None) -> tuple:
        """Canonical memoisation key: names in order + rounded priorities."""
        names = tuple(m.name for m in workload)
        if priorities is None:
            return (names, None)
        rounded = tuple(round(float(p), self.round_decimals)
                        for p in np.asarray(priorities).ravel())
        return (names, rounded)

    @property
    def hit_rate(self) -> float:
        """Fraction of replans answered from the plan cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def replan(self, workload, priorities, incumbent) -> ReplanOutcome:
        """Replay the memoised mapping on a key hit (zero modeled
        latency); otherwise defer to the inner policy and memoise."""
        k = self.key(workload, priorities)
        cached = self._store.get(k)
        if cached is not None:
            self.hits += 1
            return ReplanOutcome(cached, 0.0, "cache_hit")
        self.misses += 1
        outcome = self.inner.replan(workload, priorities, incumbent)
        self._store[k] = outcome.mapping
        return outcome


#: Roster of policy factories, keyed for scenario specs; each takes the
#: planning manager and returns a ready policy.
REPLAN_POLICIES = {
    "full": FullReplan,
    "warm": WarmStartReplan,
    "cache": lambda manager: PlanCacheReplan(FullReplan(manager)),
    "cache_warm": lambda manager: PlanCacheReplan(WarmStartReplan(manager)),
}


def build_replan_policy(key: str, manager: Manager) -> ReplanPolicy:
    """Build a fresh replan policy from its roster key around ``manager``.

    Policies carry run state (plan caches, incumbents), so every serving
    run must start from a fresh instance — scenario specs therefore store
    the key, not the object.
    """
    try:
        factory = REPLAN_POLICIES[key]
    except KeyError:
        raise ValueError(
            f"unknown replan policy {key!r}; "
            f"choose from {sorted(REPLAN_POLICIES)}") from None
    return factory(manager)
