"""Cluster dispatcher: route one shared session trace across N nodes.

The fleet layer sits one level above :func:`repro.serve.serve_trace`.  A
single raw Poisson demand (the edge data center's aggregate traffic) is
*dispatched* — every session request is routed to exactly one node by a
pluggable :class:`~repro.serve.fleet.routing.RoutingPolicy` — and each
node then serves its slice with its own admission controller, replan
policy and evaluation cache, exactly as a standalone node would.

Two phases keep this deterministic and pool-friendly:

1. :func:`plan_dispatch` walks the arrival timeline once, maintaining a
   dispatcher-side estimate of per-node live sessions, and fixes the
   complete routing (including node-failure draining) *before any node
   runs*.  The result is a plain-data :class:`DispatchPlan`.
2. The per-node serving loops execute independently — inline via
   :func:`serve_fleet`, or fanned across a process pool via
   :meth:`repro.runner.ScenarioRunner.run_fleet` — and their
   :class:`~repro.serve.report.ServeReport` outputs roll up into a
   :class:`~repro.serve.fleet.report.FleetReport`.

Node failure is modeled as a drain-and-re-dispatch: a node with
``NodeSpec.fail_at_s`` serves only up to the failure instant, and every
session the dispatcher estimates live there at that moment is re-routed
to a surviving node as a fresh request carrying the remaining duration
(and its current tier, if a mid-session shift already fired).  The
dispatcher's live-set estimate intentionally ignores node-side queueing
and rejection — the dispatcher cannot observe them before the nodes run —
so a re-dispatched session may appear in two node reports: truncated
(``serving``) on the failed node and completed on the survivor.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Iterable, Mapping

import numpy as np

from ...hw.platform import Platform
from ...obs import NULL_RECORDER, Recorder
from ...obs.registry import (
    DISPATCH_LOST,
    DISPATCH_REDISPATCHED,
    DISPATCH_ROUTED,
    SPAN_DISPATCH,
)
from ...sim.cache import EvaluationCache
from ...workloads.traces import SessionRequest
from ...zoo.registry import get_model
from ..loop import ServeConfig, serve_trace
from ..replan import ReplanPolicy
from .power import FleetPowerConfig, FleetPowerReport, _PowerGovernor
from .report import FleetReport, build_fleet_report
from .routing import (
    NodePressure,
    NodeView,
    RoutingPolicy,
    build_routing_policy,
    fleet_pressure,
)

__all__ = [
    "NodeSpec",
    "FleetNode",
    "DispatchPlan",
    "node_speed",
    "plan_dispatch",
    "serve_fleet",
]

# Same-instant processing order: estimated departures free slots (and
# watts) first, a shifted power cap takes force before anything routes at
# that instant, and a node failing at t must not receive an arrival at t —
# so failures drain before arrivals route.  Departure and cap-shift events
# exist only on power-governed dispatches; the power-blind walk keeps
# exactly the failure-before-arrival order it always had.
_RANK_DEPARTURE = 0
_RANK_CAP_SHIFT = 1
_RANK_FAILURE = 2
_RANK_ARRIVAL = 3


@dataclass(frozen=True)
class NodeSpec:
    """Dispatcher-side description of one heterogeneous node.

    ``speed`` is the node's relative steady-state throughput weight (see
    :func:`node_speed`); ``capacity`` its admission multi-tenancy level.
    ``fail_at_s`` optionally marks the instant the node dies — it serves
    nothing beyond that point and its live sessions are re-dispatched.
    """

    name: str
    capacity: int
    speed: float = 1.0
    fail_at_s: float | None = None

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.speed <= 0:
            raise ValueError("speed must be positive")
        if self.fail_at_s is not None and self.fail_at_s <= 0:
            raise ValueError("fail_at_s must be positive")


@dataclass(frozen=True)
class FleetNode:
    """One executable node: its dispatch spec plus the objects to run it.

    This is the serve-layer (inline) execution record used by
    :func:`serve_fleet`; the process-pool path builds the same pieces
    inside each worker from a :class:`~repro.runner.DynamicScenario`
    instead.  ``cache`` is the node's own :class:`EvaluationCache`
    snapshot — fleets deliberately do not share one, mirroring per-node
    cache state in a real cluster.
    """

    spec: NodeSpec
    platform: Platform
    policy: ReplanPolicy
    config: ServeConfig
    cache: EvaluationCache | None = None


@dataclass(frozen=True)
class DispatchPlan:
    """The fixed routing of one trace across the fleet.

    ``node_requests[i]`` is the slice of the demand routed to node ``i``
    (re-dispatched continuations included, with re-based arrival times);
    ``routed[i]`` its length.  ``lost`` holds sessions that could not be
    routed because no node was alive when they arrived, and
    ``out_of_horizon`` the demand arriving at or after ``horizon_s`` —
    never routed, but recorded so fleet accounting matches the
    single-node :data:`~repro.serve.report.OUT_OF_HORIZON` ledger.
    """

    node_requests: tuple[tuple[SessionRequest, ...], ...]
    routed: tuple[int, ...]
    re_dispatched: int
    lost: tuple[SessionRequest, ...]
    out_of_horizon: tuple[SessionRequest, ...] = ()
    #: Arrivals the power governor dropped to stay under the fleet cap
    #: (sheddable tiers only; empty on power-blind dispatches).
    shed: tuple[SessionRequest, ...] = ()
    #: The power-cap violation ledger of a power-governed dispatch;
    #: ``None`` when no :class:`FleetPowerConfig` was supplied.
    power: FleetPowerReport | None = None


class _NodeState:
    """Mutable dispatch-time accounting of one node."""

    __slots__ = ("spec", "index", "alive", "live", "assigned")

    def __init__(self, spec: NodeSpec, index: int):
        self.spec = spec
        self.index = index
        self.alive = True
        self.live: list[tuple[float, SessionRequest]] = []  # (est_depart, r)
        self.assigned: list[SessionRequest] = []

    def expire(self, t: float) -> None:
        self.live = [(end, r) for end, r in self.live if end > t]

    def view(self, speed_multiplier: float = 1.0,
             marginal_watts: float = 0.0) -> NodeView:
        return NodeView(index=self.index, name=self.spec.name,
                        capacity=self.spec.capacity,
                        speed=self.spec.speed * speed_multiplier,
                        est_live=len(self.live),
                        marginal_watts=marginal_watts)


def node_speed(platform: Platform, pool: tuple[str, ...]) -> float:
    """Relative steady-state speed of a node: mean ideal throughput.

    Averages :meth:`Platform.ideal_throughput` over the node's model pool
    — the rate the board would sustain serving each pool model alone with
    no contention.  Routing policies use it to weight free capacity, so
    only the *ratios* between nodes matter.
    """
    if not pool:
        raise ValueError("pool must not be empty")
    return float(np.mean([platform.ideal_throughput(get_model(name))
                          for name in pool]))


def _shift_forward(request: SessionRequest, now: float,
                   remaining: float) -> SessionRequest:
    """Rebase a live session as a fresh request arriving ``now``.

    The dispatcher approximates the session's admission time by its
    routed arrival time, so a pending mid-session tier shift keeps its
    remaining offset and an already-fired shift bakes the new tier in.
    """
    tier = request.tier
    shift = None
    if request.tier_shift is not None:
        offset, new_tier = request.tier_shift
        elapsed = now - request.arrival_s
        if offset <= elapsed:
            tier = new_tier
        elif offset - elapsed < remaining:
            shift = (offset - elapsed, new_tier)
    return SessionRequest(session_id=request.session_id, arrival_s=now,
                          duration_s=remaining, tier=tier, tier_shift=shift)


def plan_dispatch(requests: Iterable[SessionRequest],
                  nodes: list[NodeSpec] | tuple[NodeSpec, ...],
                  routing: RoutingPolicy | str,
                  horizon_s: float,
                  recorder: Recorder = NULL_RECORDER,
                  pressure: Mapping[str, NodePressure] | None = None,
                  power: FleetPowerConfig | None = None
                  ) -> DispatchPlan:
    """Fix the complete routing of ``requests`` across ``nodes``.

    Walks arrivals and node failures in one deterministic event order,
    asking ``routing`` (a policy object or roster key; keys build a fresh
    instance, which stateful policies require) to place each session on
    an alive node.  Failure events drain the dead node's estimated live
    set back through the router at the failure instant, oldest arrival
    first.  The plan is a pure function of ``(requests, node specs,
    routing key, horizon_s, pressure)``; any iterable of requests works
    (the dispatcher must see the whole demand to fix the routing, so it
    materialises the sorted arrival order here).

    ``pressure`` optionally feeds a previous round's realized per-node
    :class:`~repro.serve.fleet.routing.NodePressure` to the policy via
    :meth:`~repro.serve.fleet.routing.RoutingPolicy.observe_pressure`
    before any routing happens — pressure-blind policies ignore it.

    ``recorder`` (:mod:`repro.obs`) counts routed / re-dispatched / lost
    sessions, the per-node routing choices, and traces one dispatch span
    per routed arrival — as a pure side channel; the plan is
    bit-identical with recording on or off.

    ``power`` optionally attaches a
    :class:`~repro.serve.fleet.power.FleetPowerConfig`: the walk then
    also processes estimated-departure and cap-shift events, prices
    every node for the routing views (DVFS-scaled speed, marginal
    watts), renegotiates DVFS levels against the cap after each event,
    sheds sheddable-tier arrivals that cannot fit under the cap, and
    returns the full violation ledger on ``DispatchPlan.power``.  All of
    it happens here in phase 1, so the ledger — like the plan — is
    bit-identical for any worker count.  Without ``power`` the walk is
    byte-for-byte today's throughput-only dispatch.
    """
    if not nodes:
        raise ValueError("fleet must have at least one node")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    policy = (build_routing_policy(routing) if isinstance(routing, str)
              else routing)
    if pressure is not None:
        policy.observe_pressure(pressure)
    states = [_NodeState(spec, i) for i, spec in enumerate(nodes)]
    governor = (None if power is None
                else _PowerGovernor(power, nodes, horizon_s, recorder))

    heap: list[tuple] = []
    seq = 0

    def push(time: float, rank: int, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, rank, seq, payload))
        seq += 1

    out_of_horizon: list[SessionRequest] = []
    for request in sorted(requests,
                          key=lambda r: (r.arrival_s, r.session_id)):
        if request.arrival_s < horizon_s:
            push(request.arrival_s, _RANK_ARRIVAL, request)
        else:
            out_of_horizon.append(request)
    for state in states:
        fail = state.spec.fail_at_s
        if fail is not None and fail < horizon_s:
            push(fail, _RANK_FAILURE, state.index)
    if governor is not None and power.cap_shift is not None:
        shift_at, new_cap = power.cap_shift
        if shift_at < horizon_s:
            push(shift_at, _RANK_CAP_SHIFT, new_cap)

    lost: list[SessionRequest] = []
    shed: list[SessionRequest] = []
    re_dispatched = 0

    recording = recorder.enabled

    def loads() -> list[tuple[bool, int]]:
        return [(s.alive, len(s.live)) for s in states]

    def expire_alive(t: float) -> None:
        for state in states:
            if state.alive:
                state.expire(t)

    def route(request: SessionRequest, t: float) -> None:
        alive = [s for s in states if s.alive]
        if not alive:
            lost.append(request)
            if recording:
                recorder.count(DISPATCH_LOST)
            return
        for state in alive:
            state.expire(t)
        if governor is None:
            views = [s.view() for s in alive]
        else:
            views = [s.view(governor.speed_multiplier(s.index),
                            governor.marginal_watts(s.index, len(s.live)))
                     for s in alive]
        index = policy.choose_observed(request.tier, views, recorder)
        target = states[index]
        if not target.alive:
            raise RuntimeError(
                f"routing policy {policy.name!r} chose dead node {index}")
        target.assigned.append(request)
        end = t + request.duration_s
        target.live.append((end, request))
        if governor is not None and end < horizon_s:
            push(end, _RANK_DEPARTURE, None)
        if recording:
            recorder.count(DISPATCH_ROUTED, label=target.spec.name)
            recorder.span(SPAN_DISPATCH, t, 0.0,
                          (("node", target.spec.name),
                           ("session", request.session_id),
                           ("tier", request.tier)))

    while heap:
        t, rank, _, payload = heapq.heappop(heap)
        if governor is not None:
            governor.advance(t)
        if rank == _RANK_DEPARTURE:
            # Power-governed walks tick at estimated departures so the
            # draw integral and DVFS levels track occupancy exactly.
            expire_alive(t)
            governor.update(t, loads())
            continue
        if rank == _RANK_CAP_SHIFT:
            governor.shift_cap(payload)
            expire_alive(t)
            governor.update(t, loads())
            continue
        if rank == _RANK_ARRIVAL:
            if governor is not None:
                expire_alive(t)
                if governor.should_shed(payload.tier, loads()):
                    shed.append(payload)
                    governor.record_shed(payload.tier)
                    continue
            route(payload, t)
            if governor is not None:
                governor.update(t, loads())
            continue
        # Node failure: drain the estimated live set onto the survivors.
        state = states[payload]
        state.alive = False
        state.expire(t)
        survivors = sorted(state.live,
                           key=lambda item: (item[1].arrival_s,
                                             item[1].session_id))
        state.live = []
        for est_depart, request in survivors:
            re_dispatched += 1
            if recording:
                recorder.count(DISPATCH_REDISPATCHED)
            route(_shift_forward(request, t, est_depart - t), t)
        if governor is not None:
            governor.update(t, loads())

    return DispatchPlan(
        node_requests=tuple(tuple(s.assigned) for s in states),
        routed=tuple(len(s.assigned) for s in states),
        re_dispatched=re_dispatched,
        lost=tuple(lost),
        out_of_horizon=tuple(out_of_horizon),
        shed=tuple(shed),
        power=None if governor is None else governor.finish(),
    )


def serve_fleet(requests: Iterable[SessionRequest],
                nodes: list[FleetNode] | tuple[FleetNode, ...],
                routing: RoutingPolicy | str = "round_robin",
                horizon_s: float | None = None,
                recorder: Recorder = NULL_RECORDER,
                feedback_rounds: int = 0,
                power: FleetPowerConfig | None = None) -> FleetReport:
    """Dispatch ``requests`` across ``nodes`` and serve every slice inline.

    The single-process reference implementation of the fleet: routing via
    :func:`plan_dispatch` (which materialises the demand — routing needs
    it all), then one :func:`repro.serve.serve_trace` call per node (a
    failed node serves up to ``fail_at_s`` only), rolled up into a
    :class:`FleetReport`.  ``horizon_s`` defaults to the largest
    node-config horizon.  :meth:`repro.runner.ScenarioRunner.run_fleet`
    produces bit-identical reports with the nodes fanned across a process
    pool.  ``recorder`` observes both the dispatch phase and every node's
    serving loop (one shared sink on this inline path; the pool path
    keeps per-node recorders and merges their snapshots).

    ``feedback_rounds=N`` iterates the whole dispatch-then-serve cycle
    ``N`` extra times: round ``k`` re-routes the *same* demand with the
    per-node :class:`~repro.serve.fleet.routing.NodePressure` measured
    from round ``k-1``'s node reports (queue depth, abandonment and
    rejection rates), and only the final round's report is returned.
    Each round starts from a fresh policy instance, so ``routing`` must
    be a roster key when ``feedback_rounds > 0``; with a pressure-blind
    policy the rounds converge trivially (every round routes
    identically).  Telemetry is recorded on the final round only —
    intermediate rounds are dispatcher deliberation, not served traffic.

    ``power`` makes the dispatch energy-budgeted (see
    :func:`plan_dispatch`): the final report then carries the power-cap
    violation ledger on ``FleetReport.power`` and counts shed arrivals.
    """
    if not nodes:
        raise ValueError("fleet must have at least one node")
    if feedback_rounds < 0:
        raise ValueError(
            f"feedback_rounds must be >= 0, got {feedback_rounds}")
    if feedback_rounds and not isinstance(routing, str):
        raise ValueError(
            "feedback_rounds > 0 requires a routing roster key: every "
            "round must re-dispatch with a fresh policy instance")
    if horizon_s is None:
        horizon_s = max(node.config.horizon_s for node in nodes)
    specs = [node.spec for node in nodes]
    platforms = [node.platform.name for node in nodes]
    # Routing consumes the demand once per round.
    requests = tuple(requests)

    pressure: dict[str, NodePressure] | None = None
    for round_index in range(feedback_rounds + 1):
        final = round_index == feedback_rounds
        round_recorder = recorder if final else NULL_RECORDER
        policy = (build_routing_policy(routing)
                  if isinstance(routing, str) else routing)
        plan = plan_dispatch(requests, specs, policy, horizon_s,
                             recorder=round_recorder, pressure=pressure,
                             power=power)
        reports = []
        for node, slice_requests in zip(nodes, plan.node_requests):
            config = node.config
            fail = node.spec.fail_at_s
            node_horizon = (horizon_s if fail is None
                            else min(fail, horizon_s))
            if config.horizon_s != node_horizon:
                config = replace(config, horizon_s=node_horizon)
            reports.append(serve_trace(slice_requests, node.policy,
                                       node.platform, config,
                                       cache=node.cache,
                                       recorder=round_recorder))
        pressure = fleet_pressure(specs, reports)
    return build_fleet_report(horizon_s, policy.name, specs, platforms,
                              plan, reports)
