"""Multi-node fleet dispatcher: cluster-scale serving over RankMap nodes.

The paper plans one heterogeneous node at a time; its edge-data-center
framing implies a *fleet* of such nodes sharing traffic.  This package is
that cluster layer:

* :mod:`repro.serve.fleet.routing` — pluggable session-routing policies
  (round-robin, least-loaded by steady-state throughput headroom,
  tier-affinity reserving fast nodes for gold sessions, a
  preemption-aware tier-affinity variant preferring nodes that can
  admit without an eviction, and a pressure-feedback variant folding
  realized node pressure from a previous round into the headroom score).
* :mod:`repro.serve.fleet.dispatch` — the dispatcher: fixes a
  deterministic :class:`DispatchPlan` for a shared Poisson demand
  (including node-failure draining with session re-dispatch), then serves
  each node's slice through :func:`repro.serve.serve_trace` — once, or
  iteratively re-dispatching with measured pressure via
  ``serve_fleet(feedback_rounds=N)``.
* :mod:`repro.serve.fleet.report` — the :class:`FleetReport` rollup of
  per-node :class:`~repro.serve.ServeReport` outputs with cross-node
  fairness and starvation metrics.
* :mod:`repro.serve.fleet.power` — energy-budgeted dispatch: per-node
  DVFS ladders, a fleet-wide power cap with brownout shifts, the
  ``least_joules``-facing node pricing and the watt-second violation
  ledger (:class:`FleetPowerReport`) the reports carry.

``repro.runner.FleetScenario`` wraps a whole fleet study into a
declarative spec and :meth:`repro.runner.ScenarioRunner.run_fleet` fans
the nodes across the process pool with bit-identical reports for any
worker count.
"""

from .dispatch import (
    DispatchPlan,
    FleetNode,
    NodeSpec,
    node_speed,
    plan_dispatch,
    serve_fleet,
)
from .power import FleetPowerConfig, FleetPowerReport, PowerSegment
from .report import FleetReport, NodeReport, build_fleet_report, jain_index
from .routing import (
    ROUTING_POLICIES,
    LeastJoulesRouter,
    LeastLoadedRouter,
    NodePressure,
    NodeView,
    PreemptAwareTierRouter,
    PressureFeedbackRouter,
    RoundRobinRouter,
    RoutingPolicy,
    TierAffinityRouter,
    build_routing_policy,
    fleet_pressure,
    pressure_from_report,
)

__all__ = [
    "NodeSpec",
    "FleetNode",
    "DispatchPlan",
    "node_speed",
    "plan_dispatch",
    "serve_fleet",
    "FleetReport",
    "NodeReport",
    "build_fleet_report",
    "jain_index",
    "NodeView",
    "NodePressure",
    "pressure_from_report",
    "fleet_pressure",
    "RoutingPolicy",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "LeastJoulesRouter",
    "TierAffinityRouter",
    "PreemptAwareTierRouter",
    "PressureFeedbackRouter",
    "ROUTING_POLICIES",
    "build_routing_policy",
    "FleetPowerConfig",
    "FleetPowerReport",
    "PowerSegment",
]
