"""Session-routing policies for the fleet dispatcher.

A routing policy answers one question: *which node should this arriving
session land on?*  It sees only the dispatcher-side view of the fleet —
per-node capacity, a relative steady-state speed weight, and the
dispatcher's estimate of how many sessions are currently live on each
node — never the nodes' internal serving state (which does not exist yet
at routing time; nodes are served after the dispatch plan is fixed, see
:mod:`repro.serve.fleet.dispatch`).

Policies in the roster:

* :class:`RoundRobinRouter` — cycle through the alive nodes in index
  order, ignoring load and speed.  The baseline every smarter policy is
  compared against.
* :class:`LeastLoadedRouter` — pick the node with the largest
  steady-state throughput headroom, ``(capacity - est_live) * speed``:
  free slots weighted by how fast the node drains them.
* :class:`TierAffinityRouter` — reserve the fastest nodes for gold
  sessions; lower tiers fill the remaining nodes first and spill onto a
  reserved node only when every unreserved node is saturated.
* :class:`PreemptAwareTierRouter` — tier affinity for fleets whose nodes
  run a :mod:`repro.serve.preempt` policy: prefer any node that can
  admit the session *without* an eviction (a free estimated slot),
  partition-preferred first, and fall back to plain tier affinity only
  when the whole fleet looks saturated — preemption then happens where
  the tier partition wants it.
* :class:`LeastJoulesRouter` — energy-aware: among nodes with a free
  estimated slot, minimise the marginal joules per delivered inference
  (the power governor's per-node pricing), tie-breaking on headroom and
  falling back to the drain score when the whole fleet is saturated.
* :class:`PressureFeedbackRouter` — least-loaded, corrected by the
  *realized* per-node pressure of a previous serving round
  (:class:`NodePressure`): residual queue depth inflates a node's
  estimated load and its denial rate discounts its speed, so the nodes
  that actually queued, abandoned or rejected traffic last round attract
  less of it this round.  Pressure arrives through the
  :meth:`RoutingPolicy.observe_pressure` hook — fed by
  ``plan_dispatch(..., pressure=...)`` / ``serve_fleet`` feedback rounds
  — and with no pressure observed the policy is exactly
  :class:`LeastLoadedRouter`.

All policies are deterministic: ties break on the lowest node index, and
the only state any of them carries is the round-robin cursor and the
last observed pressure map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ...obs import NULL_RECORDER, Recorder
from ...obs.registry import ROUTING_CHOICE
from ..report import ServeReport

__all__ = [
    "NodeView",
    "NodePressure",
    "pressure_from_report",
    "fleet_pressure",
    "RoutingPolicy",
    "RoundRobinRouter",
    "LeastLoadedRouter",
    "LeastJoulesRouter",
    "TierAffinityRouter",
    "PreemptAwareTierRouter",
    "PressureFeedbackRouter",
    "ROUTING_POLICIES",
    "build_routing_policy",
]


@dataclass(frozen=True)
class NodeView:
    """Dispatcher-side snapshot of one alive node at a routing instant.

    ``est_live`` is the dispatcher's estimate of concurrently live
    sessions — arrivals routed to the node whose sampled duration has not
    elapsed yet.  It ignores the node's own queueing and rejection, which
    happen later, inside the node's serving loop.
    """

    index: int                 # position in the fleet's node list
    name: str
    capacity: int              # the node's admission capacity
    speed: float               # relative steady-state throughput weight
    est_live: int              # dispatcher-estimated live sessions
    #: Estimated extra board draw of landing one more session here (W).
    #: Priced by the dispatch power governor at the node's current DVFS
    #: state; 0.0 on power-blind dispatches, which makes every
    #: energy-aware comparison degenerate to pure headroom.
    marginal_watts: float = 0.0

    @property
    def free_slots(self) -> int:
        """Estimated unoccupied admission slots (may go negative)."""
        return self.capacity - self.est_live

    @property
    def headroom(self) -> float:
        """Steady-state throughput headroom: free slots x node speed."""
        return self.free_slots * self.speed


@dataclass(frozen=True)
class NodePressure:
    """Realized serving pressure of one node over a previous round.

    The dispatcher's phase-1 ``est_live`` view cannot see node-internal
    queueing or admission denial; this record carries exactly that,
    measured *after* a node served its slice: the sessions still waiting
    when the horizon closed and the fraction of observed arrivals the
    node abandoned (queue timeout) or rejected (admission control).
    """

    queue_depth: int = 0
    abandonment_rate: float = 0.0
    rejection_rate: float = 0.0

    @property
    def denial_rate(self) -> float:
        """Total turned-away fraction, clamped to [0, 1]."""
        return min(1.0, max(0.0, self.abandonment_rate
                            + self.rejection_rate))


def pressure_from_report(report: ServeReport) -> NodePressure:
    """Measure a node's :class:`NodePressure` from its serving report.

    Rates are over the arrivals the node actually observed within the
    horizon (out-of-horizon requests never reached the queue); a node
    that observed nothing reports zero pressure.
    """
    observed = report.arrivals - report.out_of_horizon
    if observed <= 0:
        return NodePressure(queue_depth=report.queued_at_horizon)
    return NodePressure(
        queue_depth=report.queued_at_horizon,
        abandonment_rate=report.abandoned / observed,
        rejection_rate=report.rejected / observed,
    )


def fleet_pressure(specs: Sequence, reports: Sequence[ServeReport]
                   ) -> dict[str, "NodePressure"]:
    """Per-node pressure map of one served round, keyed by node name.

    ``specs`` is the fleet's node-spec sequence (anything with a
    ``name``), aligned with ``reports`` — the shape both
    :func:`~repro.serve.fleet.serve_fleet` feedback rounds and the
    scenario runner's pool path produce.
    """
    if len(specs) != len(reports):
        raise ValueError(
            f"{len(specs)} node specs but {len(reports)} reports")
    return {spec.name: pressure_from_report(report)
            for spec, report in zip(specs, reports)}


class RoutingPolicy:
    """Strategy interface: pick a node for each arriving session.

    ``choose`` receives the request's SLA tier and the views of every
    *alive* node (dead nodes are filtered out by the dispatcher) and
    returns the chosen node's ``index``.  Implementations must be
    deterministic in (their own state, the arguments).
    """

    name: str = "routing"

    def observe_pressure(self,
                         pressure: Mapping[str, NodePressure]) -> None:
        """Feed realized per-node pressure from a previous round.

        A no-op for pressure-blind policies; feedback-aware ones
        (:class:`PressureFeedbackRouter`) fold it into later choices.
        The dispatcher calls this once, before routing starts.
        """

    def choose(self, tier: str, nodes: Sequence[NodeView]) -> int:
        """Return the ``index`` of the node the session is routed to."""
        raise NotImplementedError  # pragma: no cover

    def choose_observed(self, tier: str, nodes: Sequence[NodeView],
                        recorder: Recorder = NULL_RECORDER) -> int:
        """:meth:`choose`, with the pick counted on ``recorder``.

        The telemetry entry point the dispatcher calls: one
        :data:`~repro.obs.registry.ROUTING_CHOICE` counter tick per
        routed session, labelled ``"<policy>/<node>"``.  The choice is
        exactly ``choose``'s — recording never changes a route.
        """
        index = self.choose(tier, nodes)
        if recorder.enabled:
            chosen = next(v for v in nodes if v.index == index)
            recorder.count(ROUTING_CHOICE,
                           label=f"{self.name}/{chosen.name}")
        return index


def _drain_score(view: NodeView) -> float:
    """Routing desirability of a node, saturation-aware.

    With free capacity the score is the throughput headroom (free slots x
    speed).  At or over capacity it switches to the negated drain time of
    the backlog (``free_slots / speed``, a non-positive number): a fast
    node two sessions over capacity clears its excess sooner than a slow
    node one over, so multiplying the deficit by speed — which would
    punish exactly the nodes that recover fastest — is wrong there.
    """
    if view.free_slots > 0:
        return view.headroom
    return view.free_slots / view.speed


def _most_headroom(nodes: Sequence[NodeView]) -> int:
    """Index of the node with the best :func:`_drain_score` (lowest index
    wins ties)."""
    best = nodes[0]
    for view in nodes[1:]:
        if _drain_score(view) > _drain_score(best):
            best = view
    return best.index


class RoundRobinRouter(RoutingPolicy):
    """Cycle through the alive nodes in index order, blind to load.

    The cursor advances on every routed session, so a fleet with a dead
    node keeps rotating evenly over the survivors.  This is the
    dispatcher-less baseline: what static sharding of the trace
    (:func:`repro.workloads.split_session_requests`) approximates offline.
    """

    name = "round_robin"

    def __init__(self):
        self._cursor = 0

    def choose(self, tier: str, nodes: Sequence[NodeView]) -> int:
        """Pick the next node in rotation among the alive views."""
        view = nodes[self._cursor % len(nodes)]
        self._cursor += 1
        return view.index


class LeastLoadedRouter(RoutingPolicy):
    """Route to the node with the most steady-state throughput headroom.

    Headroom is ``(capacity - est_live) * speed``: a fast node with one
    free slot can beat a slow node with two, which is exactly the
    heterogeneity the per-node contention solver models.  When every node
    is saturated the comparison flips to backlog drain time
    (``deficit / speed``), so arrivals keep landing where the queue
    clears fastest instead of on the slowest overloaded node.
    """

    name = "least_loaded"

    def choose(self, tier: str, nodes: Sequence[NodeView]) -> int:
        """Pick the alive node with the best saturation-aware headroom."""
        return _most_headroom(nodes)


class TierAffinityRouter(RoutingPolicy):
    """Reserve the fastest nodes for gold sessions.

    The fastest ``reserve_fraction`` of the alive fleet (at least one
    node) is the *gold partition*.  Gold sessions go to the reserved node
    with the most headroom; other tiers fill the unreserved nodes and
    spill onto a reserved node only when no unreserved node has a free
    slot — so a gold burst never queues behind bronze traffic, at the
    price of idling fast nodes under bronze-heavy load.
    """

    name = "tier_affinity"

    def __init__(self, reserve_fraction: float = 1 / 3,
                 gold_tiers: tuple[str, ...] = ("gold",)):
        if not 0.0 < reserve_fraction <= 1.0:
            raise ValueError("reserve_fraction must be in (0, 1]")
        if not gold_tiers:
            raise ValueError("gold_tiers must not be empty")
        self.reserve_fraction = reserve_fraction
        self.gold_tiers = gold_tiers

    def _reserved(self, nodes: Sequence[NodeView]) -> set[int]:
        count = max(1, round(len(nodes) * self.reserve_fraction))
        count = min(count, len(nodes))
        fastest = sorted(nodes, key=lambda v: (-v.speed, v.index))
        return {view.index for view in fastest[:count]}

    def _partition(self, tier: str, nodes: Sequence[NodeView],
                   ) -> tuple[list[NodeView], list[NodeView]]:
        """Split the alive views into the session's preferred partition
        (reserved nodes for gold tiers, unreserved for the rest) and the
        remainder — the one partition rule both affinity routers share."""
        reserved = self._reserved(nodes)
        preferred = [v for v in nodes if (v.index in reserved)
                     == (tier in self.gold_tiers)]
        fallback = [v for v in nodes if v not in preferred]
        return preferred, fallback

    def choose(self, tier: str, nodes: Sequence[NodeView]) -> int:
        """Route gold to the reserved partition, other tiers around it."""
        preferred, fallback = self._partition(tier, nodes)
        if tier in self.gold_tiers:
            # Gold only leaves the reserved partition when it is gone
            # entirely (every reserved node dead): prefer always.
            return _most_headroom(preferred or fallback)
        if not preferred:
            return _most_headroom(fallback)
        if all(v.free_slots <= 0 for v in preferred) \
                and any(v.free_slots > 0 for v in fallback):
            return _most_headroom(fallback)
        return _most_headroom(preferred)


class PreemptAwareTierRouter(TierAffinityRouter):
    """Tier affinity that avoids triggering node-side preemptions.

    On a preemption-enabled fleet, landing a gold session on a full
    reserved node evicts (or demotes) a resident — collateral the
    dispatcher can often avoid when *some* node still has a free slot.
    This router therefore prefers admission-without-eviction: among the
    session's preferred tier partition first, then the rest of the
    fleet, pick the best-headroom node with a free estimated slot.  Only
    when every alive node looks saturated does it fall back to the plain
    tier-affinity choice, concentrating the unavoidable preemptions
    where the partition wants the session anyway.

    The dispatcher's ``est_live`` view still ignores node-internal
    queueing/eviction state (phase 1 cannot observe it), so "free slot"
    is the same estimate every other policy routes on.
    """

    name = "tier_affinity_preempt"

    def choose(self, tier: str, nodes: Sequence[NodeView]) -> int:
        """Prefer eviction-free admission; else plain tier affinity."""
        preferred, fallback = self._partition(tier, nodes)
        for group in (preferred, fallback):
            with_free = [v for v in group if v.free_slots > 0]
            if with_free:
                return _most_headroom(with_free)
        return super().choose(tier, nodes)


class LeastJoulesRouter(RoutingPolicy):
    """Route to the node serving the session at the fewest joules.

    Among nodes with a free estimated slot the router minimises
    ``marginal_watts / speed`` — the extra board draw of taking the
    session divided by the node's delivery rate, i.e. estimated joules
    per delivered inference.  ``marginal_watts`` is priced by the
    dispatch power governor at each node's *current* DVFS state, so a
    throttled node is charged its cheaper-but-slower operating point.
    SLA headroom stays in charge on two edges: ties (including every
    power-blind dispatch, where marginal watts are all 0.0) break on
    the saturation-aware drain score then the lowest index, and a fleet
    with no free slot anywhere falls back to the drain-score pick — an
    overloaded fleet drains its backlog where it clears fastest rather
    than where watts are cheapest.
    """

    name = "least_joules"

    def choose(self, tier: str, nodes: Sequence[NodeView]) -> int:
        """Cheapest joules per inference among free nodes; drain score
        under fleet-wide saturation."""
        with_free = [v for v in nodes if v.free_slots > 0]
        if not with_free:
            return _most_headroom(nodes)
        best = min(with_free,
                   key=lambda v: (v.marginal_watts / v.speed,
                                  -_drain_score(v), v.index))
        return best.index


class PressureFeedbackRouter(LeastLoadedRouter):
    """Least-loaded routing corrected by realized node pressure.

    Before scoring, each node's view is adjusted by the last observed
    :class:`NodePressure`: the residual queue depth is added to
    ``est_live`` (sessions the dispatcher's estimate missed but that
    will contend for the same slots) and the denial rate discounts the
    node's speed (a node that turned away 30 % of its arrivals is not
    delivering its nominal throughput).  The speed discount is capped at
    95 % so a fully-denying node stays orderable instead of dividing by
    zero in the drain-time comparison.

    With no pressure observed — the first feedback round, or plain
    one-shot dispatch — every adjustment is the identity and the policy
    reproduces :class:`LeastLoadedRouter` choice for choice, which is
    what pins ``feedback_rounds=0`` to today's behaviour.
    """

    name = "pressure_feedback"

    #: Cap on the denial-rate speed discount; keeps adjusted speed > 0.
    MAX_SPEED_DISCOUNT = 0.95

    def __init__(self):
        self._pressure: dict[str, NodePressure] = {}

    def observe_pressure(self,
                         pressure: Mapping[str, NodePressure]) -> None:
        """Replace the pressure map used to adjust later choices."""
        self._pressure = dict(pressure)

    def _adjusted(self, view: NodeView) -> NodeView:
        """``view`` with the node's observed pressure folded in."""
        pressure = self._pressure.get(view.name)
        if pressure is None:
            return view
        discount = min(self.MAX_SPEED_DISCOUNT, pressure.denial_rate)
        return NodeView(index=view.index, name=view.name,
                        capacity=view.capacity,
                        speed=view.speed * (1.0 - discount),
                        est_live=view.est_live + pressure.queue_depth,
                        marginal_watts=view.marginal_watts)

    def choose(self, tier: str, nodes: Sequence[NodeView]) -> int:
        """Best saturation-aware headroom over pressure-adjusted views."""
        return _most_headroom([self._adjusted(v) for v in nodes])


#: Roster of routing-policy factories, keyed for fleet scenario specs.
ROUTING_POLICIES = {
    "round_robin": RoundRobinRouter,
    "least_loaded": LeastLoadedRouter,
    "least_joules": LeastJoulesRouter,
    "tier_affinity": TierAffinityRouter,
    "tier_affinity_preempt": PreemptAwareTierRouter,
    "pressure_feedback": PressureFeedbackRouter,
}


def build_routing_policy(key: str) -> RoutingPolicy:
    """Build a fresh routing policy from its roster key.

    Policies may carry state (the round-robin cursor), so every dispatch
    must start from a fresh instance — which is why scenario specs store
    the key, not the object.
    """
    try:
        factory = ROUTING_POLICIES[key]
    except KeyError:
        raise ValueError(
            f"unknown routing policy {key!r}; "
            f"choose from {sorted(ROUTING_POLICIES)}") from None
    return factory()
