"""Fleet-level outcome records: per-node rollups + cross-node metrics.

A :class:`FleetReport` aggregates the per-node
:class:`~repro.serve.report.ServeReport` outputs of one dispatched trace.
Like the node-level report it is plain data end to end — it crosses the
scenario-runner process boundary by pickling and the 1-vs-N-worker
determinism regression compares instances bit for bit — so no wall-clock
or process-local field lives here.

On top of the per-node sums it adds the cluster-scale views a single-node
report cannot express: Jain's fairness index across nodes
(speed-normalised, so heterogeneity itself does not read as unfairness)
and across sessions, a fleet starvation rate (admitted sessions that
never delivered an inference), and a per-tier outcome breakdown that
shows what the routing policy did to gold vs bronze traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..report import (
    ABANDONED,
    EVICTED,
    REJECTED,
    ServeReport,
    SessionOutcome,
    jain_index,
    tier_survival_rates,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .dispatch import DispatchPlan, NodeSpec
    from .power import FleetPowerReport

# jain_index moved to repro.serve.report (the node-level eviction-fairness
# metric needs it below the fleet layer) and stays re-exported here.
__all__ = ["NodeReport", "FleetReport", "jain_index", "build_fleet_report"]


@dataclass(frozen=True)
class NodeReport:
    """One node's slice of the fleet outcome.

    ``routed`` counts the sessions the dispatcher sent here (re-dispatched
    continuations included); ``report`` is the node's own serving report,
    truncated at ``failed_at_s`` when the node died mid-run.
    """

    name: str
    platform: str
    speed: float
    capacity: int
    routed: int
    report: ServeReport
    failed_at_s: float | None = None
    #: Estimated board energy over the horizon (watt-seconds); ``None``
    #: on power-blind dispatches.
    energy_ws: float | None = None
    #: This node's attributed share of the fleet's over-cap watt-seconds;
    #: ``None`` on power-blind dispatches.
    over_cap_ws: float | None = None

    @property
    def utilisation(self) -> float:
        """Admitted DNN-time as a fraction of capacity x served horizon."""
        horizon = self.report.horizon_s
        if horizon <= 0 or self.capacity <= 0:
            return 0.0
        return self.report.observed_seconds / (horizon * self.capacity)


@dataclass(frozen=True)
class FleetReport:
    """Aggregate outcome of one dispatched trace across the whole fleet."""

    horizon_s: float
    routing: str                   # routing-policy roster key / name
    nodes: tuple[NodeReport, ...]
    re_dispatched: int = 0         # failure-drained session continuations
    lost: int = 0                  # arrivals with no alive node to take them
    out_of_horizon: int = 0        # demand arriving after the horizon
    shed: int = 0                  # arrivals dropped by the power governor
    #: Power-cap violation ledger of a power-governed dispatch
    #: (:class:`~repro.serve.fleet.power.FleetPowerReport`); ``None``
    #: when the fleet ran power-blind.
    power: "FleetPowerReport | None" = None

    # ------------------------------------------------------- admission
    def _sessions(self) -> list[SessionOutcome]:
        """Every per-node session record; a re-dispatched session
        contributes both of its legs (service-time sums want both)."""
        return [s for node in self.nodes for s in node.report.sessions]

    def _distinct_sessions(self) -> list[SessionOutcome]:
        """One record per session id, in id order.

        A session re-dispatched after a node failure appears in two node
        reports; for per-session counting its *continuation* record (the
        later arrival) wins — that is where its final fate is decided.
        """
        by_id: dict[int, SessionOutcome] = {}
        for s in self._sessions():
            kept = by_id.get(s.session_id)
            if kept is None or s.arrival_s > kept.arrival_s:
                by_id[s.session_id] = s
        return [by_id[sid] for sid in sorted(by_id)]

    @property
    def arrivals(self) -> int:
        """Distinct sessions offered to the fleet, matching the
        single-node ledger: lost, power-shed and out-of-horizon demand
        included."""
        return sum(n.routed for n in self.nodes) - self.re_dispatched \
            + self.lost + self.out_of_horizon + self.shed

    @property
    def admitted(self) -> int:
        """Session admissions across all nodes (re-dispatch may re-admit)."""
        return sum(n.report.admitted for n in self.nodes)

    @property
    def rejected(self) -> int:
        """Admission-controller rejections summed over the fleet."""
        return sum(n.report.rejected for n in self.nodes)

    @property
    def abandoned(self) -> int:
        """Queue-timeout abandonments summed over the fleet."""
        return sum(n.report.abandoned for n in self.nodes)

    @property
    def replans(self) -> int:
        """Replanning invocations summed over the fleet."""
        return sum(n.report.replans for n in self.nodes)

    # ------------------------------------------------------- preemption
    @property
    def evictions(self) -> int:
        """Preemption eviction events summed over the fleet."""
        return sum(n.report.evictions for n in self.nodes)

    @property
    def demotions(self) -> int:
        """Tier-renegotiation events summed over the fleet."""
        return sum(n.report.demotions for n in self.nodes)

    @property
    def resumptions(self) -> int:
        """Evicted-session resumptions summed over the fleet."""
        return sum(n.report.resumptions for n in self.nodes)

    @property
    def evicted_sessions(self) -> int:
        """Distinct sessions whose final fate was terminal eviction
        (the continuation record decides, like every distinct count)."""
        return sum(1 for s in self._distinct_sessions()
                   if s.outcome == EVICTED)

    @property
    def eviction_fairness(self) -> float:
        """Jain index of per-tier survival under preemption, fleet-wide.

        The cluster analogue of
        :attr:`repro.serve.ServeReport.eviction_fairness`, computed over
        distinct sessions: each tier with admitted sessions contributes
        the fraction that did not end terminally evicted.
        """
        return jain_index(tier_survival_rates(self._distinct_sessions()))

    @property
    def mean_queue_wait_s(self) -> float:
        """Mean queue wait of admitted sessions across the fleet."""
        waits = [s.queue_wait_s for s in self._sessions()
                 if s.admitted_s is not None]
        return sum(waits) / len(waits) if waits else 0.0

    # --------------------------------------------------------- service
    @property
    def delivered_inferences(self) -> float:
        """Total inferences delivered by every node."""
        return sum(s.delivered_inferences for s in self._sessions())

    @property
    def mean_session_rate(self) -> float:
        """Mean delivered rate over all served sessions, fleet-wide."""
        rates = [s.mean_rate for s in self._sessions()
                 if s.served_seconds > 0]
        return sum(rates) / len(rates) if rates else 0.0

    @property
    def sla_violation_fraction(self) -> float:
        """Fraction of fleet-wide admitted DNN-time below tier guarantees."""
        observed = sum(n.report.observed_seconds for n in self.nodes)
        if observed <= 0:
            return 0.0
        violation = sum(n.report.sla_violation_seconds for n in self.nodes)
        return violation / observed

    # -------------------------------------------------------- fairness
    @property
    def node_fairness(self) -> float:
        """Jain index of speed-normalised per-node session rates.

        Each node contributes its mean session rate divided by its speed
        weight, so a slow node serving proportionally slower does not
        count as unfair — only routing imbalance does.  Nodes that served
        nothing are excluded.
        """
        rates = [n.report.mean_session_rate / n.speed for n in self.nodes
                 if any(s.served_seconds > 0 for s in n.report.sessions)]
        return jain_index(rates)

    @property
    def session_fairness(self) -> float:
        """Jain index of per-session delivered rates across the fleet."""
        rates = [s.mean_rate for s in self._sessions()
                 if s.served_seconds > 0]
        return jain_index(rates)

    @property
    def starved_sessions(self) -> int:
        """Admitted sessions that never delivered a single inference
        (distinct per session id; the continuation record decides)."""
        return sum(1 for s in self._distinct_sessions()
                   if s.admitted_s is not None
                   and s.delivered_inferences <= 0.0)

    @property
    def starvation_rate(self) -> float:
        """Starved fraction of the fleet's distinct admitted sessions."""
        admitted = sum(1 for s in self._distinct_sessions()
                       if s.admitted_s is not None)
        return self.starved_sessions / admitted if admitted else 0.0

    # ------------------------------------------------------- per tier
    def tier_outcomes(self) -> dict[str, dict[str, float]]:
        """Per-SLA-tier rollup: arrivals, denials and mean delivered rate.

        Counts are per *distinct* session (a failure-re-dispatched
        session is its continuation's fate, not two arrivals), so per-tier
        arrivals sum to ``arrivals - lost - out_of_horizon - shed`` (shed
        sessions never reach a node and have no serving record).  ``denied``
        counts rejections plus queue abandonments — the demand the fleet
        turned away — which is where routing policies differ most visibly
        (tier affinity keeps gold denial low under load).
        """
        tiers: dict[str, dict[str, float]] = {}
        for s in self._distinct_sessions():
            row = tiers.setdefault(s.tier, {
                "arrivals": 0, "admitted": 0, "denied": 0,
                "mean_rate": 0.0, "_rates": 0})
            row["arrivals"] += 1
            if s.admitted_s is not None:
                row["admitted"] += 1
            if s.outcome in (REJECTED, ABANDONED):
                row["denied"] += 1
            if s.served_seconds > 0:
                row["mean_rate"] += s.mean_rate
                row["_rates"] += 1
        for row in tiers.values():
            count = row.pop("_rates")
            row["mean_rate"] = row["mean_rate"] / count if count else 0.0
        return tiers

    # --------------------------------------------------------- display
    def summary(self) -> str:
        """Human-readable multi-line digest (printed by the examples)."""
        lines = [
            f"FleetReport[{self.routing}] over {self.horizon_s:.0f} s, "
            f"{len(self.nodes)} nodes",
            f"  sessions: {self.arrivals} offered, {self.admitted} admitted, "
            f"{self.rejected} rejected, {self.abandoned} abandoned, "
            f"{self.re_dispatched} re-dispatched, {self.lost} lost"
            + (f", {self.shed} shed" if self.shed else "")
            + (f", {self.out_of_horizon} out of horizon"
               if self.out_of_horizon else ""),
            f"  service: {self.delivered_inferences:.0f} inferences, mean "
            f"session rate {self.mean_session_rate:.2f}/s, SLA violation "
            f"{self.sla_violation_fraction:.1%}",
            f"  fairness: node {self.node_fairness:.3f}, session "
            f"{self.session_fairness:.3f}; starved {self.starved_sessions} "
            f"({self.starvation_rate:.1%})",
        ]
        if self.evictions or self.demotions:
            lines.append(
                f"  preemption: {self.evictions} evictions "
                f"({self.resumptions} resumed, {self.evicted_sessions} "
                f"lost), {self.demotions} demotions; eviction fairness "
                f"{self.eviction_fairness:.3f}")
        if self.power is not None:
            lines.append(
                f"  power: mean {self.power.mean_watts:.2f} W, over cap "
                f"{self.power.fleet_over_cap_ws:.1f} Ws, "
                f"{len(self.power.dvfs_transitions)} DVFS transitions, "
                f"{self.shed} shed")
        for node in self.nodes:
            failed = (f", FAILED at {node.failed_at_s:.0f} s"
                      if node.failed_at_s is not None else "")
            energy = (f", {node.energy_ws:.0f} Ws"
                      if node.energy_ws is not None else "")
            lines.append(
                f"    {node.name} [{node.platform}, cap {node.capacity}, "
                f"speed {node.speed:.1f}]: {node.routed} routed, "
                f"{node.report.admitted} admitted, util "
                f"{node.utilisation:.1%}{energy}{failed}")
        return "\n".join(lines)


def build_fleet_report(horizon_s: float, routing: str,
                       specs: "Sequence[NodeSpec]",
                       platforms: Sequence[str],
                       plan: "DispatchPlan",
                       reports: Sequence[ServeReport]) -> FleetReport:
    """Assemble the :class:`FleetReport` from a dispatch plan's pieces.

    Shared by the inline path (:func:`repro.serve.fleet.serve_fleet`) and
    the process-pool path (:meth:`repro.runner.ScenarioRunner.run_fleet`)
    so both produce structurally identical — and therefore bit-comparable
    — reports.
    """
    ledger = plan.power
    nodes = tuple(
        NodeReport(name=spec.name, platform=platform, speed=spec.speed,
                   capacity=spec.capacity, routed=routed, report=report,
                   failed_at_s=spec.fail_at_s,
                   energy_ws=(None if ledger is None
                              else ledger.node_energy_ws[i]),
                   over_cap_ws=(None if ledger is None
                                else ledger.node_over_cap_ws[i]))
        for i, (spec, platform, routed, report)
        in enumerate(zip(specs, platforms, plan.routed, reports)))
    return FleetReport(horizon_s=horizon_s, routing=routing, nodes=nodes,
                       re_dispatched=plan.re_dispatched,
                       lost=len(plan.lost),
                       out_of_horizon=len(plan.out_of_horizon),
                       shed=len(plan.shed),
                       power=ledger)
