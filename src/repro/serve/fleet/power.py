"""Fleet power governor: DVFS ladders, cap ledger, brownout renegotiation.

The dispatcher (:func:`repro.serve.fleet.plan_dispatch`) routes on
throughput headroom alone unless it is handed a
:class:`FleetPowerConfig`.  With one, a *power governor* rides along the
dispatch event walk and does three things, all inside phase 1 (the parent
process), so every figure it produces is bit-identical for any worker
count:

* **Accounting** — between consecutive dispatch events it integrates each
  node's estimated board draw (its current DVFS state's
  :meth:`~repro.hw.energy.DvfsState.node_watts` at the dispatcher's
  occupancy estimate ``est_live / capacity``) into per-node energy and a
  fleet-wide :class:`PowerSegment` trace.  Watt-seconds above the cap in
  force are the *violation ledger*, attributed to nodes in proportion to
  their share of the fleet draw.
* **DVFS renegotiation** — when ``enforce`` is on and the fleet draw
  exceeds the cap, the governor steps nodes down their
  :func:`~repro.hw.energy.dvfs_ladder` (largest watts saving first),
  and steps them back up when the draw falls below ``hysteresis x cap``
  (most-throttled node first).  A stepped-down node serves slower: its
  routing view's ``speed`` carries the state's ``speed_multiplier``.
* **Tier shedding** — an arrival whose tier is in ``shed_tiers`` is
  dropped before routing when *no* placement could keep the fleet under
  the cap even with every node at its ladder floor; higher tiers are
  always routed and any overage lands in the ledger instead.

``cap_shift=(at_s, new_cap_w)`` models a **brownout**: the cap in force
drops (or rises) mid-trace and the governor renegotiates against the new
budget from that instant on.  ``enforce=False`` keeps the ladders pinned
at nominal and never sheds — the cap-blind baseline whose ledger shows
what enforcement would have saved.

Everything the governor measures rolls up into a plain-data
:class:`FleetPowerReport` on the
:class:`~repro.serve.fleet.DispatchPlan` / fleet report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ...hw.energy import DvfsState
from ...obs import NULL_RECORDER, Recorder
from ...obs.registry import (
    POWER_DVFS_TRANSITIONS,
    POWER_FLEET_WATTS,
    POWER_OVER_CAP_WS,
    POWER_SHED,
)

__all__ = [
    "FleetPowerConfig",
    "PowerSegment",
    "FleetPowerReport",
]


@dataclass(frozen=True)
class FleetPowerConfig:
    """Power-management spec for one fleet dispatch.

    ``ladders[i]`` is node ``i``'s descending DVFS ladder
    (:func:`repro.hw.energy.dvfs_ladder`); a single-state ladder means
    the node cannot be throttled.  ``cap_w`` is the fleet-wide draw
    budget (``inf`` = account only, never over cap) and ``cap_shift``
    optionally moves it mid-trace.  ``shed_tiers`` names the SLA tiers
    the governor may drop when even ladder-floor throttling cannot fit
    an arrival under the cap; ``hysteresis`` is the fraction of the cap
    the draw must fall below before nodes step back up (guards against
    level flapping at the cap boundary).  ``enforce=False`` disables
    renegotiation and shedding but keeps the full ledger — the
    cap-blind baseline.
    """

    ladders: tuple[tuple[DvfsState, ...], ...]
    cap_w: float = math.inf
    cap_shift: tuple[float, float] | None = None
    shed_tiers: tuple[str, ...] = ("bronze",)
    enforce: bool = True
    hysteresis: float = 0.9

    def __post_init__(self):
        if not self.ladders or any(not ladder for ladder in self.ladders):
            raise ValueError("every node needs a non-empty DVFS ladder")
        for i, ladder in enumerate(self.ladders):
            multipliers = [s.speed_multiplier for s in ladder]
            if any(b >= a for a, b in zip(multipliers, multipliers[1:])):
                raise ValueError(
                    f"node {i} ladder speed multipliers must strictly "
                    f"decrease, got {multipliers}")
        if self.cap_w <= 0:
            raise ValueError("cap_w must be positive")
        if self.cap_shift is not None:
            if len(self.cap_shift) != 2:
                raise ValueError("cap_shift must be (at_s, new_cap_w)")
            at_s, new_cap = self.cap_shift
            if at_s <= 0:
                raise ValueError("cap_shift time must be positive")
            if new_cap <= 0:
                raise ValueError("cap_shift new cap must be positive")
        if not 0.0 < self.hysteresis <= 1.0:
            raise ValueError("hysteresis must be in (0, 1]")


@dataclass(frozen=True)
class PowerSegment:
    """Constant-draw stretch of the dispatch timeline.

    One segment spans the gap between consecutive dispatch events (with
    the cap in force over it); the fleet draw is constant inside because
    occupancy and DVFS levels only change *at* events.
    """

    start_s: float
    end_s: float
    watts: float          # estimated fleet draw over the segment
    cap_w: float          # cap in force during the segment

    @property
    def duration_s(self) -> float:
        """Segment length in seconds."""
        return self.end_s - self.start_s

    @property
    def over_cap_ws(self) -> float:
        """Watt-seconds above the cap accrued in this segment."""
        return max(0.0, self.watts - self.cap_w) * self.duration_s


@dataclass(frozen=True)
class FleetPowerReport:
    """The power-cap violation ledger of one dispatched trace.

    Plain data end to end (it rides the :class:`FleetReport` across the
    process-pool boundary): per-node energies and over-cap shares, the
    DVFS transition log, shed counts per tier and the full
    :class:`PowerSegment` trace.  Over-cap watt-seconds are attributed
    to nodes in proportion to their share of the fleet draw during the
    violating segment.
    """

    cap_w: float                                  # initial cap in force
    cap_shift: tuple[float, float] | None
    enforced: bool
    node_names: tuple[str, ...]
    node_energy_ws: tuple[float, ...]
    node_over_cap_ws: tuple[float, ...]
    node_final_levels: tuple[int, ...]
    dvfs_transitions: tuple[tuple[float, int, int], ...]  # (t, node, level)
    shed_by_tier: tuple[tuple[str, int], ...] = ()
    segments: tuple[PowerSegment, ...] = ()

    @property
    def fleet_energy_ws(self) -> float:
        """Total estimated fleet energy over the horizon (watt-seconds)."""
        return sum(self.node_energy_ws)

    @property
    def fleet_over_cap_ws(self) -> float:
        """Total watt-seconds the fleet draw spent above the cap."""
        return sum(self.node_over_cap_ws)

    @property
    def mean_watts(self) -> float:
        """Mean fleet draw over the accounted timeline."""
        span = sum(s.duration_s for s in self.segments)
        if span <= 0:
            return 0.0
        return self.fleet_energy_ws / span

    @property
    def shed(self) -> int:
        """Arrivals the governor dropped to stay under the cap."""
        return sum(count for _, count in self.shed_by_tier)

    def over_cap_ws_between(self, start_s: float, end_s: float) -> float:
        """Over-cap watt-seconds accrued inside ``[start_s, end_s)``.

        Segments partially overlapping the window contribute
        pro rata — the brownout walkthrough uses this to split the
        ledger into pre- and post-shift halves.
        """
        total = 0.0
        for segment in self.segments:
            overlap = (min(segment.end_s, end_s)
                       - max(segment.start_s, start_s))
            if overlap <= 0 or segment.duration_s <= 0:
                continue
            total += segment.over_cap_ws * overlap / segment.duration_s
        return total

    def summary(self) -> str:
        """Human-readable digest (printed by the examples)."""
        cap = ("uncapped" if math.isinf(self.cap_w)
               else f"cap {self.cap_w:.1f} W")
        lines = [
            f"PowerLedger[{cap}"
            + (f", shift to {self.cap_shift[1]:.1f} W at "
               f"{self.cap_shift[0]:.0f} s" if self.cap_shift else "")
            + (", enforced]" if self.enforced else ", cap-blind]"),
            f"  energy {self.fleet_energy_ws:.0f} Ws "
            f"(mean {self.mean_watts:.2f} W), over cap "
            f"{self.fleet_over_cap_ws:.1f} Ws, "
            f"{len(self.dvfs_transitions)} DVFS transitions, "
            f"{self.shed} shed",
        ]
        for i, name in enumerate(self.node_names):
            lines.append(
                f"    {name}: {self.node_energy_ws[i]:.0f} Ws, over cap "
                f"{self.node_over_cap_ws[i]:.1f} Ws, final DVFS level "
                f"{self.node_final_levels[i]}")
        return "\n".join(lines)


class _PowerGovernor:
    """Dispatch-time power accounting and enforcement (phase 1 only).

    Mutable companion of one :func:`plan_dispatch` walk; everything it
    produces lands in the plain-data :class:`FleetPowerReport`.
    """

    def __init__(self, config: FleetPowerConfig, specs, horizon_s: float,
                 recorder: Recorder = NULL_RECORDER):
        if len(config.ladders) != len(specs):
            raise ValueError(
                f"power config has {len(config.ladders)} ladders for "
                f"{len(specs)} nodes")
        self.config = config
        self.specs = list(specs)
        self.horizon_s = horizon_s
        self.recorder = recorder
        self.cap_w = config.cap_w
        n = len(self.specs)
        self.levels = [0] * n
        self.last_t = 0.0
        # Draw per node over the segment currently being integrated.
        self._node_watts = [ladder[0].node_watts(0.0)
                            for ladder in config.ladders]
        self.node_energy = [0.0] * n
        self.node_over = [0.0] * n
        self.segments: list[PowerSegment] = []
        self.transitions: list[tuple[float, int, int]] = []
        self.shed_counts: dict[str, int] = {}

    # ------------------------------------------------------------ model
    def _watts(self, index: int, alive: bool, est_live: int,
               level: int | None = None) -> float:
        """One node's draw at an occupancy estimate; a dead node draws 0."""
        if not alive:
            return 0.0
        spec = self.specs[index]
        state = self.config.ladders[index][
            self.levels[index] if level is None else level]
        return state.node_watts(min(1.0, est_live / spec.capacity))

    def _fleet_watts(self, loads, levels=None) -> float:
        return sum(
            self._watts(i, alive, est_live,
                        None if levels is None else levels[i])
            for i, (alive, est_live) in enumerate(loads))

    def speed_multiplier(self, index: int) -> float:
        """Current DVFS speed multiplier of one node."""
        return self.config.ladders[index][self.levels[index]] \
            .speed_multiplier

    def marginal_watts(self, index: int, est_live: int) -> float:
        """Extra draw of landing one more session on a node, as priced
        at its current DVFS state (0 once the occupancy estimate is
        saturated — but such nodes have no free slots to route to)."""
        return (self._watts(index, True, est_live + 1)
                - self._watts(index, True, est_live))

    # ------------------------------------------------------- accounting
    def advance(self, t: float) -> None:
        """Integrate the stored draw over ``[last_t, t)``.

        Idempotent at a single instant, so every handler of a same-time
        event batch may call it; the stored per-node draw only changes
        in :meth:`update`, after the event's mutations are applied.
        """
        end = min(t, self.horizon_s)
        if end <= self.last_t:
            return
        dt = end - self.last_t
        fleet = sum(self._node_watts)
        over_ws = max(0.0, fleet - self.cap_w) * dt
        for i, watts in enumerate(self._node_watts):
            self.node_energy[i] += watts * dt
            if over_ws > 0.0 and fleet > 0.0:
                share = watts / fleet
                self.node_over[i] += over_ws * share
                if self.recorder.enabled:
                    self.recorder.count(POWER_OVER_CAP_WS, over_ws * share,
                                        label=self.specs[i].name)
        self.segments.append(PowerSegment(
            start_s=self.last_t, end_s=end, watts=fleet, cap_w=self.cap_w))
        self.last_t = end

    def shift_cap(self, new_cap: float) -> None:
        """Put a new fleet cap in force (brownout instant)."""
        self.cap_w = new_cap

    # ------------------------------------------------------ enforcement
    def _step(self, t: float, index: int, new_level: int) -> None:
        self.levels[index] = new_level
        self.transitions.append((t, index, new_level))
        if self.recorder.enabled:
            self.recorder.count(
                POWER_DVFS_TRANSITIONS,
                label=f"{self.specs[index].name}/{new_level}")

    def update(self, t: float, loads) -> None:
        """Settle DVFS levels for the new occupancy and re-price nodes.

        Called after every event's mutations: steps nodes down their
        ladders while the fleet draw exceeds the cap (largest single-step
        saving first, lowest index on ties), then back up while the draw
        stays under ``hysteresis x cap`` (deepest-throttled node first).
        With ``enforce=False`` levels stay pinned at nominal and this
        only refreshes the stored draw.
        """
        if self.config.enforce:
            while self._fleet_watts(loads) > self.cap_w:
                best, saving = -1, 0.0
                for i, (alive, est_live) in enumerate(loads):
                    if not alive or self.levels[i] + 1 >= \
                            len(self.config.ladders[i]):
                        continue
                    gain = (self._watts(i, alive, est_live)
                            - self._watts(i, alive, est_live,
                                          self.levels[i] + 1))
                    if gain > saving:
                        best, saving = i, gain
                if best < 0:
                    break
                self._step(t, best, self.levels[best] + 1)
            while True:
                candidates = [i for i, (alive, _) in enumerate(loads)
                              if alive and self.levels[i] > 0]
                candidates.sort(key=lambda i: (-self.levels[i], i))
                stepped = False
                for i in candidates:
                    trial = list(self.levels)
                    trial[i] -= 1
                    if self._fleet_watts(loads, trial) \
                            <= self.cap_w * self.config.hysteresis:
                        self._step(t, i, self.levels[i] - 1)
                        stepped = True
                        break
                if not stepped:
                    break
        self._node_watts = [self._watts(i, alive, est_live)
                            for i, (alive, est_live) in enumerate(loads)]
        if self.recorder.enabled:
            self.recorder.gauge(POWER_FLEET_WATTS, t,
                                sum(self._node_watts))

    def should_shed(self, tier: str, loads) -> bool:
        """True when an arrival of ``tier`` must be dropped, not routed.

        Only sheddable tiers are ever dropped, and only when *no*
        placement could keep the fleet under the cap even with every
        alive node stepped to its ladder floor — if some node could
        absorb the session within budget, the governor routes and lets
        renegotiation do its job.
        """
        if not self.config.enforce or tier not in self.config.shed_tiers:
            return False
        if not any(alive for alive, _ in loads):
            return False          # no node at all: that is a *lost* arrival
        floors = [len(ladder) - 1 for ladder in self.config.ladders]
        best = math.inf
        for j, (alive, _) in enumerate(loads):
            if not alive:
                continue
            with_extra = [(a, e + 1 if i == j else e)
                          for i, (a, e) in enumerate(loads)]
            best = min(best, self._fleet_watts(with_extra, floors))
        return best > self.cap_w

    def record_shed(self, tier: str) -> None:
        """Count one dropped arrival against its tier."""
        self.shed_counts[tier] = self.shed_counts.get(tier, 0) + 1
        if self.recorder.enabled:
            self.recorder.count(POWER_SHED, label=tier)

    # ----------------------------------------------------------- report
    def finish(self) -> FleetPowerReport:
        """Close the final segment and freeze the ledger."""
        self.advance(self.horizon_s)
        return FleetPowerReport(
            cap_w=self.config.cap_w,
            cap_shift=self.config.cap_shift,
            enforced=self.config.enforce,
            node_names=tuple(spec.name for spec in self.specs),
            node_energy_ws=tuple(self.node_energy),
            node_over_cap_ws=tuple(self.node_over),
            node_final_levels=tuple(self.levels),
            dvfs_transitions=tuple(self.transitions),
            shed_by_tier=tuple(sorted(self.shed_counts.items())),
            segments=tuple(self.segments),
        )
