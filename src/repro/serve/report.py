"""Serving-loop outcome records.

Everything here is plain data (tuples, dicts of floats, the piecewise
:class:`~repro.sim.dynamic.Timeline`): a :class:`ServeReport` crosses the
scenario-runner process boundary by pickling, and two runs of the same
:class:`~repro.runner.DynamicScenario` compare bit-equal regardless of the
worker count — the determinism regression relies on dataclass equality, so
no wall-clock or process-local field may live in the report (the runner's
wrapper carries those).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Sequence

from ..sim.dynamic import Timeline

__all__ = ["SessionOutcome", "ServeReport", "jain_index",
           "tier_survival_rates"]

#: Session terminal states.
SERVED = "served"                  # completed its full duration
SERVING = "serving"                # still live when the horizon closed
REJECTED = "rejected"              # admission controller turned it away
ABANDONED = "abandoned"            # queued, timed out before admission
QUEUED = "queued"                  # still waiting when the horizon closed
OUT_OF_HORIZON = "out_of_horizon"  # would arrive after the horizon closed
EVICTED = "evicted"                # preempted, never resumed service


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of ``values``: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even, ``1/n`` means one value holds everything.
    An empty or all-zero sequence reports 1.0 (nothing is being shared
    unevenly).
    """
    if not values:
        return 1.0
    total = float(sum(values))
    squares = float(sum(v * v for v in values))
    if squares <= 0.0:
        return 1.0
    return total * total / (len(values) * squares)


def tier_survival_rates(sessions: "Sequence[SessionOutcome]") -> list[float]:
    """Per-tier survival under preemption: for every tier with at least
    one admitted session, the fraction of its admitted sessions that did
    *not* end terminally evicted.

    The shared substrate of the node- and fleet-level
    ``eviction_fairness`` metrics (the fleet feeds distinct sessions in),
    so the survival definition cannot silently diverge between the two.
    """
    admitted: dict[str, int] = {}
    survived: dict[str, int] = {}
    for s in sessions:
        if s.admitted_s is None:
            continue
        admitted[s.tier] = admitted.get(s.tier, 0) + 1
        if s.outcome != EVICTED:
            survived[s.tier] = survived.get(s.tier, 0) + 1
    return [survived.get(tier, 0) / count
            for tier, count in admitted.items()]


@dataclass(frozen=True)
class SessionOutcome:
    """One session's fate through the serving loop."""

    session_id: int
    tier: str                      # tier at the end of the session
    arrival_s: float
    outcome: str                   # SERVED | SERVING | REJECTED | ...
    model: str | None = None       # pool model name while live (the last
    #                                one; a resumed session may re-admit
    #                                under a different free pool name)
    admitted_s: float | None = None
    departed_s: float | None = None
    queue_wait_s: float = 0.0
    served_seconds: float = 0.0    # time spent admitted (within horizon)
    delivered_inferences: float = 0.0
    gap_seconds: float = 0.0       # admitted time at rate 0 (re-mapping gaps)
    violation_seconds: float = 0.0  # admitted time below the tier's min P
    evictions: int = 0             # times this session was suspended
    demotions: int = 0             # times its tier was renegotiated down
    resumptions: int = 0           # times it re-admitted after eviction
    abandoned_s: float | None = None   # when the queue timeout fired —
    #                                set iff the session (fresh or parked)
    #                                waited out max_queue_wait_s

    @property
    def mean_rate(self) -> float:
        """Average delivered inferences/s while admitted."""
        if self.served_seconds <= 0:
            return 0.0
        return self.delivered_inferences / self.served_seconds


@dataclass(frozen=True)
class ServeReport:
    """Aggregate outcome of one serving run."""

    horizon_s: float
    policy: str                    # replan-policy roster key / name
    manager: str                   # planning manager's display name
    sessions: tuple[SessionOutcome, ...]
    timeline: Timeline
    replans: int
    replan_kinds: dict[str, int] = field(default_factory=dict)
    total_decision_seconds: float = 0.0   # modeled planner latency, summed

    # ------------------------------------------------------- admission
    def _count(self, outcome: str) -> int:
        return sum(1 for s in self.sessions if s.outcome == outcome)

    @property
    def arrivals(self) -> int:
        """Total session requests the run observed (every outcome)."""
        return len(self.sessions)

    @property
    def admitted(self) -> int:
        """Sessions that reached a serving slot (immediately or queued)."""
        return sum(1 for s in self.sessions if s.admitted_s is not None)

    @property
    def rejected(self) -> int:
        """Sessions the admission controller turned away outright."""
        return self._count(REJECTED)

    @property
    def abandoned(self) -> int:
        """Sessions that queued but timed out before admission."""
        return self._count(ABANDONED)

    @property
    def queued_at_horizon(self) -> int:
        """Sessions still in the waiting room when the horizon closed."""
        return self._count(QUEUED)

    @property
    def out_of_horizon(self) -> int:
        """Trace requests arriving after the horizon (never observed)."""
        return self._count(OUT_OF_HORIZON)

    # ------------------------------------------------------- preemption
    @property
    def evicted(self) -> int:
        """Sessions that ended in the ``evicted`` terminal state
        (suspended by a preemption and never resumed)."""
        return self._count(EVICTED)

    @property
    def evictions(self) -> int:
        """Eviction *events*, summed — a session suspended twice counts
        twice, and a later resumption does not subtract."""
        return sum(s.evictions for s in self.sessions)

    @property
    def demotions(self) -> int:
        """Tier-renegotiation events (victim demoted to the floor tier)."""
        return sum(s.demotions for s in self.sessions)

    @property
    def resumptions(self) -> int:
        """Evicted sessions re-admitted from the waiting room, summed."""
        return sum(s.resumptions for s in self.sessions)

    @property
    def eviction_fairness(self) -> float:
        """Jain index of per-tier survival under preemption.

        Each tier with at least one admitted session contributes the
        fraction of its admitted sessions that did *not* end terminally
        evicted.  1.0 means no tier lost sessions to preemption (or
        losses were spread evenly); the index drops as eviction
        collateral concentrates on one tier — the bound the preemption
        study tracks on bronze.
        """
        return jain_index(tier_survival_rates(self.sessions))

    def tier_violation_fraction(self, tier: str) -> float:
        """Fraction of one tier's observed session-time below its min P.

        Unlike the aggregate :attr:`sla_violation_fraction`, the
        per-tier view counts *waiting-room time as violation time*: a
        queued session delivers nothing, so its potential sits at 0 —
        below every tier's guarantee.  The denominator is the tier's
        waited-plus-admitted time, which is what makes preemption
        visible: evicting a bronze resident for a blocked gold arrival
        converts gold waiting (pure violation) into gold service.
        Sessions are bucketed by their *final* tier, so a renegotiated
        victim's squeezed time is charged to the floor tier it was
        demoted to, not the tier it bought.
        """
        waited = sum(s.queue_wait_s for s in self.sessions
                     if s.tier == tier)
        served = sum(s.served_seconds for s in self.sessions
                     if s.tier == tier)
        if waited + served <= 0:
            return 0.0
        violation = sum(s.violation_seconds for s in self.sessions
                        if s.tier == tier)
        return (waited + violation) / (waited + served)

    @property
    def waited_in_queue(self) -> int:
        """Admitted sessions that spent time in the waiting room first."""
        return sum(1 for s in self.sessions
                   if s.admitted_s is not None and s.queue_wait_s > 0)

    @property
    def mean_queue_wait_s(self) -> float:
        """Mean waiting-room time of the sessions that got admitted."""
        waits = [s.queue_wait_s for s in self.sessions
                 if s.admitted_s is not None]
        return sum(waits) / len(waits) if waits else 0.0

    # --------------------------------------------------------- service
    @property
    def observed_seconds(self) -> float:
        """Total admitted DNN-time within the horizon, summed over sessions."""
        return sum(s.served_seconds for s in self.sessions)

    @property
    def total_gap_seconds(self) -> float:
        """Admitted time spent at rate 0 (re-mapping gaps), summed."""
        return sum(s.gap_seconds for s in self.sessions)

    @property
    def sla_violation_seconds(self) -> float:
        """Admitted time below the session tier's minimum P, summed."""
        return sum(s.violation_seconds for s in self.sessions)

    @property
    def sla_violation_fraction(self) -> float:
        """Fraction of admitted DNN-time spent below the tier guarantee."""
        if self.observed_seconds <= 0:
            return 0.0
        return self.sla_violation_seconds / self.observed_seconds

    @property
    def mean_session_rate(self) -> float:
        """Mean delivered inferences/s over the sessions that served."""
        rates = [s.mean_rate for s in self.sessions
                 if s.served_seconds > 0]
        return sum(rates) / len(rates) if rates else 0.0

    @property
    def mean_decision_seconds(self) -> float:
        """Mean modeled planner latency per replan invocation."""
        return self.total_decision_seconds / self.replans if self.replans \
            else 0.0

    # --------------------------------------------------------- display
    def summary(self) -> str:
        """Human-readable multi-line digest (printed by the examples)."""
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(
            self.replan_kinds.items())) or "none"
        lines = [
            f"ServeReport[{self.manager} / {self.policy}] over "
            f"{self.horizon_s:.0f} s",
            f"  sessions: {self.arrivals} arrived, {self.admitted} admitted "
            f"({self.waited_in_queue} after queueing), "
            f"{self.rejected} rejected, {self.abandoned} abandoned, "
            f"{self.queued_at_horizon} still queued",
        ]
        if self.evictions or self.demotions:
            lines.append(
                f"  preemption: {self.evictions} evictions "
                f"({self.resumptions} resumed, {self.evicted} lost), "
                f"{self.demotions} demotions; eviction fairness "
                f"{self.eviction_fairness:.3f}")
        lines += [
            f"  replans: {self.replans} ({kinds}); decision latency "
            f"{self.total_decision_seconds:.1f} s total, "
            f"{self.mean_decision_seconds:.2f} s mean",
            f"  re-mapping gap time: {self.total_gap_seconds:.1f} s of "
            f"{self.observed_seconds:.1f} s admitted DNN-time",
            f"  SLA: {self.sla_violation_fraction:.1%} of admitted time in "
            f"violation; mean session rate {self.mean_session_rate:.2f}/s",
            f"  mean queue wait: {self.mean_queue_wait_s:.1f} s",
        ]
        return "\n".join(lines)
