"""Reference serving loop: the pre-streaming architecture, bugs fixed.

:func:`serve_trace_reference` is the O(n²)-ish seed implementation of the
serving loop kept as an executable oracle: a fully materialised waiting
room that is re-sorted on every drain admission, per-resident python
accumulation in ``emit()``, and the whole trace in memory.  The only
behavioural change from the seed is the queue-timeout fix shared with the
streaming loop — explicit timeout events scheduled at
:meth:`~repro.serve.admission.AdmissionController.queue_deadline` instead
of the lazy ``purge_queue`` scan — so the two implementations define the
*same* semantics through entirely different data structures.

The property suite (``tests/property/test_serve_properties.py``) drives
randomized preemption/tier-shift/timeout traces through both loops and
asserts the :class:`~repro.serve.report.ServeReport` outputs are
bit-identical, single-node and through the fleet dispatch path.  Keep
this module boring: when the streaming loop in :mod:`repro.serve.loop`
grows a feature, port the *semantics* here in the simplest possible
form, never the optimisation.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..hw.platform import Platform
from ..sim.cache import EvaluationCache
from ..sim.dynamic import Segment, Timeline, restrict_mapping
from ..workloads.traces import SessionRequest
from ..zoo.layers import ModelSpec
from ..zoo.registry import get_model
from .admission import ADMIT, PREEMPT, QUEUE, AdmissionController
from .loop import ServeConfig, _manager_name
from .preempt import EVICT, LiveView
from .replan import ReplanPolicy
from .report import (
    ABANDONED,
    EVICTED,
    OUT_OF_HORIZON,
    QUEUED,
    REJECTED,
    SERVED,
    SERVING,
    ServeReport,
    SessionOutcome,
)

__all__ = ["serve_trace_reference"]


class _Live:
    """The seed loop's mutable per-session record, accounting in plain
    python floats.

    The streaming loop keeps the same lifecycle (eviction parks the
    record, ``epoch`` guards stale events, ``pending_shift`` freezes
    while suspended) but accumulates service time in shared numpy
    arrays; this copy accumulates on the instance, one float op per
    resident per segment, exactly as the seed did — which is what makes
    the bit-identity property meaningful.
    """

    __slots__ = ("request", "model", "tier", "admitted_s", "queue_wait_s",
                 "served", "delivered", "gap", "violation",
                 "last_admit_s", "depart_s", "epoch", "pending_shift",
                 "evictions", "demotions", "resumptions")

    def __init__(self, request: SessionRequest, model: ModelSpec,
                 admitted_s: float, queue_wait_s: float):
        self.request = request
        self.model = model
        self.tier = request.tier
        self.admitted_s = admitted_s
        self.queue_wait_s = queue_wait_s
        self.served = 0.0
        self.delivered = 0.0
        self.gap = 0.0
        self.violation = 0.0
        self.last_admit_s = admitted_s
        self.depart_s = admitted_s + request.duration_s
        self.epoch = 0
        self.pending_shift = request.tier_shift
        self.evictions = 0
        self.demotions = 0
        self.resumptions = 0

    def outcome(self, state: str, departed_s: float | None,
                abandoned_s: float | None = None) -> SessionOutcome:
        return SessionOutcome(
            session_id=self.request.session_id, tier=self.tier,
            arrival_s=self.request.arrival_s, outcome=state,
            model=self.model.name, admitted_s=self.admitted_s,
            departed_s=departed_s, queue_wait_s=self.queue_wait_s,
            served_seconds=self.served, delivered_inferences=self.delivered,
            gap_seconds=self.gap, violation_seconds=self.violation,
            evictions=self.evictions, demotions=self.demotions,
            resumptions=self.resumptions, abandoned_s=abandoned_s,
        )

# Same-timestamp processing order (identical to the streaming loop):
# free capacity first, then shifts, then arrivals; queue timeouts last so
# a session admitted or counted at exactly its deadline matches the
# seed's strict `waited > max_wait` abandonment test.
_RANK_DEPARTURE = 0
_RANK_SHIFT = 1
_RANK_ARRIVAL = 2
_RANK_TIMEOUT = 3


def serve_trace_reference(requests, policy: ReplanPolicy,
                          platform: Platform,
                          config: ServeConfig | None = None,
                          cache: EvaluationCache | None = None,
                          ) -> ServeReport:
    """Serve a session-request trace through the reference (oracle) loop.

    Accepts any iterable of :class:`SessionRequest` but materialises it
    immediately — this implementation exists to pin semantics, not to
    scale.  See the module docstring for what it is an oracle *of*.
    """
    requests = list(requests)
    config = config if config is not None else ServeConfig()
    if cache is None:
        cache = EvaluationCache(platform)
    controller = AdmissionController(config.admission)
    preempting = config.admission.preemption != "none"
    for request in requests:                   # validate tiers up front
        controller.tier(request.tier)
        if request.tier_shift is not None:
            controller.tier(request.tier_shift[1])
    rng = np.random.default_rng(config.seed)
    horizon = config.horizon_s
    max_wait = controller.config.max_queue_wait_s

    heap: list[tuple] = []
    seq = 0

    def push(time: float, rank: int, kind: str, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, rank, seq, kind, payload))
        seq += 1

    live: dict[str, _Live] = {}                # name -> record, in order
    # Waiting room: (request, enqueue_s, suspended record | None,
    # remaining duration, enqueue token).  The token identifies one
    # *stay* in the room — a session that is admitted and later parked
    # again gets a fresh token, so the timeout event of the earlier stay
    # cannot touch it.
    queue: list[tuple[SessionRequest, float, _Live | None, float, int]] = []
    enqueue_tokens = 0
    results: dict[int, SessionOutcome] = {}
    epoch_seq = 0                              # admission epochs, see _Live

    for request in sorted(requests,
                          key=lambda r: (r.arrival_s, r.session_id)):
        if request.arrival_s < horizon:
            push(request.arrival_s, _RANK_ARRIVAL, "arrival", request)
        else:
            results[request.session_id] = SessionOutcome(
                session_id=request.session_id, tier=request.tier,
                arrival_s=request.arrival_s, outcome=OUT_OF_HORIZON)
    timeline = Timeline()
    current = None
    incumbent = None
    clock = 0.0
    replans = 0
    kinds: dict[str, int] = {}
    decision_total = 0.0

    # ------------------------------------------------------------------
    def emit(t0: float, t1: float) -> None:
        duration = t1 - t0
        if duration <= 0:
            return
        names = tuple(live.keys())
        if current is None:
            rates = {n: 0.0 for n in names}
            pots = dict(rates)
        else:
            models, mapping = current
            result = cache.simulate_one(models, mapping)
            rates = {m.name: float(r)
                     for m, r in zip(models, result.rates)}
            pots = {m.name: float(p)
                    for m, p in zip(models, result.potentials)}
            for n in names:                    # admitted but not yet mapped
                rates.setdefault(n, 0.0)
                pots.setdefault(n, 0.0)
        if config.record_timeline:
            timeline.segments.append(Segment(t0, t1, names, rates, pots))
        for n, record in live.items():
            rate = rates[n]
            record.served += duration
            record.delivered += rate * duration
            if rate <= 0.0:
                record.gap += duration
            if pots[n] < controller.tier(record.tier).min_potential:
                record.violation += duration

    # ------------------------------------------------------------------
    def enqueue(request: SessionRequest, t: float, record: _Live | None,
                remaining: float) -> None:
        nonlocal enqueue_tokens
        enqueue_tokens += 1
        queue.append((request, t, record, remaining, enqueue_tokens))
        deadline = controller.queue_deadline(t)
        if deadline < horizon:
            push(deadline, _RANK_TIMEOUT, "timeout", enqueue_tokens)

    def timeout(token: int, t: float) -> None:
        """Abandon the waiting-room stay ``token`` at its true deadline.

        Stale tokens (the session was drained into a slot, or already
        abandoned) simply miss: the stay is no longer in the room.
        """
        for i, (request, _, record, _, tok) in enumerate(queue):
            if tok != token:
                continue
            del queue[i]
            if record is None:
                results[request.session_id] = SessionOutcome(
                    session_id=request.session_id, tier=request.tier,
                    arrival_s=request.arrival_s, outcome=ABANDONED,
                    queue_wait_s=max_wait, abandoned_s=t)
            else:
                # A suspended session that waited out the timeout is
                # eviction collateral, not a plain abandonment.
                record.queue_wait_s += max_wait
                results[request.session_id] = record.outcome(
                    EVICTED, departed_s=None, abandoned_s=t)
            return

    def admit(request: SessionRequest, t: float, queue_wait: float,
              record: _Live | None = None,
              remaining_s: float | None = None) -> None:
        nonlocal epoch_seq
        free = [n for n in config.pool if n not in live]
        name = str(rng.choice(free))
        if record is None:
            record = _Live(request, get_model(name), t, queue_wait)
            duration = request.duration_s
        else:
            record.model = get_model(name)
            record.resumptions += 1
            record.queue_wait_s += queue_wait
            duration = remaining_s
        epoch_seq += 1
        record.epoch = epoch_seq
        record.last_admit_s = t
        record.depart_s = t + duration
        live[name] = record
        if record.depart_s < horizon:
            push(record.depart_s, _RANK_DEPARTURE, "departure",
                 (name, request.session_id, record.epoch))
        if record.pending_shift is not None:
            offset, new_tier = record.pending_shift
            shift_t = t + offset
            if shift_t < min(record.depart_s, horizon):
                push(shift_t, _RANK_SHIFT, "shift",
                     (name, request.session_id, record.epoch, new_tier))

    def queue_tier(item: tuple) -> str:
        """Drain priority follows the *current* tier of a suspended
        record (shifts and demotions included), the request tier else."""
        request, _, record, _, _ = item
        return record.tier if record is not None else request.tier

    def drain(t: float) -> bool:
        admitted_any = False
        while True:
            if not queue or len(live) >= controller.config.capacity:
                break
            if all(n in live for n in config.pool):
                break
            # The oracle's deliberately naive O(n log n)-per-admission
            # re-sort the streaming loop's keyed heap is checked against.
            queue.sort(key=lambda item: controller.queue_order_key(
                queue_tier(item), item[1], item[0].session_id))
            request, enqueued, record, remaining, _ = queue.pop(0)
            admit(request, t, queue_wait=t - enqueued, record=record,
                  remaining_s=remaining)
            admitted_any = True
        return admitted_any

    def evict(name: str, t: float) -> None:
        """Suspend the named session: park its record (and remainder) in
        the waiting room and free its slot + pool name."""
        victim = live.pop(name)
        remaining = victim.depart_s - t
        if remaining <= 0:
            results[victim.request.session_id] = victim.outcome(
                SERVED, departed_s=t)
            return
        victim.evictions += 1
        if victim.pending_shift is not None:
            offset, new_tier = victim.pending_shift
            victim.pending_shift = (offset - (t - victim.last_admit_s),
                                    new_tier)
        enqueue(victim.request, t, victim, remaining)

    # ------------------------------------------------------------------
    def handle(kind: str, payload, t: float) -> bool:
        """Apply one event; returns True when a replan is needed."""
        if kind == "arrival":
            request = payload
            free = any(n not in live for n in config.pool)
            if preempting and not controller.can_admit(len(live), free):
                views = tuple(
                    LiveView(name=n, session_id=r.request.session_id,
                             tier=r.tier,
                             priority=controller.tier(r.tier).priority,
                             admitted_s=r.last_admit_s,
                             served_s=r.served)
                    for n, r in live.items())
                # Parked (evicted) sessions do not consume the bounded
                # waiting-room slots — only fresh arrivals count against
                # queue_limit.
                fresh_queued = sum(1 for item in queue
                                   if item[2] is None)
            else:
                views = None
                fresh_queued = len(queue)
            decision, plan = controller.decide_with_plan(
                request.tier, len(live), fresh_queued, free, views)
            if decision == ADMIT:
                admit(request, t, queue_wait=0.0)
                return True
            if decision == PREEMPT:
                if plan.action == EVICT:
                    evict(plan.victim, t)
                else:
                    victim = live[plan.victim]
                    victim.tier = plan.demote_to
                    victim.demotions += 1
                    victim.pending_shift = None
                admit(request, t, queue_wait=0.0)
                return True
            if decision == QUEUE:
                enqueue(request, t, None, request.duration_s)
                return False
            results[request.session_id] = SessionOutcome(
                session_id=request.session_id, tier=request.tier,
                arrival_s=request.arrival_s, outcome=REJECTED)
            return False
        if kind == "departure":
            name, session_id, epoch = payload
            record = live.get(name)
            if record is None or record.request.session_id != session_id \
                    or record.epoch != epoch:
                return False       # stale: slot reused or session resumed
            del live[name]
            results[session_id] = record.outcome(SERVED, departed_s=t)
            drain(t)
            return True
        # kind == "shift"
        name, session_id, epoch, new_tier = payload
        record = live.get(name)
        if record is None or record.request.session_id != session_id \
                or record.epoch != epoch:
            return False
        if record.pending_shift is None:
            return False     # cancelled — e.g. voided by a renegotiation
        record.tier = new_tier
        record.pending_shift = None
        return True

    # ------------------------------------------------------------------
    def replan(t: float) -> float:
        nonlocal current, incumbent, replans, decision_total
        if not live:
            current = None
            incumbent = None
            return t
        workload = [record.model for record in live.values()]
        vector = np.array([controller.tier(record.tier).priority
                           for record in live.values()])
        outcome = policy.replan(workload, vector, incumbent)
        replans += 1
        kinds[outcome.kind] = kinds.get(outcome.kind, 0) + 1
        decision_total += outcome.decision_seconds
        gap = max(0.0, outcome.decision_seconds)
        if gap > 0 and t < horizon:
            if current is not None:
                prev_models, prev_mapping = current
                current = restrict_mapping(
                    prev_mapping, [m.name for m in prev_models], workload)
            gap_end = min(t + gap, horizon)
            emit(t, gap_end)
            t = gap_end
        current = (workload, outcome.mapping)
        incumbent = (tuple(m.name for m in workload), outcome.mapping)
        return t

    # ------------------------------------------------------------------
    while heap:
        t_event, _, _, kind, payload = heap[0]
        if t_event >= horizon:
            break
        if kind == "timeout":
            # Out of band: an abandonment changes no live session, emits
            # no segment and does not advance the clock — it only stamps
            # the true (gap-adjusted) abandonment time on the outcome.
            heapq.heappop(heap)
            timeout(payload, max(clock, t_event))
            continue
        # Events landing inside a decision gap take effect when it closes.
        effective = max(clock, t_event)
        emit(clock, effective)
        clock = effective
        needs_replan = False
        while heap and heap[0][0] == t_event:
            _, _, _, kind, payload = heapq.heappop(heap)
            if kind == "timeout":
                timeout(payload, clock)
            else:
                needs_replan |= handle(kind, payload, clock)
        if needs_replan:
            clock = replan(clock)

    emit(clock, horizon)

    # ------------------------------------------------------- finalize
    for record in live.values():
        results[record.request.session_id] = record.outcome(
            SERVING, departed_s=None)
    for request, enqueued, record, _, _ in queue:
        # Still waiting at the horizon: the timeout event would have
        # fired inside the horizon, so the stay is shorter than max_wait.
        wait = min(horizon - enqueued, max_wait)
        if record is not None:
            record.queue_wait_s += wait
            results[request.session_id] = record.outcome(
                EVICTED, departed_s=None)
            continue
        results[request.session_id] = SessionOutcome(
            session_id=request.session_id, tier=request.tier,
            arrival_s=request.arrival_s, outcome=QUEUED,
            queue_wait_s=wait)

    sessions = tuple(results[sid] for sid in sorted(results))
    return ServeReport(
        horizon_s=horizon, policy=policy.name,
        manager=_manager_name(policy), sessions=sessions,
        timeline=timeline, replans=replans, replan_kinds=kinds,
        total_decision_seconds=decision_total,
    )
