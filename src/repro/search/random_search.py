"""Random search over mappings — the ablation baseline for MCTS."""

from __future__ import annotations

import numpy as np

from ..mapping.mapping import Mapping
from ..mapping.random_map import uniform_block_mapping
from ..zoo.layers import ModelSpec
from .mcts import Evaluator
from .reward import DISQUALIFIED

__all__ = ["random_search"]


def random_search(workload: list[ModelSpec], num_components: int,
                  evaluator: Evaluator, evaluations: int,
                  rng: np.random.Generator,
                  batch_size: int = 16) -> tuple[Mapping, float]:
    """Evaluate ``evaluations`` uniform mappings; return the best.

    Same evaluation budget semantics as MCTS, no tree guidance — used by
    the ablation benchmark to quantify what the tree search contributes.
    """
    if evaluations < 1:
        raise ValueError("need at least one evaluation")
    best_mapping: Mapping | None = None
    best_reward = -np.inf
    done = 0
    while done < evaluations:
        take = min(batch_size, evaluations - done)
        batch = [uniform_block_mapping(workload, num_components, rng)
                 for _ in range(take)]
        rewards = np.asarray(evaluator(batch), dtype=np.float64)
        idx = int(rewards.argmax())
        if rewards[idx] > best_reward:
            best_reward = float(rewards[idx])
            best_mapping = batch[idx]
        done += take
    if best_mapping is None:  # pragma: no cover
        raise RuntimeError("no mapping evaluated")
    if best_reward <= DISQUALIFIED:
        # Nothing qualified; the least-bad mapping is still returned.
        pass
    return best_mapping, best_reward
