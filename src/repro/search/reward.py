"""Priority-weighted reward with starvation disqualification (Sec. IV-E).

    M* = argmax_M  O(M)^T p   subject to  O(M)_i > th  for all i

Mappings with any predicted per-DNN throughput at or below the threshold are
disqualified (the paper's "large negative reward").  Thresholds may be given
absolutely in inferences/s (as in the paper's Fig. 4 example, th = 3) or
relative to each DNN's ideal throughput — the relative form adapts to
workloads mixing 4 inf/s and 60 inf/s models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.platform import Platform
from ..zoo.layers import ModelSpec

__all__ = ["RewardConfig", "DISQUALIFIED", "thresholds_for", "mapping_reward"]

#: Reward assigned to disqualified mappings (the paper's "-inf").
DISQUALIFIED = -1e18


@dataclass(frozen=True)
class RewardConfig:
    """Reward shape and threshold policy.

    Two reward kinds are provided:

    * ``"floor"`` (default) — implements the paper's guarantee that "each
      DNN receives enough computing resources proportional to its priority
      without starving other DNNs": a mapping must clear a per-DNN
      potential floor ``threshold + priority_gain * p_i`` and is otherwise
      scored by average throughput.  Under saturation RankMap relaxes the
      floors proportionally, which reproduces the graceful priority
      degradation of the paper's Fig. 9.
    * ``"weighted"`` — the literal Sec. IV-E arithmetic: priority-weighted
      sum of predicted rates with a hard disqualification threshold
      (Fig. 4's example uses this with ``mode="absolute"``).

    ``normalize_by_ideal`` applies to the weighted kind: raw inferences/s
    lets a light DNN's huge rates hijack the objective regardless of
    priorities (a 40 inf/s SqueezeNet at weight 0.1 outscores a 4 inf/s
    Inception at weight 0.7); weighting potentials instead reproduces the
    paper's prioritisation behaviour.
    """

    kind: str = "floor"           # "floor" or "weighted"
    mode: str = "relative"        # "relative" (x ideal) or "absolute" (inf/s)
    threshold: float = 0.04       # base floor: fraction of ideal, or inf/s
    priority_gain: float = 0.5    # floor kind: extra potential per priority
    normalize_by_ideal: bool = True

    def __post_init__(self):
        if self.kind not in ("floor", "weighted"):
            raise ValueError(f"unknown reward kind {self.kind!r}")
        if self.mode not in ("relative", "absolute"):
            raise ValueError(f"unknown threshold mode {self.mode!r}")
        if self.threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.priority_gain < 0:
            raise ValueError("priority_gain must be non-negative")


def thresholds_for(workload: list[ModelSpec], platform: Platform,
                   config: RewardConfig,
                   priorities: np.ndarray | None = None) -> np.ndarray:
    """Per-DNN throughput thresholds in inferences/s.

    The floor reward raises each DNN's threshold in proportion to its
    priority; the weighted reward uses the flat base threshold.
    """
    if config.mode == "absolute":
        base = np.full(len(workload), config.threshold)
        if config.kind == "floor" and priorities is not None:
            # Scale the absolute floor by relative priority.
            base = base * (1.0 + config.priority_gain * len(workload)
                           * np.asarray(priorities))
        return base
    ideals = np.array([platform.ideal_throughput(m) for m in workload])
    frac = np.full(len(workload), config.threshold)
    if config.kind == "floor" and priorities is not None:
        frac = frac + config.priority_gain * np.asarray(priorities)
    return frac * ideals


def mapping_reward(rates: np.ndarray, priorities: np.ndarray,
                   thresholds: np.ndarray,
                   ideals: np.ndarray | None = None,
                   kind: str = "weighted") -> float:
    """Reward of one mapping given (predicted) per-DNN rates.

    ``kind="weighted"``: priority-weighted sum of rates (or potentials
    when ``ideals`` is given).  ``kind="floor"``: average throughput; the
    priorities have already been folded into ``thresholds``.  Either way a
    mapping below any threshold is disqualified.
    """
    rates = np.asarray(rates, dtype=np.float64)
    if rates.shape != priorities.shape or rates.shape != thresholds.shape:
        raise ValueError("rates, priorities and thresholds must align")
    if (rates <= thresholds).any():
        return DISQUALIFIED
    if kind == "floor":
        return float(rates.mean())
    values = rates if ideals is None else rates / np.asarray(ideals)
    return float(values @ priorities)
