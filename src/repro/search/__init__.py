"""Mapping-space search: MCTS (Sec. IV-E), rewards, random ablation."""

from .mcts import MCTS, MCTSConfig, MCTSStats
from .random_search import random_search
from .reward import DISQUALIFIED, RewardConfig, mapping_reward, thresholds_for

__all__ = [
    "MCTS",
    "MCTSConfig",
    "MCTSStats",
    "random_search",
    "DISQUALIFIED",
    "RewardConfig",
    "mapping_reward",
    "thresholds_for",
]
