"""Monte-Carlo Tree Search over the mapping space (Sec. IV-E).

The decision sequence flattens every DNN's blocks in workload order; each
tree level assigns the next block to one of the platform's components, so a
root-to-depth-D path is a complete mapping (D = total blocks, spanning the
``d^D`` solution space).  Selection uses UCB1 with min-max value
normalisation; expansion adds one child; simulation completes the prefix
with uniform random assignments and scores the batch of completed mappings
with the (estimator-backed) evaluator; the best completed mapping ever
scored is returned.

The evaluator is injected as a callable so the same search runs on the
learned estimator (RankMap, OmniBoost) or directly on the simulator
(ablations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..mapping.mapping import Mapping
from ..zoo.layers import ModelSpec
from .reward import DISQUALIFIED

__all__ = ["MCTSConfig", "MCTSStats", "MCTS"]

# Batch evaluator: list of complete mappings -> array of rewards.
Evaluator = Callable[[list[Mapping]], np.ndarray]


@dataclass(frozen=True)
class MCTSConfig:
    """Search budget and exploration parameters."""

    iterations: int = 160          # tree expansions
    rollouts_per_leaf: int = 4     # random completions scored per expansion
    exploration: float = 0.7       # UCB1 constant (values are minmax-normed)
    # Rollout policy: probability that the next block stays on the previous
    # block's component.  Coherent (low-fragmentation) completions cover
    # the useful region of the space far better than iid assignments.
    rollout_persistence: float = 0.85
    seed: int = 0

    @property
    def total_evaluations(self) -> int:
        return self.iterations * self.rollouts_per_leaf


@dataclass
class MCTSStats:
    """Diagnostics of one search run."""

    evaluations: int = 0
    disqualified: int = 0
    best_reward: float = DISQUALIFIED
    tree_nodes: int = 1
    # Best distinct mappings seen, sorted by reward (descending); used by
    # RankMap's optional board-validation pass.
    top_candidates: list = field(default_factory=list)

    def record_candidate(self, reward: float, mapping, keep: int = 8) -> None:
        for _, existing in self.top_candidates:
            if existing.assignments == mapping.assignments:
                return
        self.top_candidates.append((reward, mapping))
        self.top_candidates.sort(key=lambda rm: -rm[0])
        del self.top_candidates[keep:]


class _Node:
    __slots__ = ("visits", "value_sum", "children")

    def __init__(self):
        self.visits = 0
        self.value_sum = 0.0
        self.children: dict[int, _Node] = {}

    def mean(self) -> float:
        return self.value_sum / self.visits if self.visits else 0.0


class MCTS:
    """UCB1 tree search producing the highest-reward mapping found."""

    def __init__(self, workload: list[ModelSpec], num_components: int,
                 evaluator: Evaluator, config: MCTSConfig | None = None):
        config = config if config is not None else MCTSConfig()
        if not workload:
            raise ValueError("workload must not be empty")
        if num_components < 1:
            raise ValueError("need at least one component")
        self.workload = workload
        self.num_components = num_components
        self.evaluator = evaluator
        self.config = config
        self._block_counts = [m.num_blocks for m in workload]
        self.depth = sum(self._block_counts)
        self._rng = np.random.default_rng(config.seed)
        self._root = _Node()
        # Running bounds of valid rewards for value normalisation.
        self._lo = np.inf
        self._hi = -np.inf

    # ------------------------------------------------------------------
    def search(self) -> tuple[Mapping, MCTSStats]:
        """Run the budgeted search; returns (best mapping, diagnostics)."""
        stats = MCTSStats()
        best_mapping: Mapping | None = None

        for _ in range(self.config.iterations):
            path, prefix = self._select_and_expand()
            mappings = [self._complete(prefix)
                        for _ in range(self.config.rollouts_per_leaf)]
            rewards = np.asarray(self.evaluator(mappings), dtype=np.float64)
            if rewards.shape != (len(mappings),):
                raise ValueError("evaluator must return one reward per mapping")

            for mapping, reward in zip(mappings, rewards):
                stats.evaluations += 1
                if reward <= DISQUALIFIED:
                    stats.disqualified += 1
                else:
                    self._lo = min(self._lo, reward)
                    self._hi = max(self._hi, reward)
                if best_mapping is None or reward > stats.best_reward:
                    stats.best_reward = reward
                    best_mapping = mapping
                if reward > DISQUALIFIED:
                    stats.record_candidate(reward, mapping)

            value = self._backup_value(rewards)
            for node in path:
                node.visits += 1
                node.value_sum += value

        stats.tree_nodes = self._count_nodes(self._root)
        if best_mapping is None:  # pragma: no cover - iterations >= 1
            raise RuntimeError("search produced no mapping")
        return best_mapping, stats

    # ------------------------------------------------------------------
    def _select_and_expand(self) -> tuple[list[_Node], list[int]]:
        """Walk the tree with UCB1; expand one new child at the frontier."""
        node = self._root
        path = [node]
        prefix: list[int] = []
        c = self.config.exploration
        while len(prefix) < self.depth:
            if len(node.children) < self.num_components:
                # Expand: add the first untried component at this level.
                untried = [a for a in range(self.num_components)
                           if a not in node.children]
                action = int(self._rng.choice(untried))
                child = _Node()
                node.children[action] = child
                path.append(child)
                prefix.append(action)
                return path, prefix
            # All children exist: UCB1 descent.
            log_n = np.log(max(node.visits, 1))
            best_action, best_score = 0, -np.inf
            for action, child in node.children.items():
                explore = c * np.sqrt(log_n / child.visits) \
                    if child.visits else np.inf
                score = self._normalise(child.mean()) + explore
                if score > best_score:
                    best_action, best_score = action, score
            node = node.children[best_action]
            path.append(node)
            prefix.append(best_action)
        return path, prefix

    def _complete(self, prefix: list[int]) -> Mapping:
        """Markov-persistent random completion of a decision prefix.

        Within a DNN, each block repeats the previous block's component
        with probability ``rollout_persistence``; DNN boundaries and the
        first block draw uniformly.  This biases rollouts toward coherent
        few-stage mappings without excluding any mapping from the support.
        """
        persist = self.config.rollout_persistence
        flat = list(prefix)
        boundaries = set(np.cumsum([0] + self._block_counts[:-1]).tolist())
        while len(flat) < self.depth:
            pos = len(flat)
            if pos in boundaries or not flat or self._rng.random() > persist:
                flat.append(int(self._rng.integers(self.num_components)))
            else:
                flat.append(flat[-1])
        assignments = []
        pos = 0
        for count in self._block_counts:
            assignments.append(tuple(flat[pos : pos + count]))
            pos += count
        return Mapping(tuple(assignments))

    def _backup_value(self, rewards: np.ndarray) -> float:
        """Mean of the batch in raw reward units (disqualified -> floor)."""
        floor = self._floor()
        clipped = np.where(rewards <= DISQUALIFIED, floor, rewards)
        return float(clipped.mean())

    def _floor(self) -> float:
        """Raw-value stand-in for disqualified rollouts."""
        if not np.isfinite(self._lo):
            return 0.0
        spread = max(self._hi - self._lo, 1e-9)
        return self._lo - 0.25 * spread

    def _normalise(self, raw: float) -> float:
        """Min-max normalise a raw mean value into ~[0, 1] for UCB1."""
        if not np.isfinite(self._lo):
            return 0.0
        spread = max(self._hi - self._lo, 1e-9)
        return (raw - self._floor()) / (self._hi - self._floor() + 1e-12) \
            if spread else 0.0

    def _count_nodes(self, node: _Node) -> int:
        return 1 + sum(self._count_nodes(ch) for ch in node.children.values())
