"""Rate predictors: how a manager scores candidate mappings.

``EstimatorPredictor`` is the paper's path — Q tensor through the learned
multi-task CNN.  ``OraclePredictor`` queries the simulator directly; it
stands in for on-board measurement and is used by the GA baseline (which
evaluates every chromosome on the device) and by search ablations.
"""

from __future__ import annotations

import numpy as np

from ..estimator.model import ThroughputEstimator
from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..mapping.qtensor import build_q_tensor_batch
from ..obs import NULL_RECORDER, Recorder
from ..obs.registry import (
    PREDICT_BATCH_SIZE,
    PREDICT_CALLS,
    PREDICT_MODELED_S,
)
from ..sim.cache import EvaluationCache
from ..vqvae.train import EmbeddingCache
from ..zoo.layers import ModelSpec

__all__ = ["RatePredictor", "EstimatorPredictor", "OraclePredictor"]


class RatePredictor:
    """Interface: per-DNN rate predictions for a batch of mappings.

    ``recorder`` is the telemetry sink scoring metrics flow to
    (:mod:`repro.obs`); it defaults to the no-op
    :data:`~repro.obs.NULL_RECORDER` and is replaced per run by
    :func:`repro.runner.resolve_predictor` when a scenario observes.
    Predictions never depend on it.
    """

    #: Telemetry sink for scoring metrics; no-op unless a run observes.
    recorder: Recorder = NULL_RECORDER

    def predict(self, workload: list[ModelSpec],
                mappings: list[Mapping]) -> np.ndarray:  # pragma: no cover
        """Per-DNN rates, one row per candidate mapping: (B, len(workload))."""
        raise NotImplementedError

    def predict_batch(self, workload: list[ModelSpec],
                      mappings: list[Mapping]) -> np.ndarray:
        """Batched entry point for the search/replan hot paths.

        The base implementation defers to :meth:`predict` (which already
        takes a candidate list); implementations with a genuinely fused
        fast path — stacked Q-tensor assembly, one batched forward pass —
        override this, and the hot callers (MCTS rollout scoring,
        warm-start candidate rosters) call it explicitly.
        """
        return self.predict(workload, mappings)

    @property
    def board_latency_per_eval(self) -> float:
        """Modeled on-device seconds per candidate evaluation (Sec. V-D)."""
        raise NotImplementedError  # pragma: no cover


class EstimatorPredictor(RatePredictor):
    """Predict rates with the trained multi-task estimator.

    Candidate batches are featurized through one fused
    :func:`~repro.mapping.qtensor.build_q_tensor_batch` call and scored by
    a single stacked :meth:`~repro.estimator.ThroughputEstimator.predict_rates`
    forward pass — the estimator-path analogue of the oracle's
    ``simulate_batch`` treatment.  Each *modeled* candidate evaluation
    still costs :attr:`board_latency_per_eval` (0.04 s, the paper's
    learned decision latency) instead of the oracle's full measurement
    window.
    """

    def __init__(self, estimator: ThroughputEstimator,
                 embedder: EmbeddingCache):
        self.estimator = estimator
        self.embedder = embedder

    def predict(self, workload: list[ModelSpec],
                mappings: list[Mapping]) -> np.ndarray:
        """Per-DNN rates for ``mappings``; defers to :meth:`predict_batch`."""
        return self.predict_batch(workload, mappings)

    def predict_batch(self, workload: list[ModelSpec],
                      mappings: list[Mapping]) -> np.ndarray:
        """Fused batch scoring: one stacked Q assembly + one forward pass.

        Bit-compatible with per-mapping Q-tensor assembly (the scalar
        :func:`~repro.mapping.qtensor.build_q_tensor` reference), locked
        by ``tests/property/test_estimator_batch_equivalence.py``.
        """
        cfg = self.estimator.config
        if len(workload) > cfg.max_dnns:
            raise ValueError(
                f"workload of {len(workload)} exceeds estimator capacity "
                f"{cfg.max_dnns}"
            )
        if not mappings:
            return np.zeros((0, len(workload)), dtype=np.float32)
        if self.recorder.enabled:
            self.recorder.count(PREDICT_CALLS)
            self.recorder.observe(PREDICT_BATCH_SIZE, len(mappings))
            self.recorder.count(
                PREDICT_MODELED_S,
                len(mappings) * self.board_latency_per_eval)
        embeddings = self.embedder.for_workload(workload)
        q = build_q_tensor_batch(workload, mappings, embeddings,
                                 cfg.num_components, cfg.max_dnns,
                                 cfg.max_layers).astype(np.float32)
        rates = self.estimator.predict_rates(q)
        return rates[:, : len(workload)]

    @property
    def board_latency_per_eval(self) -> float:
        """One estimator forward pass on the board: the paper's 0.04 s/eval
        learned decision latency (~30 s for the full search budget)."""
        return 0.04


class OraclePredictor(RatePredictor):
    """Measure rates on the (simulated) board itself.

    Candidate batches are solved through one batched fixed-point call and
    memoised in an :class:`~repro.sim.cache.EvaluationCache`, so MCTS
    rollouts and RankMap's relaxation retries never re-solve a mapping the
    search has already visited.  Pass a shared ``cache`` to pool results
    across managers on the same platform.
    """

    def __init__(self, platform: Platform,
                 measurement_window_s: float = 2.0,
                 cache: EvaluationCache | None = None):
        self.platform = platform
        self.measurement_window_s = measurement_window_s
        self.cache = cache if cache is not None else EvaluationCache(platform)
        if self.cache.platform != platform:
            raise ValueError("cache is bound to a different platform")

    def predict(self, workload: list[ModelSpec],
                mappings: list[Mapping]) -> np.ndarray:
        """Measured rates for ``mappings``: one cached batched solve."""
        results = self.cache.simulate(workload, mappings)
        return np.stack([r.rates for r in results])

    @property
    def board_latency_per_eval(self) -> float:
        """Measuring a mapping on the device means running it for a window."""
        return self.measurement_window_s
