"""Rate predictors: how a manager scores candidate mappings.

``EstimatorPredictor`` is the paper's path — Q tensor through the learned
multi-task CNN.  ``OraclePredictor`` queries the simulator directly; it
stands in for on-board measurement and is used by the GA baseline (which
evaluates every chromosome on the device) and by search ablations.
"""

from __future__ import annotations

import numpy as np

from ..estimator.model import ThroughputEstimator
from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..mapping.qtensor import build_q_tensor
from ..sim.cache import EvaluationCache
from ..vqvae.train import EmbeddingCache
from ..zoo.layers import ModelSpec

__all__ = ["RatePredictor", "EstimatorPredictor", "OraclePredictor"]


class RatePredictor:
    """Interface: per-DNN rate predictions for a batch of mappings."""

    def predict(self, workload: list[ModelSpec],
                mappings: list[Mapping]) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    @property
    def board_latency_per_eval(self) -> float:
        """Modeled on-device seconds per candidate evaluation (Sec. V-D)."""
        raise NotImplementedError  # pragma: no cover


class EstimatorPredictor(RatePredictor):
    """Predict rates with the trained multi-task estimator."""

    def __init__(self, estimator: ThroughputEstimator,
                 embedder: EmbeddingCache):
        self.estimator = estimator
        self.embedder = embedder

    def predict(self, workload: list[ModelSpec],
                mappings: list[Mapping]) -> np.ndarray:
        cfg = self.estimator.config
        if len(workload) > cfg.max_dnns:
            raise ValueError(
                f"workload of {len(workload)} exceeds estimator capacity "
                f"{cfg.max_dnns}"
            )
        embeddings = self.embedder.for_workload(workload)
        q = np.stack([
            build_q_tensor(workload, m, embeddings, cfg.num_components,
                           cfg.max_dnns, cfg.max_layers)
            for m in mappings
        ]).astype(np.float32)
        rates = self.estimator.predict_rates(q)
        return rates[:, : len(workload)]

    @property
    def board_latency_per_eval(self) -> float:
        # One estimator forward pass on the board (paper: ~30 s for the
        # full search budget).
        return 0.04


class OraclePredictor(RatePredictor):
    """Measure rates on the (simulated) board itself.

    Candidate batches are solved through one batched fixed-point call and
    memoised in an :class:`~repro.sim.cache.EvaluationCache`, so MCTS
    rollouts and RankMap's relaxation retries never re-solve a mapping the
    search has already visited.  Pass a shared ``cache`` to pool results
    across managers on the same platform.
    """

    def __init__(self, platform: Platform,
                 measurement_window_s: float = 2.0,
                 cache: EvaluationCache | None = None):
        self.platform = platform
        self.measurement_window_s = measurement_window_s
        self.cache = cache if cache is not None else EvaluationCache(platform)
        if self.cache.platform != platform:
            raise ValueError("cache is bound to a different platform")

    def predict(self, workload: list[ModelSpec],
                mappings: list[Mapping]) -> np.ndarray:
        results = self.cache.simulate(workload, mappings)
        return np.stack([r.rates for r in results])

    @property
    def board_latency_per_eval(self) -> float:
        # Measuring a mapping on the device means running it for a window.
        return self.measurement_window_s
