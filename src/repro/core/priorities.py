"""Priority vectors (Sec. IV-B).

* Static: the user pins a high priority on a critical DNN (RankMap_S).
* Dynamic: priorities follow each DNN's computational demand profile
  (RankMap_D) — heavier models need a larger resource share to stay alive,
  which is exactly the Fig. 8 narrative where Inception-ResNet-V1 receives
  the highest dynamic priority.
"""

from __future__ import annotations

import numpy as np

from ..zoo.layers import ModelSpec

__all__ = ["normalize_priorities", "static_priorities", "dynamic_priorities"]


def normalize_priorities(priorities) -> np.ndarray:
    """Scale a non-negative vector to sum to 1."""
    p = np.asarray(priorities, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("priorities must be a non-empty 1-D vector")
    if (p < 0).any():
        raise ValueError("priorities must be non-negative")
    total = p.sum()
    if total <= 0:
        raise ValueError("priorities must not all be zero")
    return p / total


def static_priorities(num_dnns: int, critical_index: int,
                      critical_weight: float = 0.7) -> np.ndarray:
    """The paper's static scheme: one critical DNN, the rest uniform."""
    if not 0 <= critical_index < num_dnns:
        raise ValueError("critical_index out of range")
    if not 0.0 < critical_weight < 1.0:
        raise ValueError("critical_weight must be in (0, 1)")
    if num_dnns == 1:
        return np.ones(1)
    rest = (1.0 - critical_weight) / (num_dnns - 1)
    p = np.full(num_dnns, rest)
    p[critical_index] = critical_weight
    return p


def dynamic_priorities(workload: list[ModelSpec]) -> np.ndarray:
    """Demand-proportional priorities from the layer profiles."""
    if not workload:
        raise ValueError("workload must not be empty")
    demand = np.array([float(m.macs) for m in workload])
    return normalize_priorities(demand)
