"""RankMap: the priority-aware multi-DNN manager (Sec. IV).

``RankMap`` glues the pieces together: VQ-VAE layer embeddings feed the
mapping tensor Q, the multi-task estimator predicts per-DNN throughput for
candidate mappings, and MCTS maximises the priority-weighted reward under
the starvation-threshold disqualification rule.  ``mode="static"`` uses the
user's priority vector (RankMap_S); ``mode="dynamic"`` derives priorities
from each DNN's computational profile (RankMap_D).
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field, replace

import numpy as np

from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..search.mcts import MCTS, MCTSConfig, MCTSStats
from ..search.reward import (
    DISQUALIFIED,
    RewardConfig,
    mapping_reward,
    thresholds_for,
)
from ..sim.dynamic import MappingDecision
from ..zoo.layers import ModelSpec
from .predictor import RatePredictor
from .priorities import dynamic_priorities, normalize_priorities

__all__ = ["Manager", "RankMap", "RankMapConfig"]


def _workload_fingerprint(workload: list[ModelSpec]) -> int:
    """Stable small seed offset per workload (process-independent).

    Search seeds combine this with the relaxation-attempt index, so
    planning is a pure function of (workload, priorities, config) — two
    identical ``plan()`` calls walk the identical search trajectory and a
    shared :class:`~repro.sim.cache.EvaluationCache` answers the repeat
    from memory — while distinct workloads still explore decorrelated
    trajectories.
    """
    return zlib.crc32("|".join(m.name for m in workload).encode()) % 1024


class Manager:
    """Base interface shared by RankMap and every baseline manager."""

    #: Display name used by experiments and reports.
    name: str = "manager"

    def plan(self, workload: list[ModelSpec],
             priorities: np.ndarray | None = None) -> MappingDecision:
        """Produce a mapping (and its modeled decision latency)."""
        raise NotImplementedError  # pragma: no cover

    # Wall-clock of the last plan() call, for the run-time comparison.
    last_wall_seconds: float = 0.0


@dataclass(frozen=True)
class RankMapConfig:
    """RankMap hyper-parameters.

    When ``reward`` is left as None it is resolved per mode: static mode
    weights *potentials* (user prioritisation is about each DNN's share of
    its own ideal performance), dynamic mode weights raw rates — with
    demand-proportional priorities that objective is the workload's
    delivered MACs/s, which is why RankMap_D tops the throughput charts
    while the threshold guard still prevents starvation.
    """

    mode: str = "dynamic"                  # "static" (S) or "dynamic" (D)
    mcts: MCTSConfig = field(default_factory=MCTSConfig)
    reward: RewardConfig | None = None
    # When nothing clears the starvation threshold, relax it and retry.
    threshold_relaxations: int = 2
    relaxation_factor: float = 0.5
    # Deployment hardening: re-measure the top-k candidate mappings on the
    # board (one measurement window each) and deploy the best *actual*
    # reward.  Protects the no-starvation guarantee against estimator
    # error; 0 disables (the paper's pure estimator-trusting flow).
    board_validation_top_k: int = 0
    board_measurement_window_s: float = 2.0

    def __post_init__(self):
        if self.mode not in ("static", "dynamic"):
            raise ValueError(f"unknown RankMap mode {self.mode!r}")

    def resolved_reward(self) -> RewardConfig:
        """The effective reward configuration: explicit, or per mode."""
        if self.reward is not None:
            return self.reward
        if self.mode == "static":
            # Weighted potentials: the search actively pushes the user's
            # critical DNN toward its ideal rate (Fig. 6 / Fig. 10 shape)
            # instead of merely clearing a floor.  The flat base threshold
            # keeps the starvation guard.
            return RewardConfig(kind="weighted", normalize_by_ideal=True)
        # Dynamic mode: the paper's literal Sec. IV-E objective on raw
        # rates.  With demand-proportional priorities this maximises the
        # workload's delivered MACs/s, which keeps heavy DNNs' P tracking
        # their priority (Fig. 9) at a small mean-rate cost; the floor
        # kind remains available via an explicit RewardConfig.
        return RewardConfig(kind="weighted", normalize_by_ideal=False)


class RankMap(Manager):
    """Priority-aware multi-DNN manager for heterogeneous platforms."""

    def __init__(self, platform: Platform, predictor: RatePredictor,
                 config: RankMapConfig | None = None):
        config = config if config is not None else RankMapConfig()
        self.platform = platform
        self.predictor = predictor
        self.config = config
        self.name = "rankmap_s" if config.mode == "static" else "rankmap_d"
        self.last_stats: MCTSStats | None = None
        self.last_priorities: np.ndarray | None = None

    # ------------------------------------------------------------------
    def plan(self, workload: list[ModelSpec],
             priorities: np.ndarray | None = None) -> MappingDecision:
        """Search a mapping for ``workload`` (Sec. IV flow).

        Resolves priorities and starvation thresholds, runs MCTS through
        the configured predictor, relaxes the floors under saturation,
        optionally re-measures the top-k candidates on the board, and
        returns the decided :class:`Mapping` with its modeled on-board
        decision latency.
        """
        t0 = time.perf_counter()
        if not workload:
            raise ValueError("workload must not be empty")
        p = self._resolve_priorities(workload, priorities)
        self.last_priorities = p

        reward_cfg = self.config.resolved_reward()
        thresholds = thresholds_for(workload, self.platform, reward_cfg, p)
        ideals = (np.array([self.platform.ideal_throughput(m)
                            for m in workload])
                  if reward_cfg.normalize_by_ideal else None)
        mapping, stats = self._search(workload, p, thresholds, ideals,
                                      reward_cfg.kind, attempt=0)

        # Under saturation, relax the floors — but never below the
        # starvation line itself, so a qualifying mapping always keeps
        # every DNN observably alive.
        from ..metrics.starvation import STARVATION_EPSILON

        all_ideals = np.array([self.platform.ideal_throughput(m)
                               for m in workload])
        floor_min = (STARVATION_EPSILON * 1.2) * all_ideals
        relax = self.config.relaxation_factor
        attempts = 0
        while (stats.best_reward <= DISQUALIFIED
               and attempts < self.config.threshold_relaxations):
            attempts += 1
            thresholds = np.maximum(thresholds * relax, floor_min)
            mapping, stats = self._search(workload, p, thresholds, ideals,
                                          reward_cfg.kind, attempt=attempts)

        modeled = stats.evaluations * self.predictor.board_latency_per_eval
        k = self.config.board_validation_top_k
        if k > 0 and stats.top_candidates:
            mapping, validated = self._validate_on_board(
                workload, stats.top_candidates[:k], p, thresholds, ideals,
                reward_cfg.kind, fallback=mapping)
            modeled += validated * self.config.board_measurement_window_s

        self.last_stats = stats
        self.last_wall_seconds = time.perf_counter() - t0
        return MappingDecision(mapping, decision_seconds=modeled)

    def _validate_on_board(self, workload, candidates, p, thresholds,
                           ideals, kind, fallback) -> tuple[Mapping, int]:
        """Re-measure candidate mappings on the board; deploy the best.

        If every candidate *measures* disqualified (a saturated platform
        where even relaxed floors are infeasible), deploy the candidate
        whose worst rate-to-threshold margin is largest — the least
        starvation-prone option on the table — instead of blindly trusting
        the estimator's pick.
        """
        from ..sim.engine import simulate_batch

        best_mapping = fallback
        best_reward = DISQUALIFIED
        best_margin = -np.inf
        margin_mapping = fallback
        mappings = [candidate for _, candidate in candidates]
        measured = simulate_batch(workload, mappings, self.platform)
        for candidate, result in zip(mappings, measured):
            reward = mapping_reward(result.rates, p, thresholds, ideals,
                                    kind)
            if reward > best_reward:
                best_reward = reward
                best_mapping = candidate
            margin = float(
                (result.rates / np.maximum(thresholds, 1e-12)).min())
            if margin > best_margin:
                best_margin = margin
                margin_mapping = candidate
        if best_reward <= DISQUALIFIED:
            best_mapping = margin_mapping
        return best_mapping, len(candidates)

    # ------------------------------------------------------------------
    def _resolve_priorities(self, workload: list[ModelSpec],
                            priorities: np.ndarray | None) -> np.ndarray:
        if self.config.mode == "dynamic":
            return dynamic_priorities(workload)
        if priorities is None:
            raise ValueError("static mode requires a user priority vector")
        p = normalize_priorities(priorities)
        if p.size != len(workload):
            raise ValueError("priority vector must match workload size")
        return p

    def _search(self, workload: list[ModelSpec], p: np.ndarray,
                thresholds: np.ndarray, ideals: np.ndarray | None,
                kind: str, attempt: int = 0) -> tuple[Mapping, MCTSStats]:
        def evaluate(mappings: list[Mapping]) -> np.ndarray:
            rates = self.predictor.predict_batch(workload, mappings)
            return np.array([
                mapping_reward(row, p, thresholds, ideals, kind)
                for row in rates
            ])

        # Seed per (workload, relaxation attempt) — never per plan() call —
        # so repeated plans replay the same trajectory (see
        # _workload_fingerprint) while retries explore fresh ones.
        cfg = replace(self.config.mcts,
                      seed=(self.config.mcts.seed + 1 + attempt
                            + _workload_fingerprint(workload)))
        search = MCTS(workload, self.platform.num_components, evaluate, cfg)
        return search.search()
