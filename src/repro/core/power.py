"""Power-aware RankMap (extension; see DESIGN.md §6).

``PowerAwareRankMap`` keeps the paper's machinery — estimator-scored MCTS,
priority weighting, starvation disqualification — and folds an estimated
board power draw into the reward, the co-optimisation the authors pursue
in their MapFormer follow-up (reference [2] of the paper).

Per-candidate power is estimated analytically: stage service demands come
from the same layer-latency model every manager profiles with, utilisation
per component is (predicted rate x interference-inflated demand) summed
over resident stages — the exact busy computation
:func:`repro.hw.energy.energy_report` measures with, so search-time watts
and board-validated watts price contention identically — and the platform
power model converts utilisations to watts.  Two objectives are offered:

* ``"penalty"`` — ``reward - power_weight · watts``: a soft power cap
  whose weight dials the throughput/power trade-off.
* ``"efficiency"`` — ``reward / watts``: maximise inferences per joule.

Both keep the starvation guard: disqualified mappings stay disqualified no
matter how little power they would draw.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..hw.energy import (
    EnergyReport,
    PlatformPower,
    energy_report,
    inflated_component_utilisation,
)
from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..search.mcts import MCTS, MCTSConfig, MCTSStats
from ..search.reward import DISQUALIFIED, mapping_reward
from ..sim.demands import compute_stage_demands
from ..zoo.layers import ModelSpec
from .manager import _workload_fingerprint
from .manager import RankMap, RankMapConfig
from .predictor import RatePredictor

__all__ = ["PowerAwareRankMap"]


class PowerAwareRankMap(RankMap):
    """RankMap with power folded into the search objective."""

    def __init__(self, platform: Platform, predictor: RatePredictor,
                 power: PlatformPower,
                 config: RankMapConfig | None = None,
                 objective: str = "penalty",
                 power_weight: float = 0.5):
        if objective not in ("penalty", "efficiency"):
            raise ValueError(f"unknown power objective {objective!r}")
        if power_weight < 0:
            raise ValueError("power_weight must be non-negative")
        if not power.matches(platform):
            raise ValueError("power model does not match platform components")
        super().__init__(platform, predictor, config)
        self.power = power
        self.objective = objective
        self.power_weight = power_weight
        self.name = f"rankmap_p_{objective}"

    # ------------------------------------------------------------------
    def estimated_utilisation(self, workload: list[ModelSpec],
                              mapping: Mapping,
                              rates: np.ndarray) -> np.ndarray:
        """Raw per-component utilisation at predicted rates, unclipped.

        Delegates to the same interference-inflated busy computation
        :func:`repro.hw.energy.energy_report` measures with, so the
        search scores candidates against the power landscape board
        validation will confirm.  Predicted rates are not
        feasibility-constrained, so values above 1.0 (oversubscription)
        are possible — ``estimated_watts`` clips them before pricing.
        """
        demands = compute_stage_demands(workload, mapping, self.platform)
        return inflated_component_utilisation(demands, rates, self.platform)

    def estimated_watts(self, workload: list[ModelSpec], mapping: Mapping,
                        rates: np.ndarray) -> float:
        """Analytical board draw estimate for one candidate mapping."""
        util = self.estimated_utilisation(workload, mapping, rates)
        return self.power.system_watts(np.clip(util, 0.0, 1.0))

    def measured_energy(self, workload: list[ModelSpec],
                        mapping: Mapping) -> EnergyReport:
        """Ground-truth (simulated-board) energy report for a mapping."""
        return energy_report(workload, mapping, self.platform, self.power)

    def _validate_on_board(self, workload, candidates, p, thresholds,
                           ideals, kind, fallback) -> tuple[Mapping, int]:
        """Board validation scores candidates with *measured* power.

        Mirrors the base class's saturation behaviour: if every candidate
        measures disqualified, deploy the one with the largest worst-case
        rate-to-threshold margin — starvation avoidance outranks power.
        """
        best_mapping = fallback
        best_reward = DISQUALIFIED
        best_margin = -np.inf
        margin_mapping = fallback
        for _, candidate in candidates:
            report = self.measured_energy(workload, candidate)
            reward = mapping_reward(report.rates, p, thresholds, ideals,
                                    kind)
            if reward > DISQUALIFIED:
                if self.objective == "penalty":
                    reward -= self.power_weight * report.system_watts
                else:
                    reward /= max(report.system_watts, 1e-9)
            if reward > best_reward:
                best_reward = reward
                best_mapping = candidate
            margin = float(
                (report.rates / np.maximum(thresholds, 1e-12)).min())
            if margin > best_margin:
                best_margin = margin
                margin_mapping = candidate
        if best_reward <= DISQUALIFIED:
            best_mapping = margin_mapping
        return best_mapping, len(candidates)

    # ------------------------------------------------------------------
    def _search(self, workload: list[ModelSpec], p: np.ndarray,
                thresholds: np.ndarray, ideals: np.ndarray | None,
                kind: str, attempt: int = 0) -> tuple[Mapping, MCTSStats]:
        def evaluate(mappings: list[Mapping]) -> np.ndarray:
            rates = self.predictor.predict_batch(workload, mappings)
            rewards = np.empty(len(mappings))
            for i, (mapping, row) in enumerate(zip(mappings, rates)):
                base = mapping_reward(row, p, thresholds, ideals, kind)
                if base <= DISQUALIFIED:
                    rewards[i] = base
                    continue
                watts = self.estimated_watts(workload, mapping, row)
                if self.objective == "penalty":
                    rewards[i] = base - self.power_weight * watts
                else:
                    rewards[i] = base / max(watts, 1e-9)
            return rewards

        cfg = replace(self.config.mcts,
                      seed=(self.config.mcts.seed + 1 + attempt
                            + _workload_fingerprint(workload)))
        search = MCTS(workload, self.platform.num_components, evaluate, cfg)
        return search.search()
