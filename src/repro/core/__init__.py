"""RankMap core: the priority-aware manager and its building blocks."""

from .manager import Manager, RankMap, RankMapConfig
from .power import PowerAwareRankMap
from .predictor import EstimatorPredictor, OraclePredictor, RatePredictor
from .priorities import (
    dynamic_priorities,
    normalize_priorities,
    static_priorities,
)

__all__ = [
    "Manager",
    "RankMap",
    "RankMapConfig",
    "PowerAwareRankMap",
    "EstimatorPredictor",
    "OraclePredictor",
    "RatePredictor",
    "dynamic_priorities",
    "normalize_priorities",
    "static_priorities",
]
