"""Evaluation metrics: T, P, starvation, priority correlation."""

from .correlation import pearson_r
from .starvation import (
    STARVATION_EPSILON,
    any_starved,
    count_starved,
    starved_mask,
)
from .throughput import (
    average_throughput,
    baseline_result,
    normalized_throughput,
    potential_throughput,
)

__all__ = [
    "pearson_r",
    "STARVATION_EPSILON",
    "any_starved",
    "count_starved",
    "starved_mask",
    "average_throughput",
    "baseline_result",
    "normalized_throughput",
    "potential_throughput",
]
