"""The paper's evaluation metrics (Sec. II / Sec. V).

* Normalised throughput ``T``: mean per-DNN inferences/s of a mapping,
  normalised by the all-on-GPU baseline's mean.
* Potential throughput ``P``: each DNN's rate divided by its GPU-solo
  ("ideal") rate.
"""

from __future__ import annotations

import numpy as np

from ..hw.platform import Platform
from ..mapping.mapping import gpu_only_mapping
from ..sim.engine import SimResult, simulate
from ..zoo.layers import ModelSpec

__all__ = [
    "average_throughput",
    "normalized_throughput",
    "potential_throughput",
    "baseline_result",
]


def average_throughput(result: SimResult) -> float:
    """Paper's T (un-normalised): mean per-DNN inferences/s."""
    return result.average_throughput


def baseline_result(workload: list[ModelSpec], platform: Platform) -> SimResult:
    """Simulate the paper's baseline: every DNN whole on the GPU."""
    return simulate(workload, gpu_only_mapping(workload), platform)


def normalized_throughput(result: SimResult, baseline: SimResult) -> float:
    """T normalised by the all-on-GPU baseline."""
    if baseline.average_throughput <= 0:
        raise ValueError("baseline throughput must be positive")
    return result.average_throughput / baseline.average_throughput


def potential_throughput(result: SimResult) -> np.ndarray:
    """Per-DNN potential P = t_current / t_ideal."""
    return result.potentials
