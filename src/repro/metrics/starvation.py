"""Starvation detection.

The paper declares a DNN starved when its measured potential throughput P
is 0 — i.e. it makes no observable progress on the board over the
observation window.  The analytical solver returns exact positive rates, so
we use the documented resolution threshold ``STARVATION_EPSILON``: a DNN
with P below 2 % of its ideal throughput would render as the zero bin of
the paper's Fig. 7 histogram.
"""

from __future__ import annotations

import numpy as np

from ..sim.engine import SimResult

__all__ = ["STARVATION_EPSILON", "starved_mask", "count_starved", "any_starved"]

#: P below this fraction of ideal counts as starved (measurement resolution).
STARVATION_EPSILON = 0.02


def starved_mask(result: SimResult,
                 epsilon: float = STARVATION_EPSILON) -> np.ndarray:
    """Boolean mask of starved DNNs in ``result``."""
    return result.potentials < epsilon


def count_starved(result: SimResult,
                  epsilon: float = STARVATION_EPSILON) -> int:
    """Number of starved DNNs in ``result``."""
    return int(starved_mask(result, epsilon).sum())


def any_starved(result: SimResult,
                epsilon: float = STARVATION_EPSILON) -> bool:
    """True when at least one DNN in ``result`` is starved."""
    return bool(starved_mask(result, epsilon).any())
