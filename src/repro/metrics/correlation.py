"""Priority/performance correlation (the paper's Fig. 9 metric)."""

from __future__ import annotations

import numpy as np

__all__ = ["pearson_r"]


def pearson_r(x, y) -> float:
    """Pearson correlation coefficient r in [-1, 1].

    Returns 0.0 for degenerate inputs (constant vectors), which is how a
    flat potential profile should score against any priority vector.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("pearson_r needs two equal-length 1-D vectors")
    if x.size < 2:
        raise ValueError("pearson_r needs at least two points")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc**2).sum() * (yc**2).sum())
    if denom == 0:
        return 0.0
    return float((xc * yc).sum() / denom)
