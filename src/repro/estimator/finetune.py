"""Online estimator fine-tuning from realized telemetry segments.

RankMap's estimator is trained once on *sampled* workloads, but the
paper's own methodology is measure-and-retrain: the traffic a deployment
actually serves drifts away from the sampling distribution, and the
estimator's accuracy — which OmniBoost shows *is* the serving quality —
drifts with it.  This module closes that loop (ROADMAP: closed-loop
adaptive control).  The observability layer already emits exactly the
training rows the estimator consumes: every
:func:`~repro.obs.export_segments` record is one realized
``(workload, mapping, rates)`` triple.

The pipeline is three pieces, each deterministic by construction:

* :class:`FinetuneBuffer` — ingests segment rows from any number of
  :class:`~repro.runner.DynamicResult` / fleet telemetry snapshots,
  dedups them by segment key, and bounds memory with a deterministic
  reservoir.  Its :meth:`~FinetuneBuffer.rows` output depends only on
  the *set* of segments seen, never on ingestion order or how many
  workers produced them — the property the test suite pins.
* :func:`finetune` — a warm-start training pass over the buffered rows,
  seeded and order-canonicalised so the same rows always yield
  bit-identical weights.
* :func:`refresh_artifact` — loads the newest artifact generation,
  fine-tunes it, and writes the next ``<stem>.gen<N><suffix>`` sibling
  as a version-2 artifact whose :class:`~repro.estimator.ArtifactLineage`
  records the parent file hash, the segment count, and the generation
  number.  ``resolve_predictor`` then prefers the newest compatible
  generation automatically.

Durations are merged with ``max`` (commutative and associative, so
order-invariant) and are *not* used as loss weights — a segment is one
observation of a mapping's realized rates regardless of how long it ran.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping as MappingABC

import numpy as np

from ..autodiff import Tensor, optim
from ..hw.platform import Platform
from ..mapping import Mapping
from ..obs.recorder import SegmentUsage
from .artifact import (
    ArtifactLineage,
    EstimatorArtifact,
    artifact_generation_candidates,
    artifact_generation_path,
    artifact_hash,
    load_estimator_artifact,
    save_estimator_artifact,
)
from .dataset import EstimatorDataset, EstimatorSample
from .model import EstimatorConfig
from .train import _masked_mse, _shuffle_channels

__all__ = [
    "FinetuneBuffer",
    "FinetuneConfig",
    "FinetuneReport",
    "segment_rows_to_samples",
    "finetune",
    "refresh_artifact",
]

#: Segment-key type: (workload names, assignment rows, realized rates).
_SegmentKey = tuple[tuple[str, ...], tuple[tuple[int, ...], ...],
                    tuple[float, ...]]


def _segment_key(row: MappingABC | SegmentUsage) -> tuple[_SegmentKey, float]:
    """Canonical ``(key, duration_s)`` of one segment row.

    Accepts both the plain dicts :func:`~repro.obs.export_segments`
    emits and raw :class:`~repro.obs.SegmentUsage` records, so callers
    can feed either a JSONL trace or a live snapshot.
    """
    if isinstance(row, SegmentUsage):
        workload, assignments, rates = row.workload, row.assignments, row.rates
        duration = row.duration_s
    else:
        try:
            workload = row["workload"]
            assignments = row["assignments"]
            rates = row["rates"]
            duration = row["duration_s"]
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed segment row {row!r}") from exc
    key = (tuple(str(name) for name in workload),
           tuple(tuple(int(c) for c in assignment)
                 for assignment in assignments),
           tuple(float(rate) for rate in rates))
    if len(key[0]) != len(key[1]) or len(key[0]) != len(key[2]):
        raise ValueError(
            f"segment row has {len(key[0])} workload names, "
            f"{len(key[1])} assignment rows and {len(key[2])} rates; "
            f"all three must align")
    return key, float(duration)


def _key_digest(key: _SegmentKey) -> str:
    """Deterministic uniform tag of a segment key for reservoir sampling.

    SHA-256 over the canonical ``repr`` — stable across processes and
    Python hash randomization, unlike the builtin ``hash``.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class FinetuneBuffer:
    """An order-invariant, bounded pool of distinct telemetry segments.

    Ingest :func:`~repro.obs.export_segments` rows (or raw
    :class:`~repro.obs.SegmentUsage` records) from any number of
    snapshots in any order; :meth:`rows` always returns the same
    key-sorted canonical rows for the same segment *set*.  When more
    than ``max_rows`` distinct segments arrive, the buffer keeps the
    ``max_rows`` keys with the smallest SHA-256 digests — a
    deterministic uniform subsample that is itself independent of
    arrival order, so two runs that observed the same traffic through
    different worker counts fine-tune on identical rows.
    """

    def __init__(self, max_rows: int = 4096):
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        self.max_rows = max_rows
        self._segments: dict[_SegmentKey, float] = {}
        self._seen = 0

    def __len__(self) -> int:
        return len(self._segments)

    @property
    def seen(self) -> int:
        """Distinct segment keys ever ingested (kept or reservoir-dropped)."""
        return self._seen

    @property
    def dropped(self) -> int:
        """Distinct segments the reservoir bound has evicted."""
        return self._seen - len(self._segments)

    def ingest(self, rows: Iterable[MappingABC | SegmentUsage]) -> int:
        """Add segment rows; returns how many were new distinct segments.

        Duplicate keys merge their ``duration_s`` with ``max`` — the
        recorder already accumulates per-snapshot, so a repeat of the
        same key across snapshots is the same segment observed again,
        not extra service time to sum (summing would make the merged
        value depend on how the trace was sharded across workers).
        """
        new = 0
        for row in rows:
            key, duration = _segment_key(row)
            if key in self._segments:
                self._segments[key] = max(self._segments[key], duration)
                continue
            self._seen += 1
            new += 1
            self._segments[key] = duration
            if len(self._segments) > self.max_rows:
                evict = max(self._segments, key=_key_digest)
                del self._segments[evict]
        return new

    def rows(self) -> list[dict]:
        """The buffered segments as canonical sorted plain-dict rows.

        Sorted by segment key, so the output is a pure function of the
        segment set — the contract :func:`finetune` relies on.
        """
        return [{
            "workload": list(key[0]),
            "assignments": [list(row) for row in key[1]],
            "rates": list(key[2]),
            "duration_s": self._segments[key],
        } for key in sorted(self._segments)]


@dataclass(frozen=True)
class FinetuneConfig:
    """Hyper-parameters for a warm-start fine-tuning pass.

    Deliberately gentler than :class:`~repro.estimator.EstimatorTrainConfig`:
    few epochs at a small constant learning rate, because the pass
    adjusts trained weights toward observed traffic rather than learning
    from scratch.
    """

    epochs: int = 4
    batch_size: int = 16
    lr: float = 2e-4
    grad_clip: float = 5.0
    channel_shuffle: bool = True
    seed: int = 0


@dataclass
class FinetuneReport:
    """What a fine-tuning pass consumed and how the loss moved."""

    rows: int = 0
    steps: int = 0
    train_loss: list[float] = field(default_factory=list)


def segment_rows_to_samples(rows: Iterable[MappingABC | SegmentUsage],
                            config: EstimatorConfig
                            ) -> list[EstimatorSample]:
    """Canonicalise segment rows into sorted, deduped estimator samples.

    Validates each row against the estimator shapes: more DNNs than
    ``config.max_dnns`` cannot be featurized into a Q tensor and raises
    ``ValueError`` (unknown model names surface later as the zoo's
    ``KeyError`` when the batch is assembled).
    """
    keys: set[_SegmentKey] = set()
    for row in rows:
        key, _ = _segment_key(row)
        if len(key[0]) > config.max_dnns:
            raise ValueError(
                f"segment with {len(key[0])} DNNs exceeds the estimator's "
                f"max_dnns={config.max_dnns}; cannot featurize "
                f"{list(key[0])}")
        keys.add(key)
    return [EstimatorSample(names=key[0],
                            mapping=Mapping(key[1]),
                            rates=key[2])
            for key in sorted(keys)]


def finetune(artifact: EstimatorArtifact,
             rows: Iterable[MappingABC | SegmentUsage],
             config: FinetuneConfig | None = None) -> FinetuneReport:
    """Warm-start-train ``artifact.estimator`` in place on segment rows.

    The rows are canonicalised (sorted, deduped) before batching and the
    batch order comes from a generator seeded by ``config.seed``, so the
    same segment set always produces bit-identical weights regardless of
    row order.  Zero rows is a no-op: the report shows 0 steps and the
    weights are untouched.  The estimator is left in ``eval`` mode.
    """
    config = config if config is not None else FinetuneConfig()
    samples = segment_rows_to_samples(rows, artifact.config)
    report = FinetuneReport(rows=len(samples))
    if not samples:
        return report
    dataset = EstimatorDataset(samples, artifact.config)
    model = artifact.estimator
    rng = np.random.default_rng(config.seed)
    optimizer = optim.Adam(model.parameters(), lr=config.lr)
    n = len(dataset)
    try:
        for _ in range(config.epochs):
            model.train()
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, config.batch_size):
                idx = order[start : start + config.batch_size]
                q, y, mask = dataset.build_batch(idx, artifact.embedder)
                if config.channel_shuffle:
                    _shuffle_channels(q, y, mask, rng)
                optimizer.zero_grad()
                pred = model(Tensor(q))
                loss = _masked_mse(pred, y, mask)
                loss.backward()
                optim.clip_grad_norm(model.parameters(), config.grad_clip)
                optimizer.step()
                epoch_loss += float(loss.data)
                n_batches += 1
                report.steps += 1
            report.train_loss.append(epoch_loss / max(1, n_batches))
    finally:
        model.eval()
    return report


def refresh_artifact(base_path: str | Path,
                     rows: Iterable[MappingABC | SegmentUsage],
                     platform: Platform,
                     config: FinetuneConfig | None = None
                     ) -> tuple[Path, FinetuneReport]:
    """Fine-tune the newest generation of ``base_path`` and persist it.

    Loads the newest existing generation of the artifact family (the
    base file when no fine-tuned sibling exists), runs :func:`finetune`
    on ``rows``, and writes the next generation as a v2 artifact whose
    lineage records the parent file's SHA-256, the distinct-segment
    count, and the new generation number.  Returns the written path and
    the training report.

    A platform mismatch or corrupt parent raises here rather than
    falling back — fine-tuning the wrong board's weights would poison
    every later generation, so the refresh path has no oracle downgrade.
    The stored ``val_l2`` / ``val_spearman`` are carried over from the
    parent: they describe the base training run's held-out quality, not
    the fine-tuned weights.
    """
    base_path = Path(base_path)
    candidates = artifact_generation_candidates(base_path)
    parent_path = next((p for p in candidates if p.exists()), None)
    if parent_path is None:
        raise FileNotFoundError(
            f"no estimator artifact found for {base_path}")
    artifact = load_estimator_artifact(parent_path, platform)
    parent_hash = artifact_hash(parent_path)
    report = finetune(artifact, rows, config)
    generation = artifact.lineage.finetune_epoch + 1
    out_path = artifact_generation_path(_family_base(base_path), generation)
    lineage = ArtifactLineage(parent_hash=parent_hash,
                              segment_count=report.rows,
                              finetune_epoch=generation)
    save_estimator_artifact(out_path, artifact.estimator, artifact.vqvae,
                            platform, val_l2=artifact.val_l2,
                            val_spearman=artifact.val_spearman,
                            lineage=lineage)
    return out_path, report


def _family_base(path: Path) -> Path:
    """The family base path of ``path`` (strips a ``.genN`` stem suffix)."""
    match = re.match(r"^(?P<base>.+)\.gen[1-9]\d*$", path.stem)
    if match:
        return path.with_name(match.group("base") + path.suffix)
    return path
