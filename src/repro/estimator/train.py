"""Estimator training loop with the paper's channel-shuffle augmentation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Tensor, optim
from ..vqvae.train import EmbeddingCache
from .dataset import EstimatorDataset
from .metrics import l2_loss, spearman_r
from .model import ThroughputEstimator

__all__ = ["EstimatorTrainConfig", "TrainReport", "train_estimator",
           "evaluate_estimator"]


@dataclass(frozen=True)
class EstimatorTrainConfig:
    """Hyper-parameters for estimator training."""

    epochs: int = 10
    batch_size: int = 24
    lr: float = 1.5e-3
    lr_min: float = 2e-4          # cosine-decayed floor
    val_fraction: float = 0.1     # paper: 10 % held out for feedback
    channel_shuffle: bool = True  # paper's augmentation step
    grad_clip: float = 5.0
    seed: int = 0


@dataclass
class TrainReport:
    """Loss trajectory and final validation quality."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_spearman: float = 0.0

    @property
    def final_val_loss(self) -> float:
        """Validation L2 after the last epoch (NaN before any epoch)."""
        return self.val_loss[-1] if self.val_loss else float("nan")


def _shuffle_channels(q: np.ndarray, y: np.ndarray, mask: np.ndarray,
                      rng: np.random.Generator) -> None:
    """Permute the DNN channel slots of each sample in place.

    The decoder streams are slot-symmetric; shuffling teaches exactly that
    and is the augmentation the paper credits with halving the L2 loss.
    """
    for row in range(q.shape[0]):
        perm = rng.permutation(q.shape[1])
        q[row] = q[row, perm]
        y[row] = y[row, perm]
        mask[row] = mask[row, perm]


def _masked_mse(pred: Tensor, y: np.ndarray, mask: np.ndarray) -> Tensor:
    diff = pred - Tensor(y)
    masked = diff * Tensor(mask)
    return (masked * masked).sum() * (1.0 / max(mask.sum(), 1.0))


def train_estimator(model: ThroughputEstimator, dataset: EstimatorDataset,
                    embedder: EmbeddingCache,
                    config: EstimatorTrainConfig | None = None
                    ) -> TrainReport:
    """Train ``model`` on ``dataset``; returns the loss trajectory."""
    config = config if config is not None else EstimatorTrainConfig()
    rng = np.random.default_rng(config.seed)
    train_set, val_set = dataset.split(config.val_fraction, rng)
    optimizer = optim.Adam(model.parameters(), lr=config.lr)
    n = len(train_set)
    steps = max(1, (n + config.batch_size - 1) // config.batch_size)
    schedule = optim.CosineSchedule(optimizer, config.lr, config.lr_min,
                                    steps * config.epochs)
    report = TrainReport()
    for _ in range(config.epochs):
        model.train()
        order = rng.permutation(n)
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start : start + config.batch_size]
            q, y, mask = train_set.build_batch(idx, embedder)
            if config.channel_shuffle:
                _shuffle_channels(q, y, mask, rng)
            optimizer.zero_grad()
            pred = model(Tensor(q))
            loss = _masked_mse(pred, y, mask)
            loss.backward()
            optim.clip_grad_norm(model.parameters(), config.grad_clip)
            schedule.step()
            optimizer.step()
            epoch_loss += float(loss.data)
            n_batches += 1
        report.train_loss.append(epoch_loss / max(1, n_batches))
        val_l2, _ = evaluate_estimator(model, val_set, embedder)
        report.val_loss.append(val_l2)

    _, report.val_spearman = evaluate_estimator(model, val_set, embedder)
    return report


def evaluate_estimator(model: ThroughputEstimator, dataset: EstimatorDataset,
                       embedder: EmbeddingCache,
                       batch_size: int = 32) -> tuple[float, float]:
    """(masked L2 on log1p rates, Spearman rank correlation) on ``dataset``."""
    preds, targets, masks = [], [], []
    for start in range(0, len(dataset), batch_size):
        idx = range(start, min(start + batch_size, len(dataset)))
        q, y, mask = dataset.build_batch(list(idx), embedder)
        preds.append(model.predict_log_rates(q))
        targets.append(y)
        masks.append(mask)
    pred = np.concatenate(preds)
    y = np.concatenate(targets)
    mask = np.concatenate(masks)
    l2 = l2_loss(pred, y, mask)
    active = mask.astype(bool)
    rho = spearman_r(pred[active], y[active])
    return l2, rho
