"""Estimator training data (Sec. V).

The paper collects 10 K workloads of up to 5 concurrent DNNs drawn from the
23-model pool, randomly partitions and maps each, executes them on the
board, and records every DNN's inferences/s.  Here the oracle is the
execution simulator; everything else (sampling scheme, Q-tensor encoding,
train/validation split) matches the paper's description.

Samples store only (names, mapping, rates); Q tensors are assembled on
demand from cached VQ-VAE embeddings, keeping a 10 K-sample dataset small.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.platform import Platform
from ..mapping import (
    Mapping,
    build_q_tensor,
    random_partition_mapping,
    uniform_block_mapping,
)
from ..sim import simulate
from ..vqvae.train import EmbeddingCache
from ..zoo.registry import MODEL_POOL, get_model
from .model import EstimatorConfig

__all__ = ["EstimatorSample", "EstimatorDataset", "generate_dataset"]


@dataclass(frozen=True)
class EstimatorSample:
    """One executed workload: mapping plus measured per-DNN rates."""

    names: tuple[str, ...]
    mapping: Mapping
    rates: tuple[float, ...]


@dataclass
class EstimatorDataset:
    """A collection of executed workloads with Q-tensor assembly."""

    samples: list[EstimatorSample]
    config: EstimatorConfig

    def __len__(self) -> int:
        return len(self.samples)

    def split(self, val_fraction: float, rng: np.random.Generator
              ) -> tuple["EstimatorDataset", "EstimatorDataset"]:
        """Shuffled train/validation split (paper: 90 % / 10 %)."""
        if not 0.0 < val_fraction < 1.0:
            raise ValueError("val_fraction must be in (0, 1)")
        order = rng.permutation(len(self.samples))
        n_val = max(1, int(len(self.samples) * val_fraction))
        val_idx = set(order[:n_val].tolist())
        train = [s for i, s in enumerate(self.samples) if i not in val_idx]
        val = [s for i, s in enumerate(self.samples) if i in val_idx]
        return (EstimatorDataset(train, self.config),
                EstimatorDataset(val, self.config))

    def build_batch(self, indices, embedder: EmbeddingCache
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Assemble (Q, targets, mask) for ``indices``.

        Q is (B, max_dnns, max_layers, width); targets are log1p(rates)
        padded to ``max_dnns``; mask flags real DNN slots.
        """
        cfg = self.config
        b = len(indices)
        q = np.zeros((b, cfg.max_dnns, cfg.max_layers, cfg.width),
                     dtype=np.float32)
        y = np.zeros((b, cfg.max_dnns), dtype=np.float32)
        mask = np.zeros((b, cfg.max_dnns), dtype=np.float32)
        for row, idx in enumerate(indices):
            sample = self.samples[idx]
            workload = [get_model(n) for n in sample.names]
            embeddings = embedder.for_workload(workload)
            q[row] = build_q_tensor(
                workload, sample.mapping, embeddings, cfg.num_components,
                cfg.max_dnns, cfg.max_layers,
            )
            k = len(sample.names)
            y[row, :k] = np.log1p(sample.rates)
            mask[row, :k] = 1.0
        return q, y, mask


def generate_dataset(platform: Platform, rng: np.random.Generator,
                     n_samples: int,
                     config: EstimatorConfig | None = None,
                     pool: tuple[str, ...] = MODEL_POOL,
                     min_dnns: int = 1) -> EstimatorDataset:
    """Sample, map and "execute" ``n_samples`` random workloads.

    Mappings alternate between the paper's random-partition scheme and
    fully uniform per-block assignments so the estimator sees both the
    coarse and the fine-grained regions MCTS rollouts will visit.
    """
    config = config if config is not None else EstimatorConfig()
    if not 1 <= min_dnns <= config.max_dnns:
        raise ValueError("min_dnns out of range")
    samples: list[EstimatorSample] = []
    for i in range(n_samples):
        k = int(rng.integers(min_dnns, config.max_dnns + 1))
        names = tuple(rng.choice(pool, size=k, replace=False).tolist())
        workload = [get_model(n) for n in names]
        if i % 2 == 0:
            mapping = random_partition_mapping(
                workload, config.num_components, rng)
        else:
            mapping = uniform_block_mapping(
                workload, config.num_components, rng)
        result = simulate(workload, mapping, platform)
        samples.append(EstimatorSample(
            names=names, mapping=mapping,
            rates=tuple(float(r) for r in result.rates),
        ))
    return EstimatorDataset(samples, config)
