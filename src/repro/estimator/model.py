"""Multi-task attention-based throughput estimator (Sec. IV-D).

Architecture follows the paper: a shared backbone of three residual blocks,
each stacking two depthwise convolutions with self-attention modules plus a
channel-mixing convolution with batch normalisation; then one decoder
stream per DNN channel built from linear attention (Shen et al., 2021) and
two fully connected layers.  Depthwise convolutions and attention are used
because the DNN channels of Q are statistically independent.

The network predicts ``log1p(inferences/s)`` per DNN — the log transform
stabilises the 0.05..70 inf/s dynamic range of the board.  The paper's
instance has ~3.7 M parameters; the default configuration here is a
width-scaled version of the same topology (see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autodiff import Tensor, nn, no_grad

__all__ = ["EstimatorConfig", "ThroughputEstimator"]


@dataclass(frozen=True)
class EstimatorConfig:
    """Shapes and widths of the estimator."""

    max_dnns: int = 5
    max_layers: int = 96
    num_components: int = 3
    embed_dim: int = 16
    stem_channels: int = 16
    block_channels: tuple[int, int, int] = (24, 32, 48)
    attn_dim: int = 16
    decoder_dim: int = 32

    @property
    def width(self) -> int:
        """Q-tensor feature width: one embed-sized column block per component."""
        return self.num_components * self.embed_dim


class _ResidualBlock(nn.Module):
    """Backbone unit: strided channel-mixing shortcut around
    (depthwise conv -> self-attention) x 2 -> conv -> batch norm."""

    def __init__(self, c_in: int, c_out: int, stride: int,
                 rng: np.random.Generator, attn_dim: int):
        super().__init__()
        self.down = nn.Conv2d(c_in, c_out, 3, rng, stride=stride, padding=1)
        self.bn_down = nn.BatchNorm2d(c_out)
        self.dw1 = nn.DepthwiseConv2d(c_out, 3, rng, padding=1)
        self.attn1 = nn.SelfAttention2d(c_out, rng, head_dim=attn_dim)
        self.dw2 = nn.DepthwiseConv2d(c_out, 3, rng, padding=1)
        self.attn2 = nn.SelfAttention2d(c_out, rng, head_dim=attn_dim)
        self.conv = nn.Conv2d(c_out, c_out, 3, rng, padding=1)
        self.bn = nn.BatchNorm2d(c_out)

    def forward(self, x: Tensor) -> Tensor:
        shortcut = self.bn_down(self.down(x)).relu()
        h = self.attn1(self.dw1(shortcut).relu())
        h = self.attn2(self.dw2(h).relu())
        h = self.bn(self.conv(h))
        return (h + shortcut).relu()


class _DecoderStream(nn.Module):
    """Per-DNN head: linear attention over backbone tokens + 2 FC layers."""

    def __init__(self, in_features: int, hidden: int,
                 rng: np.random.Generator):
        super().__init__()
        self.attn = nn.LinearAttention(in_features, hidden, rng,
                                       head_dim=hidden)
        self.fc1 = nn.Linear(hidden, hidden, rng)
        self.fc2 = nn.Linear(hidden, 1, rng)

    def forward(self, tokens: Tensor) -> Tensor:
        h = self.attn(tokens)          # (B, T, hidden)
        h = h.mean(axis=1)             # (B, hidden)
        h = self.fc1(h).relu()
        return self.fc2(h)             # (B, 1)


class ThroughputEstimator(nn.Module):
    """Mapping tensor Q -> per-DNN log1p(inferences/s)."""

    def __init__(self, rng: np.random.Generator,
                 config: EstimatorConfig | None = None):
        super().__init__()
        config = config if config is not None else EstimatorConfig()
        self.config = config
        c1, c2, c3 = config.block_channels
        self.stem = nn.Conv2d(config.max_dnns, config.stem_channels, 3, rng,
                              stride=2, padding=1)
        self.stem_bn = nn.BatchNorm2d(config.stem_channels)
        self.block1 = _ResidualBlock(config.stem_channels, c1, 2, rng,
                                     config.attn_dim)
        self.block2 = _ResidualBlock(c1, c2, 2, rng, config.attn_dim)
        self.block3 = _ResidualBlock(c2, c3, 1, rng, config.attn_dim)
        self.decoders = [
            _DecoderStream(c3, config.decoder_dim, rng)
            for _ in range(config.max_dnns)
        ]
        # Single precision: ample for a throughput regressor, ~2x faster
        # in numpy than the engine's float64 default.
        self.astype(np.float32)

    # ------------------------------------------------------------------
    def forward(self, q: Tensor) -> Tensor:
        """``q`` is (B, max_dnns, max_layers, width) -> (B, max_dnns)."""
        expected = (self.config.max_dnns, self.config.max_layers,
                    self.config.width)
        if q.shape[1:] != expected:
            raise ValueError(f"expected Q of shape (B, {expected}), got {q.shape}")
        h = self.stem_bn(self.stem(q)).relu()
        h = self.block1(h)
        h = self.block2(h)
        h = self.block3(h)
        b, c, gh, gw = h.shape
        tokens = h.reshape(b, c, gh * gw).swapaxes(1, 2)  # (B, T, C)
        from ..autodiff import ops

        outs = [dec(tokens) for dec in self.decoders]      # each (B, 1)
        return ops.concat(outs, axis=1)                    # (B, max_dnns)

    def predict_log_rates(self, q: np.ndarray) -> np.ndarray:
        """Inference without graph recording; returns (B, max_dnns)."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                out = self.forward(Tensor(q))
        finally:
            if was_training:
                self.train()
        return out.data

    def predict_rates(self, q: np.ndarray) -> np.ndarray:
        """Predicted inferences/s (inverse of the log1p target transform)."""
        return np.expm1(np.maximum(self.predict_log_rates(q), 0.0))
