"""Multi-task throughput estimator (Sec. IV-D) and its training data."""

from .dataset import EstimatorDataset, EstimatorSample, generate_dataset
from .metrics import l2_loss, pairwise_ranking_accuracy, spearman_r
from .model import EstimatorConfig, ThroughputEstimator
from .train import (
    EstimatorTrainConfig,
    TrainReport,
    evaluate_estimator,
    train_estimator,
)

__all__ = [
    "EstimatorDataset",
    "EstimatorSample",
    "generate_dataset",
    "l2_loss",
    "pairwise_ranking_accuracy",
    "spearman_r",
    "EstimatorConfig",
    "ThroughputEstimator",
    "EstimatorTrainConfig",
    "TrainReport",
    "evaluate_estimator",
    "train_estimator",
]
