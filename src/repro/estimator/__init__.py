"""Multi-task throughput estimator (Sec. IV-D): model, data, artifacts.

See ``docs/estimator.md`` for the end-to-end story: Q-tensor
featurization, the estimator architecture, training, the on-disk
artifact format and how the serving stack loads it.
"""

from .artifact import (
    ARTIFACT_FORMAT_VERSION,
    SUPPORTED_ARTIFACT_VERSIONS,
    ArtifactLineage,
    ArtifactPlatformMismatch,
    EstimatorArtifact,
    artifact_generation_candidates,
    artifact_generation_path,
    artifact_hash,
    latest_artifact_generation,
    load_estimator_artifact,
    save_estimator_artifact,
)
from .dataset import EstimatorDataset, EstimatorSample, generate_dataset
from .finetune import (
    FinetuneBuffer,
    FinetuneConfig,
    FinetuneReport,
    finetune,
    refresh_artifact,
    segment_rows_to_samples,
)
from .metrics import l2_loss, pairwise_ranking_accuracy, spearman_r
from .model import EstimatorConfig, ThroughputEstimator
from .train import (
    EstimatorTrainConfig,
    TrainReport,
    evaluate_estimator,
    train_estimator,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "SUPPORTED_ARTIFACT_VERSIONS",
    "ArtifactLineage",
    "ArtifactPlatformMismatch",
    "EstimatorArtifact",
    "artifact_generation_candidates",
    "artifact_generation_path",
    "artifact_hash",
    "latest_artifact_generation",
    "load_estimator_artifact",
    "save_estimator_artifact",
    "FinetuneBuffer",
    "FinetuneConfig",
    "FinetuneReport",
    "finetune",
    "refresh_artifact",
    "segment_rows_to_samples",
    "EstimatorDataset",
    "EstimatorSample",
    "generate_dataset",
    "l2_loss",
    "pairwise_ranking_accuracy",
    "spearman_r",
    "EstimatorConfig",
    "ThroughputEstimator",
    "EstimatorTrainConfig",
    "TrainReport",
    "evaluate_estimator",
    "train_estimator",
]
