"""Multi-task throughput estimator (Sec. IV-D): model, data, artifacts.

See ``docs/estimator.md`` for the end-to-end story: Q-tensor
featurization, the estimator architecture, training, the on-disk
artifact format and how the serving stack loads it.
"""

from .artifact import (
    ARTIFACT_FORMAT_VERSION,
    ArtifactPlatformMismatch,
    EstimatorArtifact,
    load_estimator_artifact,
    save_estimator_artifact,
)
from .dataset import EstimatorDataset, EstimatorSample, generate_dataset
from .metrics import l2_loss, pairwise_ranking_accuracy, spearman_r
from .model import EstimatorConfig, ThroughputEstimator
from .train import (
    EstimatorTrainConfig,
    TrainReport,
    evaluate_estimator,
    train_estimator,
)

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactPlatformMismatch",
    "EstimatorArtifact",
    "load_estimator_artifact",
    "save_estimator_artifact",
    "EstimatorDataset",
    "EstimatorSample",
    "generate_dataset",
    "l2_loss",
    "pairwise_ranking_accuracy",
    "spearman_r",
    "EstimatorConfig",
    "ThroughputEstimator",
    "EstimatorTrainConfig",
    "TrainReport",
    "evaluate_estimator",
    "train_estimator",
]
