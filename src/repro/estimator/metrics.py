"""Estimator quality metrics: regression error plus rank quality.

MCTS only needs the estimator to *order* mappings correctly, so alongside
the paper's L2 loss we track Spearman rank correlation and pairwise
ordering accuracy against the simulator's ground truth.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["l2_loss", "spearman_r", "pairwise_ranking_accuracy"]


def l2_loss(pred: np.ndarray, target: np.ndarray,
            mask: np.ndarray | None = None) -> float:
    """Mean squared error over (masked) entries — the paper's metric."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if mask is None:
        mask = np.ones_like(pred)
    mask = np.asarray(mask, dtype=np.float64)
    total = mask.sum()
    if total == 0:
        raise ValueError("mask selects no entries")
    return float((((pred - target) ** 2) * mask).sum() / total)


def spearman_r(pred, target) -> float:
    """Spearman rank correlation (0.0 for degenerate inputs)."""
    pred = np.asarray(pred, dtype=np.float64).ravel()
    target = np.asarray(target, dtype=np.float64).ravel()
    if pred.size != target.size or pred.size < 2:
        raise ValueError("need two equal-length vectors of size >= 2")
    if np.allclose(pred, pred[0]) or np.allclose(target, target[0]):
        return 0.0
    rho = stats.spearmanr(pred, target).statistic
    return float(0.0 if np.isnan(rho) else rho)


def pairwise_ranking_accuracy(pred, target, rng: np.random.Generator,
                              n_pairs: int = 2000) -> float:
    """Fraction of random pairs whose predicted order matches the truth."""
    pred = np.asarray(pred, dtype=np.float64).ravel()
    target = np.asarray(target, dtype=np.float64).ravel()
    if pred.size < 2:
        raise ValueError("need at least two points")
    i = rng.integers(pred.size, size=n_pairs)
    j = rng.integers(pred.size, size=n_pairs)
    keep = target[i] != target[j]
    if not keep.any():
        return 0.5
    agree = (pred[i] > pred[j]) == (target[i] > target[j])
    return float(agree[keep].mean())
