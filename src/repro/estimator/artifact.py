"""Trained-estimator artifact persistence.

The paper's operational pitch is that RankMap plans over a *learned*
throughput estimator (0.04 s per candidate evaluation) instead of
measuring candidates on the board.  For that path to be usable from the
serving stack — where every :class:`~repro.runner.DynamicScenario` worker
rebuilds its world from a few registry keys — the trained weights must be
a disk artifact a worker can load by path, exactly like the persisted
:class:`~repro.sim.EvaluationCache`.

An artifact bundles everything :class:`~repro.core.EstimatorPredictor`
needs: the :class:`~repro.estimator.EstimatorConfig` shapes, the trained
:class:`~repro.estimator.ThroughputEstimator` weights, the
:class:`~repro.vqvae.LayerVQVAE` (whose embeddings featurize the
Q tensors) with its quantizer codebooks, and the validation quality of
the training run.  The on-disk record mirrors the evaluation cache's
versioned persistence:

* a **format version** — unknown versions are refused;
* a **platform fingerprint** (:func:`repro.sim.cache.platform_fingerprint`)
  of the board the training rates were simulated on — an estimator
  trained against one board model must never score candidates for
  another.  A mismatch raises :class:`ArtifactPlatformMismatch`
  (a ``ValueError`` subclass) so callers that can fall back — the
  scenario runner downgrades to the oracle predictor with a warning,
  matching the ``cache_path`` behaviour — can distinguish it from a
  corrupt file, which raises a plain ``ValueError``.

Writes go through a temp file and an atomic rename, so concurrent
readers (pool workers warming from one shared path) never observe a
half-written artifact.
"""

from __future__ import annotations

import pickle
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..hw.platform import Platform
from ..sim.cache import platform_fingerprint
from ..vqvae.model import LayerVQVAE
from ..vqvae.train import EmbeddingCache
from .model import EstimatorConfig, ThroughputEstimator

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactPlatformMismatch",
    "EstimatorArtifact",
    "save_estimator_artifact",
    "load_estimator_artifact",
]

#: On-disk artifact format version; bump when the payload layout changes.
ARTIFACT_FORMAT_VERSION = 1


class ArtifactPlatformMismatch(ValueError):
    """Raised when an artifact was trained for a different platform.

    Distinct from the plain ``ValueError`` a corrupt or unknown-format
    file raises, so callers with a sensible fallback (e.g. the scenario
    runner's downgrade to the oracle predictor) can catch exactly the
    recoverable case.
    """


@dataclass
class EstimatorArtifact:
    """A loaded artifact: the rebuilt learned components plus metadata."""

    estimator: ThroughputEstimator
    vqvae: LayerVQVAE
    embedder: EmbeddingCache
    config: EstimatorConfig
    platform_name: str
    fingerprint: str
    val_l2: float = float("nan")
    val_spearman: float = float("nan")


def _vqvae_hyperparams(vqvae: LayerVQVAE) -> dict:
    """Recover the constructor arguments of a trained VQ-VAE.

    Everything is readable off the instance: ``hidden`` from the first
    encoder convolution's output channels, the rest from stored
    attributes — so saving needs no side-channel of how the model was
    built.
    """
    return {
        "hidden": int(vqvae.encoder.layers[0].weight.data.shape[0]),
        "embed_dim": int(vqvae.embed_dim),
        "groups": int(vqvae.quantizer.groups),
        "stages": int(vqvae.quantizer.stages),
        "codebook_size": int(vqvae.quantizer.codebook_size),
        "commitment_beta": float(vqvae.commitment_beta),
    }


def save_estimator_artifact(path: str | Path,
                            estimator: ThroughputEstimator,
                            vqvae: LayerVQVAE,
                            platform: Platform,
                            val_l2: float = float("nan"),
                            val_spearman: float = float("nan")) -> Path:
    """Serialize a trained estimator + VQ-VAE to ``path``; returns it.

    The parent directory is created if needed; the write is atomic
    (temp file + rename).  ``platform`` stamps the artifact with the
    fingerprint of the board the training rates came from — loading for
    any other board refuses (see :func:`load_estimator_artifact`).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": ARTIFACT_FORMAT_VERSION,
        "fingerprint": platform_fingerprint(platform),
        "platform_name": platform.name,
        "estimator_config": asdict(estimator.config),
        "estimator_arrays": estimator.state_arrays(),
        "vqvae_params": _vqvae_hyperparams(vqvae),
        "vqvae_arrays": vqvae.state_arrays(),
        "codebook_arrays": vqvae.quantizer.state_arrays(),
        "val_l2": float(val_l2),
        "val_spearman": float(val_spearman),
    }
    # Unique temp name per writer: concurrent saves to one path must not
    # interleave into the same file before the atomic rename.
    with tempfile.NamedTemporaryFile(dir=path.parent, delete=False,
                                     suffix=".tmp") as fh:
        tmp = Path(fh.name)
        try:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException:
            fh.close()
            tmp.unlink(missing_ok=True)
            raise
    tmp.replace(path)
    return path


def load_estimator_artifact(path: str | Path,
                            platform: Platform) -> EstimatorArtifact:
    """Rebuild the learned components from :func:`save_estimator_artifact`.

    Raises :class:`ArtifactPlatformMismatch` when the artifact was
    trained for a platform with a different fingerprint, and a plain
    ``ValueError`` (with the underlying cause chained) for a corrupt,
    truncated or unknown-format file — a broken artifact must fail
    loudly, never silently score with garbage weights.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise ValueError(
            f"corrupt estimator artifact {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"corrupt estimator artifact {path}: payload is "
            f"{type(payload).__name__}, expected dict")
    version = payload.get("version")
    if version != ARTIFACT_FORMAT_VERSION:
        raise ValueError(
            f"estimator artifact {path} has format version {version!r}; "
            f"this build reads version {ARTIFACT_FORMAT_VERSION}")
    fingerprint = platform_fingerprint(platform)
    if payload.get("fingerprint") != fingerprint:
        raise ArtifactPlatformMismatch(
            f"estimator artifact {path} was trained for platform "
            f"{payload.get('platform_name')!r} (fingerprint "
            f"{payload.get('fingerprint')!r}); refusing to load it for "
            f"{platform.name!r} (fingerprint {fingerprint!r})")
    try:
        config = EstimatorConfig(**{
            k: tuple(v) if isinstance(v, list) else v
            for k, v in payload["estimator_config"].items()})
        estimator = ThroughputEstimator(np.random.default_rng(0), config)
        estimator.load_arrays(payload["estimator_arrays"])
        vqvae = LayerVQVAE(np.random.default_rng(0),
                           **payload["vqvae_params"])
        vqvae.load_arrays(payload["vqvae_arrays"])
        vqvae.quantizer.load_arrays(payload["codebook_arrays"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"corrupt estimator artifact {path}: {exc}") from exc
    vqvae.eval()
    estimator.eval()
    return EstimatorArtifact(
        estimator=estimator, vqvae=vqvae, embedder=EmbeddingCache(vqvae),
        config=config, platform_name=str(payload.get("platform_name")),
        fingerprint=str(payload.get("fingerprint")),
        val_l2=float(payload.get("val_l2", float("nan"))),
        val_spearman=float(payload.get("val_spearman", float("nan"))),
    )
