"""Trained-estimator artifact persistence.

The paper's operational pitch is that RankMap plans over a *learned*
throughput estimator (0.04 s per candidate evaluation) instead of
measuring candidates on the board.  For that path to be usable from the
serving stack — where every :class:`~repro.runner.DynamicScenario` worker
rebuilds its world from a few registry keys — the trained weights must be
a disk artifact a worker can load by path, exactly like the persisted
:class:`~repro.sim.EvaluationCache`.

An artifact bundles everything :class:`~repro.core.EstimatorPredictor`
needs: the :class:`~repro.estimator.EstimatorConfig` shapes, the trained
:class:`~repro.estimator.ThroughputEstimator` weights, the
:class:`~repro.vqvae.LayerVQVAE` (whose embeddings featurize the
Q tensors) with its quantizer codebooks, and the validation quality of
the training run.  The on-disk record mirrors the evaluation cache's
versioned persistence:

* a **format version** — unknown versions are refused.  Version 2 adds
  the fine-tuning **lineage** block (see :class:`ArtifactLineage`);
  version-1 files remain readable and load with the base lineage.
* a **platform fingerprint** (:func:`repro.sim.cache.platform_fingerprint`)
  of the board the training rates were simulated on — an estimator
  trained against one board model must never score candidates for
  another.  A mismatch raises :class:`ArtifactPlatformMismatch`
  (a ``ValueError`` subclass) so callers that can fall back — the
  scenario runner downgrades to the oracle predictor with a warning,
  matching the ``cache_path`` behaviour — can distinguish it from a
  corrupt file, which raises a plain ``ValueError``.

Fine-tuned **generations** (``repro.estimator.finetune``) live next to
the base artifact under sibling names ``<stem>.gen<N><suffix>`` — e.g.
``estimator.pkl`` → ``estimator.gen1.pkl`` — so a refresh never clobbers
the file a running worker may be warming from.
:func:`artifact_generation_candidates` enumerates the family newest
first; the scenario runner's ``resolve_predictor`` walks that list and
serves the newest compatible generation.

Writes go through a temp file and an atomic rename, so concurrent
readers (pool workers warming from one shared path) never observe a
half-written artifact.
"""

from __future__ import annotations

import hashlib
import pickle
import re
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..hw.platform import Platform
from ..sim.cache import platform_fingerprint
from ..vqvae.model import LayerVQVAE
from ..vqvae.train import EmbeddingCache
from .model import EstimatorConfig, ThroughputEstimator

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "SUPPORTED_ARTIFACT_VERSIONS",
    "ArtifactLineage",
    "ArtifactPlatformMismatch",
    "EstimatorArtifact",
    "save_estimator_artifact",
    "load_estimator_artifact",
    "artifact_hash",
    "artifact_generation_path",
    "artifact_generation_candidates",
    "latest_artifact_generation",
]

#: On-disk artifact format version written by this build; bump when the
#: payload layout changes.
ARTIFACT_FORMAT_VERSION = 2

#: Format versions this build can read (v1 predates lineage).
SUPPORTED_ARTIFACT_VERSIONS = (1, 2)

#: ``<stem>.gen<N>`` suffix that marks a fine-tuned generation file.
_GENERATION_STEM = re.compile(r"^(?P<base>.+)\.gen(?P<n>[1-9]\d*)$")

#: Keys a well-formed v2 ``lineage`` block may carry — anything else is
#: treated as corruption, not silently ignored.
_LINEAGE_KEYS = frozenset({"parent_hash", "segment_count", "finetune_epoch"})


class ArtifactPlatformMismatch(ValueError):
    """Raised when an artifact was trained for a different platform.

    Distinct from the plain ``ValueError`` a corrupt or unknown-format
    file raises, so callers with a sensible fallback (e.g. the scenario
    runner's downgrade to the oracle predictor) can catch exactly the
    recoverable case.
    """


@dataclass(frozen=True)
class ArtifactLineage:
    """Provenance of a (possibly fine-tuned) artifact.

    A freshly trained base artifact carries the default lineage:
    no parent, zero segments, fine-tune epoch 0.  Every
    :func:`~repro.estimator.finetune.refresh_artifact` pass writes a new
    generation whose lineage records the SHA-256 of the parent artifact
    file, how many distinct telemetry segments fed the pass, and the
    generation number — so any artifact on disk can be traced back to
    the base weights it descended from.
    """

    parent_hash: str | None = None
    segment_count: int = 0
    finetune_epoch: int = 0


@dataclass
class EstimatorArtifact:
    """A loaded artifact: the rebuilt learned components plus metadata."""

    estimator: ThroughputEstimator
    vqvae: LayerVQVAE
    embedder: EmbeddingCache
    config: EstimatorConfig
    platform_name: str
    fingerprint: str
    val_l2: float = float("nan")
    val_spearman: float = float("nan")
    lineage: ArtifactLineage = field(default_factory=ArtifactLineage)


def artifact_hash(path: str | Path) -> str:
    """SHA-256 hex digest of the artifact file bytes at ``path``.

    This is the ``parent_hash`` stamped into a fine-tuned child's
    :class:`ArtifactLineage` — content-addressed, so renaming or moving
    the parent does not break the chain.
    """
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def artifact_generation_path(base: str | Path, generation: int) -> Path:
    """The sibling path generation ``generation`` of ``base`` lives at.

    ``estimator.pkl`` → ``estimator.gen1.pkl`` and so on.  ``base`` must
    be the family base (not itself a generation file) and ``generation``
    must be ≥ 1 — generation 0 *is* the base artifact.
    """
    base = Path(base)
    if _GENERATION_STEM.match(base.stem):
        raise ValueError(
            f"{base} is already a generation file; pass the family base")
    if generation < 1:
        raise ValueError(
            f"generation must be >= 1 (0 is the base artifact), "
            f"got {generation}")
    return base.with_name(f"{base.stem}.gen{generation}{base.suffix}")


def artifact_generation_candidates(path: str | Path) -> list[Path]:
    """Artifact paths to try for ``path``, newest generation first.

    If ``path`` itself names a generation file (``*.genN*``), the caller
    pinned an exact generation and gets only that.  Otherwise the list
    is every existing ``<stem>.gen<N><suffix>`` sibling in descending
    generation order, followed by ``path`` itself (whether or not it
    exists — missing-base errors stay the caller's to raise).  Ordering
    is by generation number, never directory enumeration order, so the
    scan is deterministic across filesystems.
    """
    path = Path(path)
    if _GENERATION_STEM.match(path.stem):
        return [path]
    found: list[tuple[int, Path]] = []
    if path.parent.is_dir():
        for sibling in path.parent.iterdir():
            if sibling.suffix != path.suffix:
                continue
            match = _GENERATION_STEM.match(sibling.stem)
            if match and match.group("base") == path.stem:
                found.append((int(match.group("n")), sibling))
    found.sort(key=lambda item: -item[0])
    return [p for _, p in found] + [path]


def latest_artifact_generation(base: str | Path) -> int:
    """Highest generation number present next to ``base`` (0 if none)."""
    candidates = artifact_generation_candidates(base)
    newest = candidates[0]
    match = _GENERATION_STEM.match(newest.stem)
    return int(match.group("n")) if match else 0


def _vqvae_hyperparams(vqvae: LayerVQVAE) -> dict:
    """Recover the constructor arguments of a trained VQ-VAE.

    Everything is readable off the instance: ``hidden`` from the first
    encoder convolution's output channels, the rest from stored
    attributes — so saving needs no side-channel of how the model was
    built.
    """
    return {
        "hidden": int(vqvae.encoder.layers[0].weight.data.shape[0]),
        "embed_dim": int(vqvae.embed_dim),
        "groups": int(vqvae.quantizer.groups),
        "stages": int(vqvae.quantizer.stages),
        "codebook_size": int(vqvae.quantizer.codebook_size),
        "commitment_beta": float(vqvae.commitment_beta),
    }


def save_estimator_artifact(path: str | Path,
                            estimator: ThroughputEstimator,
                            vqvae: LayerVQVAE,
                            platform: Platform,
                            val_l2: float = float("nan"),
                            val_spearman: float = float("nan"),
                            lineage: ArtifactLineage | None = None) -> Path:
    """Serialize a trained estimator + VQ-VAE to ``path``; returns it.

    The parent directory is created if needed; the write is atomic
    (temp file + rename).  ``platform`` stamps the artifact with the
    fingerprint of the board the training rates came from — loading for
    any other board refuses (see :func:`load_estimator_artifact`).
    ``lineage`` defaults to the base-artifact lineage; fine-tune passes
    supply the child's provenance instead.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lineage = lineage if lineage is not None else ArtifactLineage()
    payload = {
        "version": ARTIFACT_FORMAT_VERSION,
        "fingerprint": platform_fingerprint(platform),
        "platform_name": platform.name,
        "estimator_config": asdict(estimator.config),
        "estimator_arrays": estimator.state_arrays(),
        "vqvae_params": _vqvae_hyperparams(vqvae),
        "vqvae_arrays": vqvae.state_arrays(),
        "codebook_arrays": vqvae.quantizer.state_arrays(),
        "val_l2": float(val_l2),
        "val_spearman": float(val_spearman),
        "lineage": {
            "parent_hash": lineage.parent_hash,
            "segment_count": int(lineage.segment_count),
            "finetune_epoch": int(lineage.finetune_epoch),
        },
    }
    # Unique temp name per writer: concurrent saves to one path must not
    # interleave into the same file before the atomic rename.
    with tempfile.NamedTemporaryFile(dir=path.parent, delete=False,
                                     suffix=".tmp") as fh:
        tmp = Path(fh.name)
        try:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException:
            fh.close()
            tmp.unlink(missing_ok=True)
            raise
    tmp.replace(path)
    return path


def _parse_lineage(payload: dict, path: Path) -> ArtifactLineage:
    """Validate and rebuild the lineage block of a loaded payload.

    Version-1 payloads predate lineage and get the base default.  A v2
    payload must carry a dict with exactly the known keys and
    well-typed values — anything else is corruption and raises a plain
    ``ValueError`` like every other malformed-payload case.
    """
    if payload["version"] == 1:
        return ArtifactLineage()
    raw = payload.get("lineage")
    if not isinstance(raw, dict):
        raise ValueError(
            f"corrupt estimator artifact {path}: lineage is "
            f"{type(raw).__name__}, expected dict")
    unknown = sorted(set(raw) - _LINEAGE_KEYS)
    if unknown:
        raise ValueError(
            f"corrupt estimator artifact {path}: unknown lineage "
            f"field(s) {unknown}")
    parent_hash = raw.get("parent_hash")
    if parent_hash is not None and not isinstance(parent_hash, str):
        raise ValueError(
            f"corrupt estimator artifact {path}: lineage parent_hash is "
            f"{type(parent_hash).__name__}, expected str or None")
    segment_count = raw.get("segment_count", 0)
    finetune_epoch = raw.get("finetune_epoch", 0)
    for name, value in (("segment_count", segment_count),
                        ("finetune_epoch", finetune_epoch)):
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(
                f"corrupt estimator artifact {path}: lineage {name} is "
                f"{value!r}, expected a non-negative int")
    return ArtifactLineage(parent_hash=parent_hash,
                           segment_count=segment_count,
                           finetune_epoch=finetune_epoch)


def load_estimator_artifact(path: str | Path,
                            platform: Platform) -> EstimatorArtifact:
    """Rebuild the learned components from :func:`save_estimator_artifact`.

    Reads every version in :data:`SUPPORTED_ARTIFACT_VERSIONS` (v1 files
    load with the base :class:`ArtifactLineage`).  Raises
    :class:`ArtifactPlatformMismatch` when the artifact was trained for
    a platform with a different fingerprint, and a plain ``ValueError``
    (with the underlying cause chained) for a corrupt, truncated,
    unknown-format or malformed-lineage file — a broken artifact must
    fail loudly, never silently score with garbage weights.
    """
    path = Path(path)
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise ValueError(
            f"corrupt estimator artifact {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(
            f"corrupt estimator artifact {path}: payload is "
            f"{type(payload).__name__}, expected dict")
    version = payload.get("version")
    if version not in SUPPORTED_ARTIFACT_VERSIONS:
        raise ValueError(
            f"estimator artifact {path} has format version {version!r}; "
            f"this build reads versions "
            f"{', '.join(str(v) for v in SUPPORTED_ARTIFACT_VERSIONS)}")
    lineage = _parse_lineage(payload, path)
    fingerprint = platform_fingerprint(platform)
    if payload.get("fingerprint") != fingerprint:
        raise ArtifactPlatformMismatch(
            f"estimator artifact {path} was trained for platform "
            f"{payload.get('platform_name')!r} (fingerprint "
            f"{payload.get('fingerprint')!r}); refusing to load it for "
            f"{platform.name!r} (fingerprint {fingerprint!r})")
    try:
        config = EstimatorConfig(**{
            k: tuple(v) if isinstance(v, list) else v
            for k, v in payload["estimator_config"].items()})
        estimator = ThroughputEstimator(np.random.default_rng(0), config)
        estimator.load_arrays(payload["estimator_arrays"])
        vqvae = LayerVQVAE(np.random.default_rng(0),
                           **payload["vqvae_params"])
        vqvae.load_arrays(payload["vqvae_arrays"])
        vqvae.quantizer.load_arrays(payload["codebook_arrays"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"corrupt estimator artifact {path}: {exc}") from exc
    vqvae.eval()
    estimator.eval()
    return EstimatorArtifact(
        estimator=estimator, vqvae=vqvae, embedder=EmbeddingCache(vqvae),
        config=config, platform_name=str(payload.get("platform_name")),
        fingerprint=str(payload.get("fingerprint")),
        val_l2=float(payload.get("val_l2", float("nan"))),
        val_spearman=float(payload.get("val_spearman", float("nan"))),
        lineage=lineage,
    )
