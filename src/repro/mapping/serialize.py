"""Deployment records: persist a planned mapping as JSON.

A manager's decision is only useful if the runtime that executes it can
reload it after a reboot.  A :class:`DeploymentRecord` binds everything a
deployment needs — platform name, workload model names, per-block
assignments, and the priority vector the plan was made for — and
round-trips through JSON.  Loading re-validates against the model zoo, so
a record written for a different zoo revision fails loudly instead of
executing a mis-shaped mapping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..zoo.layers import ModelSpec
from ..zoo.registry import get_model
from .mapping import Mapping

__all__ = ["DeploymentRecord", "save_deployment", "load_deployment"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class DeploymentRecord:
    """A planned mapping plus the context needed to redeploy it."""

    platform: str
    workload: tuple[str, ...]
    assignments: tuple[tuple[int, ...], ...]
    priorities: tuple[float, ...] | None = None

    def __post_init__(self):
        if len(self.workload) != len(self.assignments):
            raise ValueError("workload and assignments must align")
        if self.priorities is not None and \
                len(self.priorities) != len(self.workload):
            raise ValueError("priorities must match workload length")

    # ------------------------------------------------------------------
    @classmethod
    def from_plan(cls, platform_name: str, workload: list[ModelSpec],
                  mapping: Mapping,
                  priorities=None) -> "DeploymentRecord":
        """Snapshot a manager's plan for ``workload``."""
        mapping_names = tuple(m.name for m in workload)
        if len(mapping.assignments) != len(workload):
            raise ValueError("mapping does not cover the workload")
        return cls(
            platform=platform_name,
            workload=mapping_names,
            assignments=mapping.assignments,
            priorities=(None if priorities is None
                        else tuple(float(p) for p in priorities)),
        )

    def to_json(self) -> str:
        return json.dumps({
            "format_version": _FORMAT_VERSION,
            "platform": self.platform,
            "workload": list(self.workload),
            "assignments": [list(a) for a in self.assignments],
            "priorities": (None if self.priorities is None
                           else list(self.priorities)),
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "DeploymentRecord":
        payload = json.loads(text)
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported deployment record version {version!r}")
        return cls(
            platform=payload["platform"],
            workload=tuple(payload["workload"]),
            assignments=tuple(tuple(int(c) for c in a)
                              for a in payload["assignments"]),
            priorities=(None if payload.get("priorities") is None
                        else tuple(float(p)
                                   for p in payload["priorities"])),
        )

    # ------------------------------------------------------------------
    def restore(self, num_components: int
                ) -> tuple[list[ModelSpec], Mapping]:
        """Rebuild (workload, mapping), validating against the zoo.

        Raises ``KeyError`` for unknown model names and ``ValueError``
        when the stored assignments no longer match the zoo's block
        structure or the platform's component count.
        """
        workload = [get_model(name) for name in self.workload]
        mapping = Mapping(self.assignments)
        mapping.validate_against(workload, num_components)
        return workload, mapping


def save_deployment(path: str | Path, record: DeploymentRecord) -> None:
    """Write a deployment record to ``path`` as JSON."""
    Path(path).write_text(record.to_json() + "\n")


def load_deployment(path: str | Path) -> DeploymentRecord:
    """Read a deployment record back from ``path``."""
    return DeploymentRecord.from_json(Path(path).read_text())
