"""Solution-space accounting (Sec. IV-E).

The number of mappings for a workload is ``d ** total_blocks`` where ``d``
is the component count: AlexNet + MobileNet + ResNet-50 + ShuffleNet on a
3-component platform gives 3^(8+20+18+18) — the ~4e10-at-coarse-granularity
example the paper uses to motivate stochastic search.
"""

from __future__ import annotations

import math

from ..zoo.layers import ModelSpec

__all__ = ["solution_space_size", "log10_solution_space"]


def solution_space_size(workload: list[ModelSpec], num_components: int) -> int:
    """Exact number of block-level mappings for ``workload``."""
    total_blocks = sum(m.num_blocks for m in workload)
    return num_components**total_blocks


def log10_solution_space(workload: list[ModelSpec], num_components: int) -> float:
    """log10 of the mapping count (readable for astronomically large spaces)."""
    total_blocks = sum(m.num_blocks for m in workload)
    return total_blocks * math.log10(num_components)
