"""Mapping tensor Q assembly (Sec. IV-A).

Q has one channel per DNN; each row is a layer; the row is divided into
``d`` column blocks, one per computing component, and the layer's embedding
is written into the column block of the component its block is mapped to.
The throughput estimator consumes Q as an image-like tensor.

Models longer than ``max_layers`` are bucket-averaged row-wise (the scatter
into component column blocks happens first, so placement information is
preserved proportionally).
"""

from __future__ import annotations

import numpy as np

from ..zoo.layers import ModelSpec
from .mapping import Mapping

__all__ = ["layer_component_vector", "scatter_layers", "build_q_tensor"]


def layer_component_vector(model: ModelSpec, assignment: tuple[int, ...]) -> np.ndarray:
    """Expand a per-block assignment to a per-layer component index array."""
    if len(assignment) != model.num_blocks:
        raise ValueError(
            f"{model.name}: {len(assignment)} assignments for "
            f"{model.num_blocks} blocks"
        )
    per_layer = np.empty(model.num_layers, dtype=np.int64)
    pos = 0
    for block, comp in zip(model.blocks, assignment):
        per_layer[pos : pos + len(block.layers)] = comp
        pos += len(block.layers)
    return per_layer


def scatter_layers(embeddings: np.ndarray, components: np.ndarray,
                   num_components: int) -> np.ndarray:
    """Place per-layer embeddings into their component's column block.

    ``embeddings`` is (layers, E); returns (layers, num_components * E).
    """
    n_layers, dim = embeddings.shape
    if components.shape != (n_layers,):
        raise ValueError("components must align with embeddings rows")
    out = np.zeros((n_layers, num_components * dim), dtype=embeddings.dtype)
    for comp in range(num_components):
        rows = components == comp
        out[rows, comp * dim : (comp + 1) * dim] = embeddings[rows]
    return out


def _resample_rows(matrix: np.ndarray, target_rows: int) -> np.ndarray:
    """Average ``matrix`` rows into ``target_rows`` contiguous buckets."""
    n = matrix.shape[0]
    if n == target_rows:
        return matrix
    out = np.zeros((target_rows, matrix.shape[1]), dtype=matrix.dtype)
    if n < target_rows:
        out[:n] = matrix
        return out
    bounds = np.linspace(0, n, target_rows + 1).astype(int)
    for i, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
        out[i] = matrix[lo:hi].mean(axis=0) if hi > lo else 0.0
    return out


def build_q_tensor(workload: list[ModelSpec], mapping: Mapping,
                   embeddings: list[np.ndarray], num_components: int,
                   max_dnns: int, max_layers: int) -> np.ndarray:
    """Assemble the Q tensor: (max_dnns, max_layers, num_components * E)."""
    if len(workload) > max_dnns:
        raise ValueError(f"workload of {len(workload)} exceeds max_dnns={max_dnns}")
    if len(embeddings) != len(workload):
        raise ValueError("need one embedding matrix per DNN")
    dim = embeddings[0].shape[1]
    q = np.zeros((max_dnns, max_layers, num_components * dim), dtype=np.float64)
    for i, (model, emb) in enumerate(zip(workload, embeddings)):
        if emb.shape[0] != model.num_layers:
            raise ValueError(
                f"{model.name}: embedding rows {emb.shape[0]} != layers "
                f"{model.num_layers}"
            )
        comps = layer_component_vector(model, mapping.assignments[i])
        scattered = scatter_layers(emb, comps, num_components)
        q[i] = _resample_rows(scattered, max_layers)
    return q
