"""Mapping tensor Q assembly (Sec. IV-A).

Q has one channel per DNN; each row is a layer; the row is divided into
``d`` column blocks, one per computing component, and the layer's embedding
is written into the column block of the component its block is mapped to.
The throughput estimator consumes Q as an image-like tensor.

Models longer than ``max_layers`` are bucket-averaged row-wise (the scatter
into component column blocks happens first, so placement information is
preserved proportionally).
"""

from __future__ import annotations

import numpy as np

from ..zoo.layers import ModelSpec
from .mapping import Mapping

__all__ = ["layer_component_vector", "scatter_layers", "build_q_tensor",
           "build_q_tensor_batch"]


def layer_component_vector(model: ModelSpec, assignment: tuple[int, ...]) -> np.ndarray:
    """Expand a per-block assignment to a per-layer component index array."""
    if len(assignment) != model.num_blocks:
        raise ValueError(
            f"{model.name}: {len(assignment)} assignments for "
            f"{model.num_blocks} blocks"
        )
    per_layer = np.empty(model.num_layers, dtype=np.int64)
    pos = 0
    for block, comp in zip(model.blocks, assignment):
        per_layer[pos : pos + len(block.layers)] = comp
        pos += len(block.layers)
    return per_layer


def scatter_layers(embeddings: np.ndarray, components: np.ndarray,
                   num_components: int) -> np.ndarray:
    """Place per-layer embeddings into their component's column block.

    ``embeddings`` is (layers, E); returns (layers, num_components * E).
    """
    n_layers, dim = embeddings.shape
    if components.shape != (n_layers,):
        raise ValueError("components must align with embeddings rows")
    out = np.zeros((n_layers, num_components * dim), dtype=embeddings.dtype)
    for comp in range(num_components):
        rows = components == comp
        out[rows, comp * dim : (comp + 1) * dim] = embeddings[rows]
    return out


def _resample_rows(matrix: np.ndarray, target_rows: int) -> np.ndarray:
    """Average ``matrix`` rows into ``target_rows`` contiguous buckets."""
    n = matrix.shape[0]
    if n == target_rows:
        return matrix
    out = np.zeros((target_rows, matrix.shape[1]), dtype=matrix.dtype)
    if n < target_rows:
        out[:n] = matrix
        return out
    bounds = np.linspace(0, n, target_rows + 1).astype(int)
    for i, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
        out[i] = matrix[lo:hi].mean(axis=0) if hi > lo else 0.0
    return out


def _resample_rows_batch(matrix: np.ndarray, target_rows: int) -> np.ndarray:
    """Batched :func:`_resample_rows`: ``matrix`` is (B, n, W).

    Bit-identical to resampling each batch element through the scalar
    helper — the bucket means reduce over the same row slices in the same
    order, only batched over the leading axis.  The two implementations
    are *deliberately* independent twins: the scalar one is the oracle
    ``tests/property/test_estimator_batch_equivalence.py`` locks this one
    against, so any edit to the bucketing must land in both (the property
    suite fails loudly if they drift).
    """
    b, n, width = matrix.shape
    if n == target_rows:
        return matrix
    out = np.zeros((b, target_rows, width), dtype=matrix.dtype)
    if n < target_rows:
        out[:, :n] = matrix
        return out
    bounds = np.linspace(0, n, target_rows + 1).astype(int)
    for i, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
        out[:, i] = matrix[:, lo:hi].mean(axis=1) if hi > lo else 0.0
    return out


def build_q_tensor(workload: list[ModelSpec], mapping: Mapping,
                   embeddings: list[np.ndarray], num_components: int,
                   max_dnns: int, max_layers: int) -> np.ndarray:
    """Assemble the Q tensor: (max_dnns, max_layers, num_components * E)."""
    if len(workload) > max_dnns:
        raise ValueError(f"workload of {len(workload)} exceeds max_dnns={max_dnns}")
    if len(embeddings) != len(workload):
        raise ValueError("need one embedding matrix per DNN")
    dim = embeddings[0].shape[1]
    q = np.zeros((max_dnns, max_layers, num_components * dim), dtype=np.float64)
    for i, (model, emb) in enumerate(zip(workload, embeddings)):
        if emb.shape[0] != model.num_layers:
            raise ValueError(
                f"{model.name}: embedding rows {emb.shape[0]} != layers "
                f"{model.num_layers}"
            )
        comps = layer_component_vector(model, mapping.assignments[i])
        scattered = scatter_layers(emb, comps, num_components)
        q[i] = _resample_rows(scattered, max_layers)
    return q


def build_q_tensor_batch(workload: list[ModelSpec], mappings: list[Mapping],
                         embeddings: list[np.ndarray], num_components: int,
                         max_dnns: int, max_layers: int) -> np.ndarray:
    """Assemble Q tensors for a whole candidate batch in one fused pass.

    Returns (B, max_dnns, max_layers, num_components * E), bit-identical
    to ``np.stack([build_q_tensor(workload, m, ...) for m in mappings])``
    (locked by ``tests/property/test_estimator_batch_equivalence.py``) but
    without the per-mapping Python work: the per-layer component expansion
    and the embedding scatter vectorize across the batch, and the
    row-bucket resampling loops over buckets once instead of once per
    mapping.  This is the estimator-path analogue of
    :func:`repro.sim.engine.simulate_batch` — MCTS rollout sets and
    warm-start candidate rosters assemble their features here.
    """
    if len(workload) > max_dnns:
        raise ValueError(
            f"workload of {len(workload)} exceeds max_dnns={max_dnns}")
    if len(embeddings) != len(workload):
        raise ValueError("need one embedding matrix per DNN")
    if not mappings:
        dim = embeddings[0].shape[1] if embeddings else 0
        return np.zeros((0, max_dnns, max_layers, num_components * dim),
                        dtype=np.float64)
    batch = len(mappings)
    dim = embeddings[0].shape[1]
    q = np.zeros((batch, max_dnns, max_layers, num_components * dim),
                 dtype=np.float64)
    batch_index = np.arange(batch)[:, None]
    for i, (model, emb) in enumerate(zip(workload, embeddings)):
        if emb.shape[0] != model.num_layers:
            raise ValueError(
                f"{model.name}: embedding rows {emb.shape[0]} != layers "
                f"{model.num_layers}"
            )
        for m in mappings:
            if len(m.assignments[i]) != model.num_blocks:
                raise ValueError(
                    f"{model.name}: {len(m.assignments[i])} assignments "
                    f"for {model.num_blocks} blocks"
                )
        # (B, blocks) per-block assignments -> (B, layers) via the shared
        # block-of-layer expansion (the batched layer_component_vector).
        assignments = np.array([m.assignments[i] for m in mappings],
                               dtype=np.int64)
        if assignments.size and (assignments.min() < 0
                                 or assignments.max() >= num_components):
            # The scalar reference silently zero-drops an out-of-range
            # component; here it would wrap (negative) or crash with an
            # opaque IndexError deep in the scatter — fail clearly
            # instead, it is a caller bug either way.
            raise ValueError(
                f"{model.name}: component indices must be in "
                f"[0, {num_components}); got "
                f"[{assignments.min()}, {assignments.max()}]")
        block_of_layer = np.repeat(np.arange(model.num_blocks),
                                   [len(b.layers) for b in model.blocks])
        per_layer = assignments[:, block_of_layer]
        # Batched scatter_layers: place each layer's embedding into the
        # column block of its assigned component via one fancy-indexed
        # write per model instead of num_components masked writes per
        # mapping.
        scattered = np.zeros((batch, model.num_layers, num_components, dim),
                             dtype=emb.dtype)
        scattered[batch_index, np.arange(model.num_layers)[None, :],
                  per_layer] = emb[None, :, :]
        scattered = scattered.reshape(batch, model.num_layers,
                                      num_components * dim)
        q[:, i] = _resample_rows_batch(scattered, max_layers)
    return q
