"""Multi-DNN mapping representation.

A mapping assigns every partitionable block of every DNN in the workload to
one computing component.  Maximal runs of consecutive blocks on the same
component form *pipeline stages* — the unit of execution, contention and
transfer cost.  This encoding spans exactly the paper's solution space:
``num_components ** total_blocks`` possibilities (Sec. IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..zoo.layers import ModelSpec

__all__ = ["Mapping", "Stage", "extract_stages", "gpu_only_mapping"]


@dataclass(frozen=True)
class Stage:
    """A maximal run of consecutive blocks of one DNN on one component."""

    dnn_index: int
    component: int
    block_start: int  # inclusive
    block_end: int    # exclusive

    @property
    def num_blocks(self) -> int:
        return self.block_end - self.block_start


@dataclass(frozen=True)
class Mapping:
    """Per-DNN, per-block component assignment for a multi-DNN workload."""

    assignments: tuple[tuple[int, ...], ...]

    def __post_init__(self):
        if not self.assignments:
            raise ValueError("mapping must cover at least one DNN")
        for i, a in enumerate(self.assignments):
            if not a:
                raise ValueError(f"DNN {i} has an empty assignment")
            if any(c < 0 for c in a):
                raise ValueError(f"DNN {i} has a negative component index")

    @classmethod
    def from_lists(cls, assignments) -> "Mapping":
        return cls(tuple(tuple(int(c) for c in a) for a in assignments))

    # ------------------------------------------------------------------
    @property
    def num_dnns(self) -> int:
        return len(self.assignments)

    def components_used(self) -> set[int]:
        return {c for a in self.assignments for c in a}

    def validate_against(self, workload: list[ModelSpec],
                         num_components: int) -> None:
        """Raise ValueError unless this mapping fits ``workload``."""
        if len(self.assignments) != len(workload):
            raise ValueError(
                f"mapping covers {len(self.assignments)} DNNs, workload has "
                f"{len(workload)}"
            )
        for model, assignment in zip(workload, self.assignments):
            if len(assignment) != model.num_blocks:
                raise ValueError(
                    f"{model.name}: {len(assignment)} assignments for "
                    f"{model.num_blocks} blocks"
                )
            bad = [c for c in assignment if c >= num_components]
            if bad:
                raise ValueError(
                    f"{model.name}: component index {max(bad)} out of range "
                    f"(platform has {num_components})"
                )

    def stages(self) -> list[Stage]:
        """All pipeline stages across the workload, in DNN-then-block order."""
        out: list[Stage] = []
        for i, assignment in enumerate(self.assignments):
            out.extend(extract_stages(i, assignment))
        return out

    def num_stages(self) -> int:
        return len(self.stages())

    def __repr__(self) -> str:
        body = "; ".join("".join(str(c) for c in a) for a in self.assignments)
        return f"Mapping({body})"


def extract_stages(dnn_index: int, assignment: tuple[int, ...]) -> list[Stage]:
    """Split a per-block assignment into maximal same-component runs."""
    stages: list[Stage] = []
    start = 0
    for pos in range(1, len(assignment) + 1):
        if pos == len(assignment) or assignment[pos] != assignment[start]:
            stages.append(Stage(dnn_index, assignment[start], start, pos))
            start = pos
    return stages


def single_component_mapping(workload: list[ModelSpec],
                             component: int) -> Mapping:
    """Every DNN whole (unpartitioned) on one component."""
    return Mapping(tuple(
        tuple(component for _ in range(m.num_blocks)) for m in workload
    ))


def gpu_only_mapping(workload: list[ModelSpec], gpu_index: int = 0) -> Mapping:
    """The paper's baseline: every DNN whole on the GPU."""
    return single_component_mapping(workload, gpu_index)
