"""Random mapping generators.

Two distributions are used in the paper:

* :func:`random_partition_mapping` mirrors Sec. II's motivation study — each
  DNN is split into a small number of contiguous stages at random partition
  points and every stage is assigned a random component.
* :func:`uniform_block_mapping` draws every block's component independently;
  this spans the raw ``d^blocks`` space that MCTS rollouts explore.
"""

from __future__ import annotations

import numpy as np

from ..zoo.layers import ModelSpec
from .mapping import Mapping

__all__ = ["random_partition_mapping", "uniform_block_mapping"]


def _random_assignment(num_blocks: int, num_components: int,
                       rng: np.random.Generator, max_stages: int) -> tuple[int, ...]:
    n_stages = int(rng.integers(1, min(max_stages, num_blocks) + 1))
    if n_stages == 1:
        comp = int(rng.integers(num_components))
        return tuple([comp] * num_blocks)
    cuts = rng.choice(np.arange(1, num_blocks), size=n_stages - 1, replace=False)
    bounds = [0, *sorted(int(c) for c in cuts), num_blocks]
    assignment: list[int] = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        comp = int(rng.integers(num_components))
        assignment.extend([comp] * (hi - lo))
    return tuple(assignment)


def random_partition_mapping(workload: list[ModelSpec], num_components: int,
                             rng: np.random.Generator,
                             max_stages: int = 4) -> Mapping:
    """Split each DNN at random cut points into random-component stages."""
    if num_components < 1:
        raise ValueError("need at least one component")
    return Mapping(tuple(
        _random_assignment(m.num_blocks, num_components, rng, max_stages)
        for m in workload
    ))


def uniform_block_mapping(workload: list[ModelSpec], num_components: int,
                          rng: np.random.Generator) -> Mapping:
    """Draw every block's component independently and uniformly."""
    if num_components < 1:
        raise ValueError("need at least one component")
    return Mapping(tuple(
        tuple(int(c) for c in rng.integers(num_components, size=m.num_blocks))
        for m in workload
    ))
