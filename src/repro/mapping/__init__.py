"""Mapping representation, random generators, Q tensors, space accounting."""

from .mapping import (
    Mapping,
    Stage,
    extract_stages,
    gpu_only_mapping,
    single_component_mapping,
)
from .qtensor import (
    build_q_tensor,
    build_q_tensor_batch,
    layer_component_vector,
    scatter_layers,
)
from .random_map import random_partition_mapping, uniform_block_mapping
from .serialize import DeploymentRecord, load_deployment, save_deployment
from .space import log10_solution_space, solution_space_size

__all__ = [
    "Mapping",
    "Stage",
    "extract_stages",
    "gpu_only_mapping",
    "single_component_mapping",
    "random_partition_mapping",
    "uniform_block_mapping",
    "build_q_tensor",
    "build_q_tensor_batch",
    "layer_component_vector",
    "scatter_layers",
    "solution_space_size",
    "log10_solution_space",
    "DeploymentRecord",
    "save_deployment",
    "load_deployment",
]
