"""Comparison managers from the paper's evaluation (Sec. V)."""

from .ga import GAConfig, GeneticManager
from .gpu_baseline import GpuBaseline
from .mosaic import Mosaic
from .odmdef import Odmdef
from .omniboost import OmniBoost
from .profiling import LinearLatencyModel, block_features

__all__ = [
    "GAConfig",
    "GeneticManager",
    "GpuBaseline",
    "Mosaic",
    "Odmdef",
    "OmniBoost",
    "LinearLatencyModel",
    "block_features",
]
