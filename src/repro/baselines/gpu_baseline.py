"""The paper's baseline manager: every DNN whole on the GPU."""

from __future__ import annotations

import time

import numpy as np

from ..core.manager import Manager
from ..mapping.mapping import gpu_only_mapping
from ..sim.dynamic import MappingDecision
from ..zoo.layers import ModelSpec

__all__ = ["GpuBaseline"]


class GpuBaseline(Manager):
    """Maps everything onto the highest-performing component (index 0).

    Fastest possible decision, no use of the platform's heterogeneity —
    Sec. V-D's reference point.
    """

    name = "baseline"

    #: Modeled on-device decision latency: effectively instantaneous.
    MODELED_DECISION_S = 0.05

    def plan(self, workload: list[ModelSpec],
             priorities: np.ndarray | None = None) -> MappingDecision:
        t0 = time.perf_counter()
        if not workload:
            raise ValueError("workload must not be empty")
        mapping = gpu_only_mapping(workload)
        self.last_wall_seconds = time.perf_counter() - t0
        return MappingDecision(mapping, decision_seconds=self.MODELED_DECISION_S)
