"""OmniBoost baseline (Karatzas & Anagnostopoulos, DAC 2023).

OmniBoost pairs a learned CNN throughput estimator with MCTS, like RankMap,
but its reward is the plain *average* predicted throughput: no priority
weighting and no starvation disqualification.  It therefore happily trades
one DNN's survival for aggregate throughput — the behaviour the paper's
Figs. 7 and 8 document.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.manager import Manager
from ..core.predictor import RatePredictor
from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..search.mcts import MCTS, MCTSConfig
from ..sim.dynamic import MappingDecision
from ..zoo.layers import ModelSpec

__all__ = ["OmniBoost"]


class OmniBoost(Manager):
    """Estimator-guided MCTS maximising mean throughput."""

    name = "omniboost"

    def __init__(self, platform: Platform, predictor: RatePredictor,
                 mcts: MCTSConfig | None = None):
        self.platform = platform
        self.predictor = predictor
        self.mcts_config = mcts if mcts is not None else MCTSConfig()
        self._plan_counter = 0

    def plan(self, workload: list[ModelSpec],
             priorities: np.ndarray | None = None) -> MappingDecision:
        t0 = time.perf_counter()
        if not workload:
            raise ValueError("workload must not be empty")

        def evaluate(mappings: list[Mapping]) -> np.ndarray:
            rates = self.predictor.predict_batch(workload, mappings)
            return rates.mean(axis=1)

        self._plan_counter += 1
        cfg = MCTSConfig(
            iterations=self.mcts_config.iterations,
            rollouts_per_leaf=self.mcts_config.rollouts_per_leaf,
            exploration=self.mcts_config.exploration,
            seed=self.mcts_config.seed + self._plan_counter,
        )
        search = MCTS(workload, self.platform.num_components, evaluate, cfg)
        mapping, stats = search.search()
        self.last_wall_seconds = time.perf_counter() - t0
        modeled = stats.evaluations * self.predictor.board_latency_per_eval
        return MappingDecision(mapping, decision_seconds=modeled)
