"""Genetic-algorithm manager (Kang et al., IEEE Access 2020).

Evolves per-block component assignments with tournament selection, uniform
crossover and point mutation.  Fitness is the *measured* average workload
throughput: every chromosome is executed on the (simulated) board, which is
why the paper finds the GA the slowest manager — it cannot reuse past data
and pays a full measurement window per evaluation, every time the workload
changes.  No priorities, no starvation guard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.manager import Manager
from ..core.predictor import OraclePredictor
from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..sim.dynamic import MappingDecision
from ..zoo.layers import ModelSpec

__all__ = ["GeneticManager", "GAConfig"]


@dataclass(frozen=True)
class GAConfig:
    """Evolutionary hyper-parameters."""

    population: int = 20
    generations: int = 12
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.05
    elites: int = 2
    seed: int = 0


class GeneticManager(Manager):
    """GA over mappings with on-board fitness evaluation."""

    name = "ga"

    def __init__(self, platform: Platform, config: GAConfig | None = None):
        self.platform = platform
        self.config = config if config is not None else GAConfig()
        self.oracle = OraclePredictor(platform)
        self._plan_counter = 0

    # ------------------------------------------------------------------
    def plan(self, workload: list[ModelSpec],
             priorities: np.ndarray | None = None) -> MappingDecision:
        t0 = time.perf_counter()
        if not workload:
            raise ValueError("workload must not be empty")
        cfg = self.config
        self._plan_counter += 1
        rng = np.random.default_rng(cfg.seed + self._plan_counter)
        block_counts = [m.num_blocks for m in workload]
        genome_len = sum(block_counts)
        d = self.platform.num_components

        population = rng.integers(d, size=(cfg.population, genome_len))
        evaluations = 0

        def fitness(batch: np.ndarray) -> np.ndarray:
            nonlocal evaluations
            mappings = [self._decode(g, block_counts) for g in batch]
            rates = self.oracle.predict(workload, mappings)
            evaluations += len(mappings)
            return rates.mean(axis=1)  # average throughput objective

        scores = fitness(population)
        for _ in range(cfg.generations):
            order = np.argsort(-scores)
            population = population[order]
            scores = scores[order]
            next_pop = [population[i].copy() for i in range(cfg.elites)]
            while len(next_pop) < cfg.population:
                a = self._tournament(population, scores, rng)
                b = self._tournament(population, scores, rng)
                child = a.copy()
                if rng.random() < cfg.crossover_rate:
                    take_b = rng.random(genome_len) < 0.5
                    child[take_b] = b[take_b]
                mutate = rng.random(genome_len) < cfg.mutation_rate
                child[mutate] = rng.integers(d, size=int(mutate.sum()))
                next_pop.append(child)
            population = np.stack(next_pop)
            scores = fitness(population)

        best = population[int(np.argmax(scores))]
        self.last_wall_seconds = time.perf_counter() - t0
        modeled = evaluations * self.oracle.board_latency_per_eval
        return MappingDecision(self._decode(best, block_counts),
                               decision_seconds=modeled)

    # ------------------------------------------------------------------
    def _tournament(self, population: np.ndarray, scores: np.ndarray,
                    rng: np.random.Generator) -> np.ndarray:
        idx = rng.integers(len(population), size=self.config.tournament)
        return population[idx[np.argmax(scores[idx])]]

    @staticmethod
    def _decode(genome: np.ndarray, block_counts: list[int]) -> Mapping:
        assignments = []
        pos = 0
        for count in block_counts:
            assignments.append(tuple(int(g) for g in genome[pos : pos + count]))
            pos += count
        return Mapping(tuple(assignments))
