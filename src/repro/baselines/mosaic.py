"""MOSAIC baseline (Han et al., PACT 2019).

MOSAIC slices a model with a linear-regression cost model trained on
single-DNN profiles (correlating layer sizes with computational needs) and
distributes the slices across components.  As the paper notes, the model is
trained on single-DNN cases only: each DNN is sliced *independently* to
minimise its own predicted pipeline bottleneck, which systematically
overloads the GPU under multi-DNN workloads and supports no priorities.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from ..core.manager import Manager
from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..sim.dynamic import MappingDecision
from ..zoo.layers import ModelSpec
from ..zoo.registry import pool_models
from .profiling import LinearLatencyModel

__all__ = ["Mosaic"]


class Mosaic(Manager):
    """Linear-regression slicer, contention-blind across DNNs."""

    name = "mosaic"

    #: Modeled on-device decision latency (Sec. V-D: ~1 s).
    MODELED_DECISION_S = 0.9

    def __init__(self, platform: Platform, max_stages: int = 3,
                 profile_models: list[ModelSpec] | None = None,
                 noise_seed: int = 0):
        self.platform = platform
        self.max_stages = max_stages
        rng = np.random.default_rng(noise_seed)
        self.latency_model = LinearLatencyModel(platform).fit(
            profile_models or pool_models(),
            noise_rng=rng, noise_std=0.05,
        )

    # ------------------------------------------------------------------
    def plan(self, workload: list[ModelSpec],
             priorities: np.ndarray | None = None) -> MappingDecision:
        t0 = time.perf_counter()
        if not workload:
            raise ValueError("workload must not be empty")
        assignments = tuple(self._slice_single(m) for m in workload)
        self.last_wall_seconds = time.perf_counter() - t0
        return MappingDecision(Mapping(assignments),
                               decision_seconds=self.MODELED_DECISION_S)

    # ------------------------------------------------------------------
    def _slice_single(self, model: ModelSpec) -> tuple[int, ...]:
        """Best predicted single-DNN slicing (bottleneck-minimal)."""
        n = model.num_blocks
        d = self.platform.num_components
        pred = np.stack([
            self.latency_model.predict_blocks(model, c) for c in range(d)
        ])  # (components, blocks)
        prefix = np.concatenate([np.zeros((d, 1)), pred.cumsum(axis=1)],
                                axis=1)

        best_cost = np.inf
        best: tuple[int, ...] = tuple([0] * n)
        max_stages = min(self.max_stages, n, d)
        for n_stages in range(1, max_stages + 1):
            placements = list(itertools.permutations(range(d), n_stages))
            for cuts in itertools.combinations(range(1, n), n_stages - 1):
                bounds = (0, *cuts, n)
                segs = np.stack([
                    prefix[:, hi] - prefix[:, lo]
                    for lo, hi in zip(bounds[:-1], bounds[1:])
                ])  # (stages, components)
                # Pipeline slices must land on distinct components (slices
                # stacked on one device serialise); the single-DNN-optimal
                # choice minimises the predicted bottleneck stage.
                for comps in placements:
                    cost = max(segs[s, c] for s, c in enumerate(comps))
                    if cost < best_cost:
                        best_cost = cost
                        assignment = []
                        for (lo, hi), c in zip(zip(bounds[:-1], bounds[1:]),
                                               comps):
                            assignment.extend([c] * (hi - lo))
                        best = tuple(assignment)
        return best
