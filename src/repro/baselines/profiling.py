"""Shared profiling utilities for the regression-based baselines.

MOSAIC and ODMDEF both fit models on single-DNN profiling data.  On the
board this means running layer groups on each component and recording
latency; here the oracle is the hardware latency model, optionally with
measurement noise.
"""

from __future__ import annotations

import numpy as np

from ..hw.latency import block_latencies
from ..hw.platform import Platform
from ..zoo.layers import BlockSpec, ModelSpec

__all__ = ["block_features", "LinearLatencyModel"]

_NUM_FEATURES = 5


def block_features(block: BlockSpec) -> np.ndarray:
    """Regression features of a block (MOSAIC correlates layer input sizes
    with computational needs; we keep the same spirit)."""
    return np.array([
        1.0,
        np.log1p(block.macs),
        np.log1p(block.elem_ops),
        np.log1p(block.input_bytes + block.output_bytes),
        np.log1p(len(block.layers)),
    ])


class LinearLatencyModel:
    """Per-component least-squares latency predictor on block features."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self._coef: list[np.ndarray] = []

    def fit(self, models: list[ModelSpec],
            noise_rng: np.random.Generator | None = None,
            noise_std: float = 0.0) -> "LinearLatencyModel":
        """Fit one regressor per component on single-DNN block profiles."""
        feats = []
        for model in models:
            for block in model.blocks:
                feats.append(block_features(block))
        x = np.stack(feats)

        self._coef = []
        for c in range(self.platform.num_components):
            targets = []
            for model in models:
                targets.extend(block_latencies(model,
                                               self.platform.component(c)))
            y = np.log1p(np.asarray(targets))
            if noise_rng is not None and noise_std > 0:
                y = y + noise_rng.normal(0.0, noise_std, size=y.shape)
            coef, *_ = np.linalg.lstsq(x, y, rcond=None)
            self._coef.append(coef)
        return self

    def predict(self, block: BlockSpec, component: int) -> float:
        """Predicted latency (seconds) of ``block`` on ``component``."""
        if not self._coef:
            raise RuntimeError("fit() must be called before predict()")
        log_latency = float(block_features(block) @ self._coef[component])
        return float(np.expm1(np.clip(log_latency, 0.0, 20.0)))

    def predict_blocks(self, model: ModelSpec, component: int) -> np.ndarray:
        return np.array([self.predict(b, component) for b in model.blocks])
