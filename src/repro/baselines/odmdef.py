"""ODMDEF baseline (Lim & Kim, IEEE Access 2021).

ODMDEF combines a linear-regression latency model with a k-NN corrector
trained on a large profiling corpus, and allocates layer groups to cores
and accelerators adaptively.  Re-implemented per its published description:

1. *Profiling* — many random co-execution runs are measured (on the
   simulator here); each stage contributes a sample (block features,
   component, observed contention inflation over its predicted solo time).
2. *k-NN corrector* — at planning time the expected inflation of a block
   on a component is the mean inflation of its k nearest profiled samples.
3. *Allocation* — DNNs are processed in order; every block goes to the
   component with the least accumulated load after correction.  The method
   balances load but knows nothing about priorities, and its accuracy
   hinges on the profiling corpus (the paper's criticism).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.manager import Manager
from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..mapping.random_map import random_partition_mapping
from ..sim.demands import compute_stage_demands
from ..sim.dynamic import MappingDecision
from ..sim.engine import simulate
from ..zoo.layers import ModelSpec
from ..zoo.registry import MODEL_POOL, get_model, pool_models
from .profiling import LinearLatencyModel, block_features

__all__ = ["Odmdef"]


class Odmdef(Manager):
    """Linear regression + k-NN adaptive layer allocator."""

    name = "odmdef"

    #: Modeled on-device decision latency (Sec. V-D: ~1 s).
    MODELED_DECISION_S = 1.1

    def __init__(self, platform: Platform, k_neighbors: int = 7,
                 profiling_runs: int = 60, seed: int = 0):
        self.platform = platform
        self.k_neighbors = k_neighbors
        #: Per-DNN rates its regression+kNN core predicted for the last
        #: plan — the quantity whose accuracy hinges on the profiling
        #: corpus (scored by the sample-efficiency study).
        self.last_predicted_rates: np.ndarray | None = None
        rng = np.random.default_rng(seed)
        self.latency_model = LinearLatencyModel(platform).fit(
            pool_models(), noise_rng=rng, noise_std=0.05,
        )
        self._knn_features: list[np.ndarray] = []
        self._knn_inflation: list[float] = []
        self._knn_component: list[int] = []
        self._collect_profile(rng, profiling_runs)

    # ------------------------------------------------------------------
    def _collect_profile(self, rng: np.random.Generator, runs: int) -> None:
        """Measure random co-execution runs to learn contention inflation."""
        for _ in range(runs):
            k = int(rng.integers(2, 4))
            names = rng.choice(MODEL_POOL, size=k, replace=False)
            workload = [get_model(n) for n in names]
            mapping = random_partition_mapping(
                workload, self.platform.num_components, rng)
            result = simulate(workload, mapping, self.platform)
            demands = compute_stage_demands(workload, mapping, self.platform)
            for demand in demands:
                rate = result.rates[demand.dnn_index]
                solo_rate = 1.0 / demand.seconds_per_inference
                inflation = float(solo_rate / max(rate, 1e-9))
                stage = demand.stage
                model = workload[demand.dnn_index]
                feats = np.mean([
                    block_features(model.blocks[b])
                    for b in range(stage.block_start, stage.block_end)
                ], axis=0)
                self._knn_features.append(feats)
                self._knn_inflation.append(min(inflation, 50.0))
                self._knn_component.append(demand.component)
        self._knn_matrix = np.stack(self._knn_features)
        self._knn_inflation_arr = np.asarray(self._knn_inflation)
        self._knn_component_arr = np.asarray(self._knn_component)

    def _expected_inflation(self, feats: np.ndarray, component: int) -> float:
        mask = self._knn_component_arr == component
        if not mask.any():
            return 1.0
        candidates = self._knn_matrix[mask]
        dists = ((candidates - feats) ** 2).sum(axis=1)
        k = min(self.k_neighbors, len(dists))
        nearest = np.argpartition(dists, k - 1)[:k]
        return float(self._knn_inflation_arr[mask][nearest].mean())

    # ------------------------------------------------------------------
    def plan(self, workload: list[ModelSpec],
             priorities: np.ndarray | None = None) -> MappingDecision:
        t0 = time.perf_counter()
        if not workload:
            raise ValueError("workload must not be empty")
        load = np.zeros(self.platform.num_components)
        assignments: list[tuple[int, ...]] = []
        predicted_rates: list[float] = []
        for model in workload:
            assignment: list[int] = []
            predicted_seconds = 0.0
            for block in model.blocks:
                feats = block_features(block)
                costs = []
                for c in range(self.platform.num_components):
                    base = self.latency_model.predict(block, c)
                    inflation = self._expected_inflation(feats, c)
                    costs.append(load[c] + base * inflation)
                chosen = int(np.argmin(costs))
                base = self.latency_model.predict(block, chosen)
                corrected = base * self._expected_inflation(feats, chosen)
                load[chosen] += corrected
                predicted_seconds += corrected
                assignment.append(chosen)
            assignments.append(tuple(assignment))
            predicted_rates.append(1.0 / max(predicted_seconds, 1e-9))
        self.last_predicted_rates = np.asarray(predicted_rates)
        self.last_wall_seconds = time.perf_counter() - t0
        return MappingDecision(Mapping(tuple(assignments)),
                               decision_seconds=self.MODELED_DECISION_S)
