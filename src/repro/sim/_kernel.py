"""Scalar-trajectory solver kernel for the compiled backend.

:func:`solve_packed` is the damped fixed point of
:func:`repro.sim.contention.solve_steady_state` written as plain loops
over pre-packed flat arrays — the form `numba.njit` lowers to native
code without object-mode fallbacks.  One call solves a whole batch:
element ``b``'s stages live in ``offsets[b]:offsets[b+1]`` of the flat
per-stage arrays, and each element runs the *scalar* solver's exact
operation order (segment sums accumulate in stage order, the limit-cycle
window averages chronologically, damping applies in the same
multiply-then-add grouping), so the kernel's float trajectory is
bit-compatible with the scalar oracle — the same contract the numpy
batch path keeps, now locked by
``tests/property/test_backend_equivalence.py``.

The module stays importable (and the kernel runnable, slowly) without
numba: :mod:`repro.sim.backend` JITs :func:`solve_packed` when numba is
present and otherwise falls back to the cc-compiled C twin
(:mod:`repro.sim._cext`) or the numpy batch path.  Keeping the reference
logic executable in pure python is what lets the differential suite pin
the kernel's numerics even on hosts without any compiled provider.
"""

from __future__ import annotations

import numpy as np

__all__ = ["solve_packed"]


def solve_packed(offsets, comp_of, dnn_of, inflated, kernel_time, hol_k,
                 weights, num_dnns, num_comp, max_iter, damping, tol,
                 cycle_window, cycle_tol, cycle_burn_in,
                 out_rates, out_alloc, out_eff, out_util, out_iters,
                 out_conv):
    """Solve every packed element's steady-state fixed point in place.

    Inputs are the iteration-independent per-stage quantities the scalar
    solver derives before its loop (interference-inflated demands,
    per-launch kernel times, head-of-line coefficients times launch
    counts, sharing-bias entitlement weights), flattened across the
    batch with ``offsets`` delimiting each element.  Outputs land in the
    pre-allocated ``out_*`` arrays: per-element rates ``(B, N)``, flat
    per-stage allocations and effective demands, per-element component
    utilisation ``(B, C)``, iteration counts and convergence flags.
    """
    n_batch = offsets.shape[0] - 1
    for b in range(n_batch):
        s0 = offsets[b]
        s1 = offsets[b + 1]
        n_stages = s1 - s0

        # Entitlements: weight / per-component weight sum, accumulated in
        # stage order exactly like the scalar path's bincount.
        weight_sum = np.zeros(num_comp)
        for s in range(s0, s1):
            weight_sum[comp_of[s]] += weights[s]
        alloc = np.empty(n_stages)
        for s in range(n_stages):
            alloc[s] = weights[s0 + s] / weight_sum[comp_of[s0 + s]]

        has_hol = False
        for s in range(s0, s1):
            if hol_k[s] != 0.0:
                has_hol = True
                break

        rates = np.zeros(num_dnns)
        new_rates = np.empty(num_dnns)
        hol_wait = np.zeros(n_stages)
        blocked = np.empty(n_stages)
        stage_rate = np.empty(n_stages)
        cap_rate = np.empty(n_stages)
        ceiling_rate = np.empty(n_stages)
        target = np.empty(n_stages)
        wants_more = np.empty(n_stages, dtype=np.bool_)
        need = np.empty(n_stages)
        totals = np.empty(num_comp)
        sat_need = np.empty(num_comp)
        hot_weight = np.empty(num_comp)
        ring = np.empty((cycle_window, num_dnns))
        means = np.empty(num_dnns)

        iterations = 0
        converged = False
        for iteration in range(1, max_iter + 1):
            iterations = iteration
            if has_hol:
                # Head-of-line waiting from current utilisations, damped.
                for c in range(num_comp):
                    totals[c] = 0.0
                for s in range(n_stages):
                    blocked[s] = (rates[dnn_of[s0 + s]] * inflated[s0 + s]
                                  * kernel_time[s0 + s])
                    totals[comp_of[s0 + s]] += blocked[s]
                for s in range(n_stages):
                    new_wait = hol_k[s0 + s] \
                        * (totals[comp_of[s0 + s]] - blocked[s])
                    hol_wait[s] = damping * hol_wait[s] \
                        + (1.0 - damping) * new_wait

            # Per-stage rate: capacity share vs serial latency ceiling;
            # per-DNN rate: slowest stage (pipeline bottleneck).
            for d in range(num_dnns):
                new_rates[d] = np.inf
            for s in range(n_stages):
                cap_rate[s] = alloc[s] / inflated[s0 + s]
                ceiling_rate[s] = 1.0 / (inflated[s0 + s] + hol_wait[s])
                sr = cap_rate[s] if cap_rate[s] < ceiling_rate[s] \
                    else ceiling_rate[s]
                stage_rate[s] = sr
                if sr < new_rates[dnn_of[s0 + s]]:
                    new_rates[dnn_of[s0 + s]] = sr
            for d in range(num_dnns):
                if np.isinf(new_rates[d]):
                    new_rates[d] = 0.0

            # Water-fill each component (same satisfied/hungry split and
            # stage-order accumulation as the scalar path).
            for c in range(num_comp):
                sat_need[c] = 0.0
                hot_weight[c] = 0.0
            for s in range(n_stages):
                need[s] = new_rates[dnn_of[s0 + s]] * inflated[s0 + s]
                limiting = stage_rate[s] \
                    <= new_rates[dnn_of[s0 + s]] * (1.0 + 1e-9)
                wants_more[s] = limiting and cap_rate[s] <= ceiling_rate[s]
                if wants_more[s]:
                    hot_weight[comp_of[s0 + s]] += weights[s0 + s]
                else:
                    sat_need[comp_of[s0 + s]] += need[s]
            for s in range(n_stages):
                c = comp_of[s0 + s]
                if hot_weight[c] > 0.0:
                    if wants_more[s]:
                        free = 1.0 - sat_need[c]
                        if free < 0.0:
                            free = 0.0
                        target[s] = free * weights[s0 + s] / hot_weight[c]
                    else:
                        target[s] = need[s]
                else:
                    target[s] = alloc[s]

            # Convergence (identical test to the scalar break).
            max_rate = 0.0
            max_diff = 0.0
            for d in range(num_dnns):
                if new_rates[d] > max_rate:
                    max_rate = new_rates[d]
                diff = abs(new_rates[d] - rates[d])
                if diff > max_diff:
                    max_diff = diff
                rates[d] = new_rates[d]
            floor = max_rate if max_rate > 1e-12 else 1e-12
            if max_diff <= tol * floor:
                converged = True
                break

            # Limit-cycle resolution: keep the last `cycle_window`
            # iterates; from the burn-in on, a window whose relative
            # amplitude is small resolves to its chronological mean.
            if iteration > cycle_burn_in - cycle_window:
                row = (iteration - 1) % cycle_window
                for d in range(num_dnns):
                    ring[row, d] = rates[d]
            if iteration >= cycle_burn_in:
                worst = 0.0
                for d in range(num_dnns):
                    first = ring[(iteration - cycle_window) % cycle_window, d]
                    lo = first
                    hi = first
                    mean = first
                    for k in range(iteration - cycle_window + 1, iteration):
                        v = ring[k % cycle_window, d]
                        if v < lo:
                            lo = v
                        if v > hi:
                            hi = v
                        mean = mean + v
                    mean /= cycle_window
                    means[d] = mean
                    mfloor = mean if mean > 1e-12 else 1e-12
                    ratio = (hi - lo) / mfloor
                    if ratio > worst:
                        worst = ratio
                if worst <= cycle_tol:
                    for d in range(num_dnns):
                        rates[d] = means[d]
                    converged = True
                    break

            for s in range(n_stages):
                alloc[s] = damping * alloc[s] + (1.0 - damping) * target[s]

        # Finalize this element into the output buffers.
        for d in range(num_dnns):
            out_rates[b, d] = rates[d]
        for c in range(num_comp):
            out_util[b, c] = 0.0
        for s in range(n_stages):
            out_alloc[s0 + s] = alloc[s]
            out_eff[s0 + s] = inflated[s0 + s] + hol_wait[s]
            out_util[b, comp_of[s0 + s]] += rates[dnn_of[s0 + s]] \
                * inflated[s0 + s]
        out_iters[b] = iterations
        out_conv[b] = converged
