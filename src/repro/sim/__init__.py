"""Execution simulator (the paper's board-measurement substitute)."""

from .backend import (
    BACKENDS,
    compiled_provider,
    normalize_backend,
    solve_batch_compiled,
)
from .cache import EvaluationCache, platform_fingerprint
from .contention import (
    ContentionSolution,
    solve_steady_state,
    solve_steady_state_batch,
)
from .demands import StageDemand, compute_stage_demands
from .des import DesConfig, DesResult, simulate_des
from .dynamic import (
    MappingDecision,
    Planner,
    ScenarioEvent,
    Segment,
    Timeline,
    arrival,
    departure,
    priority_change,
    restrict_mapping,
    run_dynamic_scenario,
)
from .engine import SimResult, simulate, simulate_batch

__all__ = [
    "BACKENDS",
    "normalize_backend",
    "compiled_provider",
    "solve_batch_compiled",
    "ContentionSolution",
    "solve_steady_state",
    "solve_steady_state_batch",
    "StageDemand",
    "compute_stage_demands",
    "SimResult",
    "simulate",
    "simulate_batch",
    "EvaluationCache",
    "platform_fingerprint",
    "restrict_mapping",
    "DesConfig",
    "DesResult",
    "simulate_des",
    "MappingDecision",
    "Planner",
    "ScenarioEvent",
    "Segment",
    "Timeline",
    "arrival",
    "departure",
    "priority_change",
    "run_dynamic_scenario",
]
