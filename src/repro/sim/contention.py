"""Steady-state contention solver.

Models how co-resident pipeline stages share each computing component:

* **Interference** — every demand on a component with ``n`` resident stages
  is inflated by ``1 + α·(n−1)^β`` (cache/memory-system thrashing; the GPU's
  α is the largest, which is what collapses the all-on-GPU baseline).
* **Scheduling** — each component divides its time between resident stages
  with entitlements ∝ ``demand^κ`` (``κ = sharing_bias``): fair processor
  sharing on the CPU clusters, service-time-biased sharing on the GPU whose
  non-preemptive command queues favour long-kernel contexts.
* **Head-of-line blocking** — on a non-preemptive component every kernel
  launch of a stage may have to wait behind a co-resident's running kernel:
  a stage with ``L`` launches pays ``hol · L · Σ_t u_t · k_t`` extra seconds
  per inference, where ``u_t`` is the co-resident's utilisation and ``k_t``
  its mean kernel time.  Because the blocking term scales with utilisation
  it is solved inside the fixed point; it is the board effect that starves
  many-kernel light DNNs (SqueezeNet) sharing a saturated GPU with
  long-kernel heavy DNNs (VGG) — the paper's baseline pathology.
* **Work conservation** — a stage that is not its DNN's bottleneck only
  consumes what the pipeline feeds it; the surplus is redistributed to
  co-resident stages that can use it.

The resulting allocation is the fixed point of a damped iteration:
``rate_i = min_s alloc_s / demand_s`` coupled with per-component
water-filling of allocations.  Every DNN's steady-state throughput is its
bottleneck stage's rate, the classic pipeline result.

Two entry points share the same arithmetic:

* :func:`solve_steady_state` — one mapping, the paper-faithful reference.
* :func:`solve_steady_state_batch` — B mappings solved simultaneously on
  stacked arrays with per-mapping convergence masking.  Every per-element
  operation (segment sums, water-filling, damping, cycle averaging) is
  performed in the same order as the scalar path, so for each element the
  batch solver follows the *identical* float trajectory and the two paths
  agree to machine precision (the regression harness in
  ``tests/property/test_batch_equivalence.py`` locks this in at 1e-9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.platform import Platform
from .demands import StageDemand

__all__ = [
    "ContentionSolution",
    "solve_steady_state",
    "solve_steady_state_batch",
]

_MAX_ITER = 800
_DAMPING = 0.85
_TOL = 1e-8
# The discrete bottleneck-set switching can produce small limit cycles; a
# cycle with relative amplitude below this is resolved to its time average
# (the physical system time-shares through the same oscillation).
_CYCLE_WINDOW = 40
_CYCLE_TOL = 0.03
_CYCLE_BURN_IN = 150


@dataclass(frozen=True)
class ContentionSolution:
    """Solver output: per-DNN rates plus diagnostics."""

    rates: np.ndarray              # inferences/s per DNN
    stage_allocations: np.ndarray  # component-time fraction per stage
    stage_demands: np.ndarray      # effective (interference-inflated) demands
    component_utilisation: np.ndarray
    iterations: int
    converged: bool


def _segment_sum(values: np.ndarray, segments: np.ndarray,
                 num_segments: int) -> np.ndarray:
    """Sum ``values`` into ``num_segments`` buckets, sequentially in index
    order.  Shared by the scalar and batch paths so both accumulate with the
    same rounding (``bincount`` walks the input in order, like ``add.at``,
    but in a single C pass)."""
    return np.bincount(segments, weights=values, minlength=num_segments)


def _context_counts(comp_of: np.ndarray, dnn_of: np.ndarray,
                    num_components: int, num_dnns: int) -> np.ndarray:
    """Distinct resident DNN contexts per component."""
    present = np.zeros((num_components, num_dnns), dtype=bool)
    present[comp_of, dnn_of] = True
    return present.sum(axis=1)


def _interference_table(platform: Platform, num_dnns: int) -> np.ndarray:
    """``gamma[c, n]`` = demand inflation of component ``c`` with ``n``
    resident DNN contexts; indexing the table reproduces the scalar calls
    to :meth:`ComputeComponent.interference_factor` exactly."""
    table = np.empty((platform.num_components, num_dnns + 1))
    for c in range(platform.num_components):
        comp = platform.component(c)
        for n in range(num_dnns + 1):
            table[c, n] = comp.interference_factor(n)
    return table


def _empty_solution(num_dnns: int, platform: Platform) -> ContentionSolution:
    return ContentionSolution(
        rates=np.zeros(num_dnns), stage_allocations=np.zeros(0),
        stage_demands=np.zeros(0),
        component_utilisation=np.zeros(platform.num_components),
        iterations=0, converged=True,
    )


def solve_steady_state(demands: list[StageDemand], num_dnns: int,
                       platform: Platform,
                       max_iter: int = _MAX_ITER) -> ContentionSolution:
    """Solve steady-state per-DNN inference rates for one mapping.

    ``max_iter`` caps the fixed-point iteration (the default is the
    production budget; tests lower it to exercise the non-converged path).
    """
    if not demands:
        return _empty_solution(num_dnns, platform)

    n_stages = len(demands)
    num_comp = platform.num_components
    comp_of = np.array([d.component for d in demands])
    dnn_of = np.array([d.dnn_index for d in demands])
    base_demand = np.array([d.seconds_per_inference for d in demands])
    if np.any(base_demand <= 0):
        raise ValueError("stage demands must be positive")

    # Interference-inflated demands: thrashing grows with the number of
    # distinct DNN contexts resident on the component.
    gamma_table = _interference_table(platform, num_dnns)
    contexts = _context_counts(comp_of, dnn_of, num_comp, num_dnns)
    inflated = base_demand * gamma_table[comp_of, contexts[comp_of]]

    kernels = np.array([max(1, d.num_kernels) for d in demands], dtype=np.float64)
    kernel_time = base_demand / kernels
    hol_coeff = np.array([
        platform.component(int(c)).hol_blocking for c in comp_of
    ])

    # Scheduling entitlements: weight ∝ demand^κ per component.
    kappa = np.array([platform.component(c).sharing_bias
                      for c in range(num_comp)])
    weights = inflated ** kappa[comp_of]
    alloc = weights / _segment_sum(weights, comp_of, num_comp)[comp_of]

    rates = np.zeros(num_dnns)
    hol_wait = np.zeros(n_stages)
    history: list[np.ndarray] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        # Head-of-line waiting per inference, from current utilisations:
        # each launch waits behind co-residents in proportion to how busy
        # they keep the component.
        if hol_coeff.any():
            busy = rates[dnn_of] * inflated          # per-stage utilisation
            blocked = busy * kernel_time             # u_t * k_t
            totals = _segment_sum(blocked, comp_of, num_comp)
            new_wait = hol_coeff * kernels * (totals[comp_of] - blocked)
            # Damped so the rate<->waiting feedback loop cannot oscillate.
            hol_wait = _DAMPING * hol_wait + (1.0 - _DAMPING) * new_wait

        # A stage's rate is capped by its capacity share and by the serial
        # latency ceiling (service + waiting); a DNN runs at its slowest
        # stage's rate (pipeline bottleneck).
        cap_rate = alloc / inflated
        ceiling_rate = 1.0 / (inflated + hol_wait)
        stage_rate = np.minimum(cap_rate, ceiling_rate)
        new_rates = np.full(num_dnns, np.inf)
        np.minimum.at(new_rates, dnn_of, stage_rate)
        new_rates[np.isinf(new_rates)] = 0.0  # DNNs with no stages

        # Water-fill each component: non-bottleneck stages keep only what
        # they use; capacity-limited bottleneck stages split the remainder
        # by entitlement.  Ceiling-limited stages gain nothing from more
        # capacity, so they are treated as satisfied.  Components with no
        # capacity-hungry stage keep their allocations as-is.
        need = new_rates[dnn_of] * inflated
        limiting = stage_rate <= new_rates[dnn_of] * (1 + 1e-9)
        wants_more = limiting & (cap_rate <= ceiling_rate)
        sat_need = _segment_sum(np.where(wants_more, 0.0, need),
                                comp_of, num_comp)
        hot_weight = _segment_sum(np.where(wants_more, weights, 0.0),
                                  comp_of, num_comp)
        has_hot = hot_weight[comp_of] > 0.0
        free = np.maximum(1.0 - sat_need, 0.0)
        target = np.where(
            has_hot,
            np.where(wants_more,
                     free[comp_of] * weights
                     / np.where(hot_weight[comp_of] > 0.0,
                                hot_weight[comp_of], 1.0),
                     need),
            alloc,
        )

        max_rate = new_rates.max() if new_rates.size else 0.0
        if np.abs(new_rates - rates).max() <= _TOL * max(max_rate, 1e-12):
            rates = new_rates
            converged = True
            break
        rates = new_rates
        # Only the last _CYCLE_WINDOW iterates can ever be inspected, and
        # the first inspection happens at _CYCLE_BURN_IN.
        if iterations > _CYCLE_BURN_IN - _CYCLE_WINDOW:
            history.append(new_rates.copy())
        if len(history) > _CYCLE_WINDOW:
            history.pop(0)
        if iterations >= _CYCLE_BURN_IN and len(history) == _CYCLE_WINDOW:
            window = np.stack(history)
            span = window.max(axis=0) - window.min(axis=0)
            floor = np.maximum(window.mean(axis=0), 1e-12)
            if (span / floor).max() <= _CYCLE_TOL:
                rates = window.mean(axis=0)
                converged = True
                break
        alloc = _DAMPING * alloc + (1.0 - _DAMPING) * target

    utilisation = _segment_sum(rates[dnn_of] * inflated, comp_of, num_comp)

    return ContentionSolution(
        rates=rates, stage_allocations=alloc,
        stage_demands=inflated + hol_wait,
        component_utilisation=utilisation, iterations=iterations,
        converged=converged,
    )


def solve_steady_state_batch(demand_sets: list[list[StageDemand]],
                             num_dnns: int, platform: Platform,
                             max_iter: int = _MAX_ITER,
                             backend: str = "numpy",
                             ) -> list[ContentionSolution]:
    """Solve B mappings' fixed points simultaneously.

    All mappings must cover the same workload (``num_dnns`` DNNs on
    ``platform``); they may have different stage counts — shorter elements
    are padded and masked.  Each element's trajectory is arithmetically
    identical to :func:`solve_steady_state` on its demands alone: padded
    lanes contribute exact zeros to every segment sum and ``+inf`` to every
    min-reduction, convergence and the limit-cycle resolution are tracked
    per element, and elements that converge are *compacted out* of the
    stacked arrays so stragglers keep iterating on ever-smaller batches.

    ``backend`` selects the implementation (:mod:`repro.sim.backend`):
    ``"numpy"`` runs this vectorized path, ``"compiled"`` dispatches to
    the native kernel (numba or the cc-built C twin, numpy fallback with
    a one-time warning when neither is available).  Unknown names raise
    :class:`ValueError`.
    """
    if backend != "numpy":
        from .backend import normalize_backend, solve_batch_compiled
        if normalize_backend(backend) == "compiled":
            return solve_batch_compiled(demand_sets, num_dnns, platform,
                                        max_iter)
    n_total = len(demand_sets)
    if n_total == 0:
        return []

    num_comp = platform.num_components
    stage_counts = [len(d) for d in demand_sets]
    s_max = max(stage_counts)
    if s_max == 0:
        return [_empty_solution(num_dnns, platform) for _ in demand_sets]

    # ---- stacked, padded per-stage arrays (non-empty elements only) ---
    live = np.array([b for b, d in enumerate(demand_sets) if d])
    n_live = len(live)
    widths = np.array([stage_counts[b] for b in live])
    valid = np.arange(s_max)[None, :] < widths[:, None]
    comp_of = np.zeros((n_live, s_max), dtype=np.int64)
    dnn_of = np.zeros((n_live, s_max), dtype=np.int64)
    base_demand = np.ones((n_live, s_max))
    kernels = np.ones((n_live, s_max))
    for row, b in enumerate(live):
        for s, d in enumerate(demand_sets[b]):
            comp_of[row, s] = d.component
            dnn_of[row, s] = d.dnn_index
            base_demand[row, s] = d.seconds_per_inference
            kernels[row, s] = max(1, d.num_kernels)
    if np.any(base_demand[valid] <= 0):
        raise ValueError("stage demands must be positive")

    # ---- interference, entitlements, HoL parameters -------------------
    gamma_table = _interference_table(platform, num_dnns)
    b_idx, s_idx = np.nonzero(valid)
    present = np.zeros((n_live, num_comp, num_dnns), dtype=bool)
    present[b_idx, comp_of[b_idx, s_idx], dnn_of[b_idx, s_idx]] = True
    contexts = present.sum(axis=2)                       # (B, C)
    row2d = np.arange(n_live)[:, None]
    gamma = gamma_table[comp_of, contexts[row2d, comp_of]]
    inflated = base_demand * gamma

    # Padded lanes: kernel_time 0 so they contribute exact zeros to the
    # HoL segment sums; hol_coeff/weights 0 likewise.
    kernel_time = np.where(valid, base_demand / kernels, 0.0)
    hol_by_comp = np.array([platform.component(c).hol_blocking
                            for c in range(num_comp)])
    hol_k = np.where(valid, hol_by_comp[comp_of], 0.0) * kernels
    kappa = np.array([platform.component(c).sharing_bias
                      for c in range(num_comp)])
    weights = np.where(valid, inflated ** kappa[comp_of], 0.0)

    def per_component_sum(values: np.ndarray, seg: np.ndarray,
                          n_rows: int) -> np.ndarray:
        return _segment_sum(values.ravel(), seg,
                            n_rows * num_comp).reshape(n_rows, num_comp)

    # Flattened segment ids: bucket (b, c) -> b * C + c, bucket (b, n) ->
    # b * N + n.  ``bincount``/``minimum.at`` walk the flattened arrays in
    # b-major order, so each element accumulates its own buckets in the
    # same stage order as the scalar path.
    def rebuild_index(n_rows: int) -> tuple:
        rows = np.arange(n_rows)[:, None]
        return (rows,
                (rows * num_comp + comp_of).ravel(),
                (rows * num_dnns + dnn_of).ravel(),
                np.empty(n_rows * num_dnns))

    row2d, comp_seg, dnn_seg, nr_flat = rebuild_index(n_live)
    weight_sum = per_component_sum(weights, comp_seg, n_live)
    ws_stage = weight_sum[row2d, comp_of]
    alloc = np.where(valid, weights / np.where(ws_stage > 0.0, ws_stage, 1.0),
                     0.0)

    # ---- outputs (indexed by original batch position) -----------------
    out_rates = np.zeros((n_total, num_dnns))
    out_alloc: list = [None] * n_total
    out_eff: list = [None] * n_total
    out_util = np.zeros((n_total, num_comp))
    out_iters = np.zeros(n_total, dtype=int)
    out_conv = np.zeros(n_total, dtype=bool)

    def finalize(mask: np.ndarray, rates: np.ndarray, iteration: int,
                 conv: bool) -> None:
        """Record final state of the masked rows into the output buffers."""
        for row in np.nonzero(mask)[0]:
            b = live[row]
            count = stage_counts[b]
            out_rates[b] = rates[row]
            out_alloc[b] = alloc[row, :count].copy()
            eff = inflated[row, :count] + hol_wait[row, :count]
            out_eff[b] = eff
            used = rates[row][dnn_of[row, :count]] * inflated[row, :count]
            out_util[b] = _segment_sum(used, comp_of[row, :count], num_comp)
            out_iters[b] = iteration
            out_conv[b] = conv

    # ---- damped fixed point with per-element freeze-and-compact -------
    rates = np.zeros((n_live, num_dnns))
    hol_wait = np.zeros((n_live, s_max))
    ring: np.ndarray | None = None       # (W, B, N) rolling iterate window
    append_from = _CYCLE_BURN_IN - _CYCLE_WINDOW
    iteration = 0
    for iteration in range(1, max_iter + 1):
        # Head-of-line waiting (exact zeros wherever hol_coeff is zero,
        # matching the scalar path's skipped update).
        blocked = rates[row2d, dnn_of] * inflated * kernel_time
        totals = per_component_sum(blocked, comp_seg, len(live))
        new_wait = hol_k * (totals[row2d, comp_of] - blocked)
        hol_wait *= _DAMPING
        hol_wait += (1.0 - _DAMPING) * new_wait

        cap_rate = alloc / inflated
        ceiling_rate = 1.0 / (inflated + hol_wait)
        stage_rate = np.where(valid, np.minimum(cap_rate, ceiling_rate),
                              np.inf)
        nr_flat.fill(np.inf)
        np.minimum.at(nr_flat, dnn_seg, stage_rate.ravel())
        new_rates = nr_flat.reshape(len(live), num_dnns).copy()
        new_rates[np.isinf(new_rates)] = 0.0

        # Water-filling, per (element, component).
        rate_of_stage = new_rates[row2d, dnn_of]
        need = rate_of_stage * inflated
        limiting = stage_rate <= rate_of_stage * (1 + 1e-9)
        wants_more = valid & limiting & (cap_rate <= ceiling_rate)
        sat_need = per_component_sum(
            np.where(valid & ~wants_more, need, 0.0), comp_seg, len(live))
        hot_weight = per_component_sum(
            np.where(wants_more, weights, 0.0), comp_seg, len(live))
        hot_w_stage = hot_weight[row2d, comp_of]
        has_hot = hot_w_stage > 0.0
        free = np.maximum(1.0 - sat_need, 0.0)
        target = np.where(
            has_hot,
            np.where(wants_more,
                     free[row2d, comp_of] * weights
                     / np.where(has_hot, hot_w_stage, 1.0),
                     need),
            alloc,
        )

        # Per-element convergence (same test as the scalar break).
        max_rate = np.maximum(new_rates.max(axis=1), 1e-12)
        diff = np.abs(new_rates - rates).max(axis=1)
        conv_now = diff <= _TOL * max_rate
        rates = new_rates

        if iteration > append_from:
            if ring is None:
                ring = np.empty((_CYCLE_WINDOW, len(live), num_dnns))
            ring[(iteration - 1) % _CYCLE_WINDOW] = new_rates
        if iteration >= _CYCLE_BURN_IN:
            order = np.arange(iteration - _CYCLE_WINDOW, iteration) \
                % _CYCLE_WINDOW
            window = ring[order]                         # chronological
            span = window.max(axis=0) - window.min(axis=0)
            floor = np.maximum(window.mean(axis=0), 1e-12)
            cyclic = ~conv_now & ((span / floor).max(axis=1) <= _CYCLE_TOL)
            if cyclic.any():
                rates = np.where(cyclic[:, None], window.mean(axis=0), rates)
                conv_now = conv_now | cyclic

        if conv_now.any():
            finalize(conv_now, rates, iteration, True)
            keep = ~conv_now
            live = live[keep]
            if live.size == 0:
                break
            valid = valid[keep]
            comp_of = comp_of[keep]
            dnn_of = dnn_of[keep]
            inflated = inflated[keep]
            kernel_time = kernel_time[keep]
            hol_k = hol_k[keep]
            weights = weights[keep]
            alloc = alloc[keep]
            hol_wait = hol_wait[keep]
            rates = rates[keep]
            target = target[keep]
            if ring is not None:
                ring = ring[:, keep, :]
            row2d, comp_seg, dnn_seg, nr_flat = rebuild_index(len(live))

        alloc *= _DAMPING
        alloc += (1.0 - _DAMPING) * target

    if live.size:
        finalize(np.ones(len(live), dtype=bool), rates, iteration, False)

    solutions: list[ContentionSolution] = []
    for b, count in enumerate(stage_counts):
        if count == 0:
            solutions.append(_empty_solution(num_dnns, platform))
            continue
        solutions.append(ContentionSolution(
            rates=out_rates[b], stage_allocations=out_alloc[b],
            stage_demands=out_eff[b], component_utilisation=out_util[b],
            iterations=int(out_iters[b]), converged=bool(out_conv[b]),
        ))
    return solutions
