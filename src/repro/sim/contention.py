"""Steady-state contention solver.

Models how co-resident pipeline stages share each computing component:

* **Interference** — every demand on a component with ``n`` resident stages
  is inflated by ``1 + α·(n−1)^β`` (cache/memory-system thrashing; the GPU's
  α is the largest, which is what collapses the all-on-GPU baseline).
* **Scheduling** — each component divides its time between resident stages
  with entitlements ∝ ``demand^κ`` (``κ = sharing_bias``): fair processor
  sharing on the CPU clusters, service-time-biased sharing on the GPU whose
  non-preemptive command queues favour long-kernel contexts.
* **Head-of-line blocking** — on a non-preemptive component every kernel
  launch of a stage may have to wait behind a co-resident's running kernel:
  a stage with ``L`` launches pays ``hol · L · Σ_t u_t · k_t`` extra seconds
  per inference, where ``u_t`` is the co-resident's utilisation and ``k_t``
  its mean kernel time.  Because the blocking term scales with utilisation
  it is solved inside the fixed point; it is the board effect that starves
  many-kernel light DNNs (SqueezeNet) sharing a saturated GPU with
  long-kernel heavy DNNs (VGG) — the paper's baseline pathology.
* **Work conservation** — a stage that is not its DNN's bottleneck only
  consumes what the pipeline feeds it; the surplus is redistributed to
  co-resident stages that can use it.

The resulting allocation is the fixed point of a damped iteration:
``rate_i = min_s alloc_s / demand_s`` coupled with per-component
water-filling of allocations.  Every DNN's steady-state throughput is its
bottleneck stage's rate, the classic pipeline result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.platform import Platform
from .demands import StageDemand

__all__ = ["ContentionSolution", "solve_steady_state"]

_MAX_ITER = 800
_DAMPING = 0.85
_TOL = 1e-8
# The discrete bottleneck-set switching can produce small limit cycles; a
# cycle with relative amplitude below this is resolved to its time average
# (the physical system time-shares through the same oscillation).
_CYCLE_WINDOW = 40
_CYCLE_TOL = 0.03
_CYCLE_BURN_IN = 150


@dataclass(frozen=True)
class ContentionSolution:
    """Solver output: per-DNN rates plus diagnostics."""

    rates: np.ndarray              # inferences/s per DNN
    stage_allocations: np.ndarray  # component-time fraction per stage
    stage_demands: np.ndarray      # effective (interference-inflated) demands
    component_utilisation: np.ndarray
    iterations: int
    converged: bool


def solve_steady_state(demands: list[StageDemand], num_dnns: int,
                       platform: Platform) -> ContentionSolution:
    """Solve steady-state per-DNN inference rates for one mapping."""
    if not demands:
        return ContentionSolution(
            rates=np.zeros(num_dnns), stage_allocations=np.zeros(0),
            stage_demands=np.zeros(0),
            component_utilisation=np.zeros(platform.num_components),
            iterations=0, converged=True,
        )

    n_stages = len(demands)
    comp_of = np.array([d.component for d in demands])
    dnn_of = np.array([d.dnn_index for d in demands])
    base_demand = np.array([d.seconds_per_inference for d in demands])
    if np.any(base_demand <= 0):
        raise ValueError("stage demands must be positive")

    # Interference-inflated demands: thrashing grows with the number of
    # distinct DNN contexts resident on the component.
    inflated = base_demand.copy()
    for c in range(platform.num_components):
        mask = comp_of == c
        if not mask.any():
            continue
        contexts = len(set(dnn_of[mask].tolist()))
        gamma = platform.component(c).interference_factor(contexts)
        inflated[mask] *= gamma

    kernels = np.array([max(1, d.num_kernels) for d in demands], dtype=np.float64)
    kernel_time = base_demand / kernels
    hol_coeff = np.array([
        platform.component(int(c)).hol_blocking for c in comp_of
    ])

    # Scheduling entitlements: weight ∝ demand^κ per component.
    weights = np.empty(n_stages)
    for c in range(platform.num_components):
        mask = comp_of == c
        if not mask.any():
            continue
        kappa = platform.component(c).sharing_bias
        weights[mask] = inflated[mask] ** kappa

    alloc = np.empty(n_stages)
    for c in range(platform.num_components):
        mask = comp_of == c
        if mask.any():
            alloc[mask] = weights[mask] / weights[mask].sum()

    rates = np.zeros(num_dnns)
    hol_wait = np.zeros(n_stages)
    history: list[np.ndarray] = []
    converged = False
    iterations = 0
    for iterations in range(1, _MAX_ITER + 1):
        # Head-of-line waiting per inference, from current utilisations:
        # each launch waits behind co-residents in proportion to how busy
        # they keep the component.
        if hol_coeff.any():
            busy = rates[dnn_of] * inflated          # per-stage utilisation
            blocked = busy * kernel_time             # u_t * k_t
            new_wait = np.zeros(n_stages)
            for c in range(platform.num_components):
                mask = comp_of == c
                if not mask.any():
                    continue
                total = blocked[mask].sum()
                new_wait[mask] = (
                    hol_coeff[mask] * kernels[mask] * (total - blocked[mask])
                )
            # Damped so the rate<->waiting feedback loop cannot oscillate.
            hol_wait = _DAMPING * hol_wait + (1.0 - _DAMPING) * new_wait

        # A stage's rate is capped by its capacity share and by the serial
        # latency ceiling (service + waiting); a DNN runs at its slowest
        # stage's rate (pipeline bottleneck).
        cap_rate = alloc / inflated
        ceiling_rate = 1.0 / (inflated + hol_wait)
        stage_rate = np.minimum(cap_rate, ceiling_rate)
        new_rates = np.full(num_dnns, np.inf)
        np.minimum.at(new_rates, dnn_of, stage_rate)
        new_rates[np.isinf(new_rates)] = 0.0  # DNNs with no stages

        # Water-fill each component: non-bottleneck stages keep only what
        # they use; capacity-limited bottleneck stages split the remainder
        # by entitlement.  Ceiling-limited stages gain nothing from more
        # capacity, so they are treated as satisfied.
        target = alloc.copy()
        need = new_rates[dnn_of] * inflated
        limiting = stage_rate <= new_rates[dnn_of] * (1 + 1e-9)
        wants_more = limiting & (cap_rate <= ceiling_rate)
        for c in range(platform.num_components):
            mask = comp_of == c
            if not mask.any():
                continue
            hot = mask & wants_more
            sat = mask & ~wants_more
            if hot.any():
                free = 1.0 - need[sat].sum()
                target[sat] = need[sat]
                target[hot] = max(free, 0.0) * weights[hot] / weights[hot].sum()
            # If nothing here is capacity-hungry, allocations stay as-is.

        max_rate = new_rates.max() if new_rates.size else 0.0
        if np.abs(new_rates - rates).max() <= _TOL * max(max_rate, 1e-12):
            rates = new_rates
            converged = True
            break
        rates = new_rates
        history.append(new_rates.copy())
        if len(history) > _CYCLE_WINDOW:
            history.pop(0)
        if iterations >= _CYCLE_BURN_IN and len(history) == _CYCLE_WINDOW:
            window = np.stack(history)
            span = window.max(axis=0) - window.min(axis=0)
            floor = np.maximum(window.mean(axis=0), 1e-12)
            if (span / floor).max() <= _CYCLE_TOL:
                rates = window.mean(axis=0)
                converged = True
                break
        alloc = _DAMPING * alloc + (1.0 - _DAMPING) * target

    utilisation = np.zeros(platform.num_components)
    used = rates[dnn_of] * inflated
    np.add.at(utilisation, comp_of, used)

    return ContentionSolution(
        rates=rates, stage_allocations=alloc,
        stage_demands=inflated + hol_wait,
        component_utilisation=utilisation, iterations=iterations,
        converged=converged,
    )
