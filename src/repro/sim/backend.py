"""Contention-solver backend switch: ``numpy`` or ``compiled``.

The damped fixed point in :mod:`repro.sim.contention` is the innermost
hot loop of every plan/serve/fleet decision.  This module adds a second
implementation of the batch entry point — a native kernel over
CSR-packed flat arrays — behind an explicit backend name that threads
from :func:`repro.sim.contention.solve_steady_state_batch` through
:func:`repro.sim.engine.simulate_batch`, the
:class:`repro.sim.cache.EvaluationCache` key, and the scenario runner.

Backend names and contracts:

* ``"numpy"`` — the vectorized batch solver, bit-identical to the
  scalar oracle :func:`repro.sim.contention.solve_steady_state` (the
  seed contract, locked by ``tests/property/test_batch_equivalence.py``).
* ``"compiled"`` — a native kernel that follows the scalar solver's
  exact operation order, so its trajectory is bit-compatible too; the
  differential suite (``tests/property/test_backend_equivalence.py``)
  additionally tolerates ``rel ≤ 1e-12`` on rates/utilisation to stay
  robust to compiler-scheduling differences across hosts, and requires
  identical convergence flags plus identical iteration counts on
  non-limit-cycle instances.

The compiled backend is optional-dependency-gated.  Providers are
probed once per process, in order:

1. **numba** — :func:`repro.sim._kernel.solve_packed` JIT-compiled
   (``cache=True``, never ``fastmath``);
2. **cext** — the same kernel's C twin (``_csolver.c``) built on demand
   with the host C compiler via :mod:`repro.sim._cext`;
3. **numpy fallback** — when neither native provider is available the
   call is answered by the numpy batch path after a one-time
   :class:`RuntimeWarning`, so results stay correct (and identical)
   while the degradation is visible.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..hw.platform import Platform
from .contention import (
    _CYCLE_BURN_IN,
    _CYCLE_TOL,
    _CYCLE_WINDOW,
    _DAMPING,
    _MAX_ITER,
    _TOL,
    ContentionSolution,
    _context_counts,
    _empty_solution,
    _interference_table,
)
from .demands import StageDemand

__all__ = [
    "BACKENDS",
    "normalize_backend",
    "compiled_provider",
    "solve_batch_compiled",
]

BACKENDS = ("numpy", "compiled")
"""Recognised backend names, in documentation order."""

_provider: str | None = None
_provider_probed = False
_fallback_warned = False
_numba_kernel = None


def normalize_backend(backend: str) -> str:
    """Validate a backend name, returning it unchanged.

    Raises :class:`ValueError` naming the accepted choices for anything
    outside :data:`BACKENDS` (including non-strings), so scenario
    loading and solver entry points reject typos loudly instead of
    silently running numpy.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown solver backend {backend!r}: choose from "
            + " | ".join(BACKENDS))
    return backend


def compiled_provider() -> str | None:
    """Name of the native provider backing ``compiled``, or ``None``.

    Probes at most once per process: ``"numba"`` if numba imports,
    else ``"cext"`` if the on-demand C build produces a loadable
    library, else ``None`` (the compiled backend then falls back to
    numpy with a one-time warning).
    """
    global _provider, _provider_probed
    if _provider_probed:
        return _provider
    _provider_probed = True
    try:
        import numba  # noqa: F401
        _provider = "numba"
        return _provider
    except ImportError:
        pass
    from . import _cext
    if _cext.load_solver() is not None:
        _provider = "cext"
    return _provider


def _get_numba_kernel():
    """JIT-compile the python kernel with numba, memoized per process."""
    global _numba_kernel
    if _numba_kernel is None:
        import numba

        from . import _kernel
        _numba_kernel = numba.njit(cache=True, fastmath=False)(
            _kernel.solve_packed)
    return _numba_kernel


def _pack(demand_sets: list[list[StageDemand]], num_dnns: int,
          platform: Platform) -> tuple:
    """Flatten non-empty demand sets into CSR-packed kernel inputs.

    Performs the scalar solver's iteration-independent precomputation
    (interference inflation, kernel times, head-of-line coefficients
    times launch counts, entitlement weights) per element with the same
    numpy expressions, so the packed quantities are bitwise identical
    to what the scalar path derives.  Returns ``(packed_rows, offsets,
    comp_of, dnn_of, inflated, kernel_time, hol_k, weights)`` where
    ``packed_rows[i]`` is the original batch index of packed element
    ``i``; empty demand sets are excluded (callers answer them with
    :func:`repro.sim.contention._empty_solution`).
    """
    num_comp = platform.num_components
    gamma_table = _interference_table(platform, num_dnns)
    kappa = np.array([platform.component(c).sharing_bias
                      for c in range(num_comp)])
    hol_by_comp = np.array([platform.component(c).hol_blocking
                            for c in range(num_comp)])

    packed_rows: list[int] = []
    offsets = [0]
    comp_parts, dnn_parts = [], []
    infl_parts, ktime_parts, holk_parts, weight_parts = [], [], [], []
    for b, demands in enumerate(demand_sets):
        if not demands:
            continue
        comp = np.array([d.component for d in demands], dtype=np.int64)
        dnn = np.array([d.dnn_index for d in demands], dtype=np.int64)
        base = np.array([d.seconds_per_inference for d in demands])
        if np.any(base <= 0):
            raise ValueError("stage demands must be positive")
        contexts = _context_counts(comp, dnn, num_comp, num_dnns)
        inflated = base * gamma_table[comp, contexts[comp]]
        kernels = np.array([max(1, d.num_kernels) for d in demands],
                           dtype=np.float64)
        packed_rows.append(b)
        offsets.append(offsets[-1] + len(demands))
        comp_parts.append(comp)
        dnn_parts.append(dnn)
        infl_parts.append(inflated)
        ktime_parts.append(base / kernels)
        holk_parts.append(hol_by_comp[comp] * kernels)
        weight_parts.append(inflated ** kappa[comp])

    if not packed_rows:
        empty_i = np.zeros(0, dtype=np.int64)
        empty_f = np.zeros(0)
        return (packed_rows, np.zeros(1, dtype=np.int64), empty_i, empty_i,
                empty_f, empty_f, empty_f, empty_f)
    return (packed_rows,
            np.array(offsets, dtype=np.int64),
            np.ascontiguousarray(np.concatenate(comp_parts)),
            np.ascontiguousarray(np.concatenate(dnn_parts)),
            np.ascontiguousarray(np.concatenate(infl_parts)),
            np.ascontiguousarray(np.concatenate(ktime_parts)),
            np.ascontiguousarray(np.concatenate(holk_parts)),
            np.ascontiguousarray(np.concatenate(weight_parts)))


def solve_batch_compiled(demand_sets: list[list[StageDemand]],
                         num_dnns: int, platform: Platform,
                         max_iter: int = _MAX_ITER,
                         impl: str | None = None,
                         ) -> list[ContentionSolution]:
    """Solve a batch of mappings on the compiled backend.

    Same contract as
    :func:`repro.sim.contention.solve_steady_state_batch`.  ``impl``
    forces a specific kernel implementation — ``"numba"``, ``"cext"``,
    or ``"python"`` (the un-JITted reference kernel, used by the
    differential suite on hosts without a native provider) — instead of
    the probed default.  With no implementation available the call
    falls back to the numpy batch solver, warning once per process.
    """
    if impl is None:
        impl = compiled_provider()
        if impl is None:
            global _fallback_warned
            if not _fallback_warned:
                _fallback_warned = True
                warnings.warn(
                    "compiled solver backend unavailable (numba not "
                    "installed and the C kernel failed to build); "
                    "falling back to the numpy backend",
                    RuntimeWarning, stacklevel=2)
            from .contention import solve_steady_state_batch
            return solve_steady_state_batch(demand_sets, num_dnns,
                                            platform, max_iter)
    if impl not in ("numba", "cext", "python"):
        raise ValueError(f"unknown compiled-kernel implementation {impl!r}")

    n_total = len(demand_sets)
    if n_total == 0:
        return []
    (packed_rows, offsets, comp_of, dnn_of, inflated, kernel_time, hol_k,
     weights) = _pack(demand_sets, num_dnns, platform)

    n_packed = len(packed_rows)
    num_comp = platform.num_components
    out_rates = np.zeros((n_packed, num_dnns))
    out_alloc = np.zeros(offsets[-1] if n_packed else 0)
    out_eff = np.zeros_like(out_alloc)
    out_util = np.zeros((n_packed, num_comp))
    out_iters = np.zeros(n_packed, dtype=np.int64)

    if n_packed:
        if impl == "cext":
            from . import _cext
            out_conv8 = np.zeros(n_packed, dtype=np.uint8)
            _cext.solve_packed_c(
                offsets, comp_of, dnn_of, inflated, kernel_time, hol_k,
                weights, num_dnns, num_comp, max_iter, _DAMPING, _TOL,
                _CYCLE_WINDOW, _CYCLE_TOL, _CYCLE_BURN_IN,
                out_rates, out_alloc, out_eff, out_util, out_iters,
                out_conv8)
            out_conv = out_conv8.astype(bool)
        else:
            if impl == "numba":
                kernel = _get_numba_kernel()
            else:
                from ._kernel import solve_packed as kernel
            out_conv = np.zeros(n_packed, dtype=np.bool_)
            kernel(offsets, comp_of, dnn_of, inflated, kernel_time, hol_k,
                   weights, num_dnns, num_comp, max_iter, _DAMPING, _TOL,
                   _CYCLE_WINDOW, _CYCLE_TOL, _CYCLE_BURN_IN,
                   out_rates, out_alloc, out_eff, out_util, out_iters,
                   out_conv)
    else:
        out_conv = np.zeros(0, dtype=np.bool_)

    solutions: list[ContentionSolution] = \
        [None] * n_total  # type: ignore[list-item]
    for i, b in enumerate(packed_rows):
        s0, s1 = int(offsets[i]), int(offsets[i + 1])
        solutions[b] = ContentionSolution(
            rates=out_rates[i].copy(),
            stage_allocations=out_alloc[s0:s1].copy(),
            stage_demands=out_eff[s0:s1].copy(),
            component_utilisation=out_util[i].copy(),
            iterations=int(out_iters[i]),
            converged=bool(out_conv[i]),
        )
    for b in range(n_total):
        if solutions[b] is None:
            solutions[b] = _empty_solution(num_dnns, platform)
    return solutions
