/* Scalar-trajectory contention solver, C twin of repro/sim/_kernel.py.
 *
 * Compiled on demand by repro.sim._cext (cc -O2 -shared -fPIC, never
 * -ffast-math: the kernel must stay IEEE-exact) and loaded via ctypes.
 * One call solves a packed batch: element b's stages live in
 * offsets[b]..offsets[b+1] of the flat per-stage arrays.  Every loop
 * accumulates in the same order as the scalar python solver
 * (solve_steady_state) — segment sums walk stages in index order, the
 * limit-cycle window averages chronologically, damping groups as
 * d*x + (1-d)*y — so the float trajectory is bit-compatible with the
 * scalar oracle, which tests/property/test_backend_equivalence.py locks.
 *
 * Returns 0 on success, 1 on scratch-allocation failure.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

int solve_packed(const int64_t *offsets, int64_t n_batch,
                 const int64_t *comp_of, const int64_t *dnn_of,
                 const double *inflated, const double *kernel_time,
                 const double *hol_k, const double *weights,
                 int64_t num_dnns, int64_t num_comp, int64_t max_iter,
                 double damping, double tol, int64_t cycle_window,
                 double cycle_tol, int64_t cycle_burn_in,
                 double *out_rates, double *out_alloc, double *out_eff,
                 double *out_util, int64_t *out_iters, uint8_t *out_conv)
{
    int64_t max_stages = 0;
    for (int64_t b = 0; b < n_batch; b++) {
        int64_t n = offsets[b + 1] - offsets[b];
        if (n > max_stages)
            max_stages = n;
    }

    double *alloc = malloc((size_t)max_stages * sizeof(double));
    double *hol_wait = malloc((size_t)max_stages * sizeof(double));
    double *blocked = malloc((size_t)max_stages * sizeof(double));
    double *stage_rate = malloc((size_t)max_stages * sizeof(double));
    double *cap_rate = malloc((size_t)max_stages * sizeof(double));
    double *ceiling_rate = malloc((size_t)max_stages * sizeof(double));
    double *target = malloc((size_t)max_stages * sizeof(double));
    double *need = malloc((size_t)max_stages * sizeof(double));
    uint8_t *wants_more = malloc((size_t)max_stages * sizeof(uint8_t));
    double *rates = malloc((size_t)num_dnns * sizeof(double));
    double *new_rates = malloc((size_t)num_dnns * sizeof(double));
    double *means = malloc((size_t)num_dnns * sizeof(double));
    double *weight_sum = malloc((size_t)num_comp * sizeof(double));
    double *totals = malloc((size_t)num_comp * sizeof(double));
    double *sat_need = malloc((size_t)num_comp * sizeof(double));
    double *hot_weight = malloc((size_t)num_comp * sizeof(double));
    double *ring = malloc((size_t)cycle_window * (size_t)num_dnns
                          * sizeof(double));
    if (!alloc || !hol_wait || !blocked || !stage_rate || !cap_rate
        || !ceiling_rate || !target || !need || !wants_more || !rates
        || !new_rates || !means || !weight_sum || !totals || !sat_need
        || !hot_weight || !ring) {
        free(alloc); free(hol_wait); free(blocked); free(stage_rate);
        free(cap_rate); free(ceiling_rate); free(target); free(need);
        free(wants_more); free(rates); free(new_rates); free(means);
        free(weight_sum); free(totals); free(sat_need); free(hot_weight);
        free(ring);
        return 1;
    }

    for (int64_t b = 0; b < n_batch; b++) {
        const int64_t s0 = offsets[b];
        const int64_t n_stages = offsets[b + 1] - s0;
        const int64_t *comp = comp_of + s0;
        const int64_t *dnn = dnn_of + s0;
        const double *infl = inflated + s0;
        const double *ktime = kernel_time + s0;
        const double *holk = hol_k + s0;
        const double *wgt = weights + s0;

        /* Entitlements, accumulated in stage order like bincount. */
        for (int64_t c = 0; c < num_comp; c++)
            weight_sum[c] = 0.0;
        for (int64_t s = 0; s < n_stages; s++)
            weight_sum[comp[s]] += wgt[s];
        for (int64_t s = 0; s < n_stages; s++)
            alloc[s] = wgt[s] / weight_sum[comp[s]];

        int has_hol = 0;
        for (int64_t s = 0; s < n_stages; s++) {
            if (holk[s] != 0.0) {
                has_hol = 1;
                break;
            }
        }

        for (int64_t d = 0; d < num_dnns; d++)
            rates[d] = 0.0;
        for (int64_t s = 0; s < n_stages; s++)
            hol_wait[s] = 0.0;

        int64_t iterations = 0;
        int converged = 0;
        for (int64_t it = 1; it <= max_iter; it++) {
            iterations = it;
            if (has_hol) {
                for (int64_t c = 0; c < num_comp; c++)
                    totals[c] = 0.0;
                for (int64_t s = 0; s < n_stages; s++) {
                    blocked[s] = rates[dnn[s]] * infl[s] * ktime[s];
                    totals[comp[s]] += blocked[s];
                }
                for (int64_t s = 0; s < n_stages; s++) {
                    double new_wait = holk[s] * (totals[comp[s]] - blocked[s]);
                    hol_wait[s] = damping * hol_wait[s]
                        + (1.0 - damping) * new_wait;
                }
            }

            for (int64_t d = 0; d < num_dnns; d++)
                new_rates[d] = INFINITY;
            for (int64_t s = 0; s < n_stages; s++) {
                cap_rate[s] = alloc[s] / infl[s];
                ceiling_rate[s] = 1.0 / (infl[s] + hol_wait[s]);
                double sr = cap_rate[s] < ceiling_rate[s]
                    ? cap_rate[s] : ceiling_rate[s];
                stage_rate[s] = sr;
                if (sr < new_rates[dnn[s]])
                    new_rates[dnn[s]] = sr;
            }
            for (int64_t d = 0; d < num_dnns; d++) {
                if (isinf(new_rates[d]))
                    new_rates[d] = 0.0;
            }

            /* Water-fill, same satisfied/hungry split as the scalar path. */
            for (int64_t c = 0; c < num_comp; c++) {
                sat_need[c] = 0.0;
                hot_weight[c] = 0.0;
            }
            for (int64_t s = 0; s < n_stages; s++) {
                need[s] = new_rates[dnn[s]] * infl[s];
                int limiting = stage_rate[s]
                    <= new_rates[dnn[s]] * (1.0 + 1e-9);
                wants_more[s] = limiting && cap_rate[s] <= ceiling_rate[s];
                if (wants_more[s])
                    hot_weight[comp[s]] += wgt[s];
                else
                    sat_need[comp[s]] += need[s];
            }
            for (int64_t s = 0; s < n_stages; s++) {
                int64_t c = comp[s];
                if (hot_weight[c] > 0.0) {
                    if (wants_more[s]) {
                        double free_c = 1.0 - sat_need[c];
                        if (free_c < 0.0)
                            free_c = 0.0;
                        target[s] = free_c * wgt[s] / hot_weight[c];
                    } else {
                        target[s] = need[s];
                    }
                } else {
                    target[s] = alloc[s];
                }
            }

            double max_rate = 0.0;
            double max_diff = 0.0;
            for (int64_t d = 0; d < num_dnns; d++) {
                if (new_rates[d] > max_rate)
                    max_rate = new_rates[d];
                double diff = fabs(new_rates[d] - rates[d]);
                if (diff > max_diff)
                    max_diff = diff;
                rates[d] = new_rates[d];
            }
            double floor_r = max_rate > 1e-12 ? max_rate : 1e-12;
            if (max_diff <= tol * floor_r) {
                converged = 1;
                break;
            }

            if (it > cycle_burn_in - cycle_window) {
                double *row = ring + ((it - 1) % cycle_window) * num_dnns;
                for (int64_t d = 0; d < num_dnns; d++)
                    row[d] = rates[d];
            }
            if (it >= cycle_burn_in) {
                double worst = 0.0;
                for (int64_t d = 0; d < num_dnns; d++) {
                    double first = ring[((it - cycle_window) % cycle_window)
                                        * num_dnns + d];
                    double lo = first, hi = first, mean = first;
                    for (int64_t k = it - cycle_window + 1; k < it; k++) {
                        double v = ring[(k % cycle_window) * num_dnns + d];
                        if (v < lo)
                            lo = v;
                        if (v > hi)
                            hi = v;
                        mean = mean + v;
                    }
                    mean /= (double)cycle_window;
                    means[d] = mean;
                    double mfloor = mean > 1e-12 ? mean : 1e-12;
                    double ratio = (hi - lo) / mfloor;
                    if (ratio > worst)
                        worst = ratio;
                }
                if (worst <= cycle_tol) {
                    for (int64_t d = 0; d < num_dnns; d++)
                        rates[d] = means[d];
                    converged = 1;
                    break;
                }
            }

            for (int64_t s = 0; s < n_stages; s++)
                alloc[s] = damping * alloc[s] + (1.0 - damping) * target[s];
        }

        for (int64_t d = 0; d < num_dnns; d++)
            out_rates[b * num_dnns + d] = rates[d];
        for (int64_t c = 0; c < num_comp; c++)
            out_util[b * num_comp + c] = 0.0;
        for (int64_t s = 0; s < n_stages; s++) {
            out_alloc[s0 + s] = alloc[s];
            out_eff[s0 + s] = infl[s] + hol_wait[s];
            out_util[b * num_comp + comp[s]] += rates[dnn[s]] * infl[s];
        }
        out_iters[b] = iterations;
        out_conv[b] = (uint8_t)converged;
    }

    free(alloc); free(hol_wait); free(blocked); free(stage_rate);
    free(cap_rate); free(ceiling_rate); free(target); free(need);
    free(wants_more); free(rates); free(new_rates); free(means);
    free(weight_sum); free(totals); free(sat_need); free(hot_weight);
    free(ring);
    return 0;
}
