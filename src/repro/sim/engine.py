"""Execution simulator facade: mapping -> per-DNN steady-state throughput.

This is the drop-in substitute for "run the workload on the Orange Pi 5 and
record inferences/s" (see DESIGN.md).  All managers, the estimator-training
dataset and every experiment observe the platform exclusively through
:func:`simulate`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..zoo.layers import ModelSpec
from .contention import (
    ContentionSolution,
    solve_steady_state,
    solve_steady_state_batch,
)
from .demands import compute_stage_demands

__all__ = ["SimResult", "simulate", "simulate_batch"]


@dataclass(frozen=True)
class SimResult:
    """Steady-state outcome of one mapping."""

    workload_names: tuple[str, ...]
    rates: np.ndarray              # inferences/s per DNN
    ideal_rates: np.ndarray        # GPU-solo rate per DNN (paper's t_ideal)
    solution: ContentionSolution

    @property
    def potentials(self) -> np.ndarray:
        """Paper's potential throughput P = t_current / t_ideal per DNN."""
        return self.rates / self.ideal_rates

    @property
    def average_throughput(self) -> float:
        """Paper's T = (sum of per-DNN rates) / N, in inferences/s."""
        return float(self.rates.mean())

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{n}={r:.2f}/s" for n, r in zip(self.workload_names, self.rates)
        )
        return f"SimResult({pairs})"


def simulate(workload: list[ModelSpec], mapping: Mapping,
             platform: Platform) -> SimResult:
    """Steady-state per-DNN throughput of ``mapping`` on ``platform``."""
    demands = compute_stage_demands(workload, mapping, platform)
    solution = solve_steady_state(demands, len(workload), platform)
    ideal = np.array([platform.ideal_throughput(m) for m in workload])
    return SimResult(
        workload_names=tuple(m.name for m in workload),
        rates=solution.rates,
        ideal_rates=ideal,
        solution=solution,
    )


def simulate_batch(workload: list[ModelSpec], mappings: list[Mapping],
                   platform: Platform,
                   backend: str = "numpy") -> list[SimResult]:
    """Steady-state throughput of several mappings of the same workload.

    Equivalent to ``[simulate(workload, m, platform) for m in mappings]``
    but solves all fixed points simultaneously on stacked arrays (see
    :func:`repro.sim.contention.solve_steady_state_batch`), which is what
    makes MCTS rollout batches and scenario sweeps cheap.  ``backend``
    selects the solver implementation (``"numpy"`` or ``"compiled"``, see
    :mod:`repro.sim.backend`).
    """
    if not mappings:
        return []
    demand_sets = [compute_stage_demands(workload, m, platform)
                   for m in mappings]
    solutions = solve_steady_state_batch(demand_sets, len(workload), platform,
                                         backend=backend)
    ideal = np.array([platform.ideal_throughput(m) for m in workload])
    names = tuple(m.name for m in workload)
    return [
        SimResult(workload_names=names, rates=sol.rates, ideal_rates=ideal,
                  solution=sol)
        for sol in solutions
    ]
