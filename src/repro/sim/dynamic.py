"""Dynamic multi-DNN scenarios: arrivals, departures, priority changes.

Reproduces the paper's Fig. 8 (DNNs arriving every 150 s) and Fig. 10
(user priority shifts) experiments.  A *planner* callback — any manager —
is invoked whenever the active set or the priority vector changes; its
decision latency opens a gap during which the previous mapping keeps
running and a newly arrived DNN makes no progress yet (rate 0), exactly the
grey dashed re-mapping gaps in the paper's Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..zoo.layers import ModelSpec
from .engine import simulate

__all__ = [
    "MappingDecision",
    "Planner",
    "ScenarioEvent",
    "arrival",
    "departure",
    "priority_change",
    "Segment",
    "Timeline",
    "restrict_mapping",
    "run_dynamic_scenario",
]


@dataclass(frozen=True)
class MappingDecision:
    """A planner's output: the mapping plus how long the decision took."""

    mapping: Mapping
    decision_seconds: float = 0.0


# A planner maps (workload, user priority vector or None) to a decision.
Planner = Callable[[list[ModelSpec], "np.ndarray | None"], MappingDecision]


@dataclass(frozen=True)
class ScenarioEvent:
    """One timeline event."""

    time: float
    kind: str                       # "arrival" | "departure" | "priority"
    model: ModelSpec | None = None
    priorities: dict[str, float] | None = None


def arrival(time: float, model: ModelSpec) -> ScenarioEvent:
    return ScenarioEvent(time, "arrival", model=model)


def departure(time: float, model: ModelSpec) -> ScenarioEvent:
    return ScenarioEvent(time, "departure", model=model)


def priority_change(time: float, priorities: dict[str, float]) -> ScenarioEvent:
    return ScenarioEvent(time, "priority", priorities=priorities)


@dataclass(frozen=True)
class Segment:
    """Steady-state interval of the timeline."""

    t_start: float
    t_end: float
    names: tuple[str, ...]
    rates: dict[str, float]
    potentials: dict[str, float]

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass
class Timeline:
    """Piecewise-constant record of a dynamic scenario."""

    segments: list[Segment] = field(default_factory=list)

    def potential_at(self, name: str, t: float) -> float | None:
        """P of ``name`` at time ``t`` (None before arrival/after departure)."""
        for seg in self.segments:
            if seg.t_start <= t < seg.t_end:
                return seg.potentials.get(name)
        return None

    def potential_series(self, name: str,
                         times: np.ndarray) -> np.ndarray:
        """P of ``name`` sampled at ``times`` (NaN when absent)."""
        out = np.full(len(times), np.nan)
        for i, t in enumerate(times):
            p = self.potential_at(name, float(t))
            if p is not None:
                out[i] = p
        return out

    def time_average_throughput(self) -> float:
        """Duration-weighted mean of the per-segment average rate."""
        total_time = sum(s.duration for s in self.segments)
        if total_time <= 0:
            return 0.0
        acc = 0.0
        for s in self.segments:
            if s.rates:
                acc += s.duration * (sum(s.rates.values()) / len(s.rates))
        return acc / total_time

    def min_potential(self, name: str) -> float:
        """Lowest P ``name`` experienced while it was mapped and running."""
        values = [s.potentials[name] for s in self.segments
                  if name in s.potentials]
        return min(values) if values else float("nan")

    def final_potentials(self) -> dict[str, float]:
        return dict(self.segments[-1].potentials) if self.segments else {}


def restrict_mapping(mapping: Mapping | None, old_names: list[str],
                     new_workload: list[ModelSpec]) -> tuple[list[ModelSpec], Mapping] | None:
    """Keep the old mapping for DNNs still active (decision-gap behaviour).

    Returns the surviving ``(models, mapping)`` pair in the old mapping's
    order, or ``None`` when nothing survives.  Shared by the dynamic
    replay engine and the online serving loop (:mod:`repro.serve`), whose
    re-mapping gaps have identical semantics: residents keep running on
    the incumbent placement while the planner decides.
    """
    if mapping is None:
        return None
    keep_models: list[ModelSpec] = []
    keep_assign: list[tuple[int, ...]] = []
    by_name = {m.name: m for m in new_workload}
    for name, assignment in zip(old_names, mapping.assignments):
        if name in by_name:
            keep_models.append(by_name[name])
            keep_assign.append(assignment)
    if not keep_models:
        return None
    return keep_models, Mapping(tuple(keep_assign))


def run_dynamic_scenario(events: list[ScenarioEvent], planner: Planner,
                         platform: Platform, horizon: float,
                         default_priority: float = 0.1) -> Timeline:
    """Simulate a scenario and return its piecewise-constant timeline."""
    if not events:
        raise ValueError("scenario needs at least one event")
    events = sorted(events, key=lambda e: e.time)

    timeline = Timeline()
    active: list[ModelSpec] = []
    priorities: dict[str, float] = {}
    current: tuple[list[ModelSpec], Mapping] | None = None
    prev_names: list[str] = []
    clock = 0.0

    def emit(t0: float, t1: float) -> None:
        if t1 <= t0:
            return
        names = tuple(m.name for m in active)
        if current is None:
            zeros = {m.name: 0.0 for m in active}
            timeline.segments.append(Segment(t0, t1, names, zeros, dict(zeros)))
            return
        models, mapping = current
        result = simulate(models, mapping, platform)
        rates = {m.name: float(r) for m, r in zip(models, result.rates)}
        pots = {m.name: float(p) for m, p in zip(models, result.potentials)}
        # DNNs active but not (yet) mapped make no progress.
        for m in active:
            rates.setdefault(m.name, 0.0)
            pots.setdefault(m.name, 0.0)
        timeline.segments.append(Segment(t0, t1, names, rates, pots))

    for event in events:
        if event.time > horizon:
            break
        emit(clock, event.time)
        clock = event.time

        if event.kind == "arrival":
            if event.model is None:
                raise ValueError("arrival event needs a model")
            active.append(event.model)
            priorities.setdefault(event.model.name, default_priority)
        elif event.kind == "departure":
            if event.model is None:
                raise ValueError("departure event needs a model")
            active = [m for m in active if m.name != event.model.name]
            priorities.pop(event.model.name, None)
        elif event.kind == "priority":
            if not event.priorities:
                raise ValueError("priority event needs a priority dict")
            priorities.update(event.priorities)
        else:
            raise ValueError(f"unknown event kind {event.kind!r}")

        if not active:
            current = None
            prev_names = []
            continue

        vector = np.array([priorities[m.name] for m in active])
        decision = planner(list(active), vector)
        gap = max(0.0, decision.decision_seconds)
        if gap > 0:
            # Decision window: previous mapping keeps running (restricted to
            # the DNNs still active); the event's subject waits.
            current = restrict_mapping(current[1] if current else None,
                                       prev_names, active)
            emit(clock, min(clock + gap, horizon))
            clock = min(clock + gap, horizon)
        current = (list(active), decision.mapping)
        prev_names = [m.name for m in active]

    emit(clock, horizon)
    return timeline
