"""On-demand cc-compiled provider for the contention-solver kernel.

Compiles ``_csolver.c`` (the C twin of :func:`repro.sim._kernel
.solve_packed`) with the host C compiler into a shared object cached
next to the source, and exposes it through ctypes.  This is the
compiled-backend provider of last resort before the numpy fallback: on
hosts without numba but with a working ``cc``, the compiled backend is
still a real native kernel rather than a silent alias of numpy.

The build is hermetic and failure-tolerant:

* the ``.so`` is keyed by the SHA-256 of the C source, so editing the
  kernel invalidates the cache automatically;
* artifacts land in ``src/repro/sim/_build/`` (gitignored), overridable
  via ``REPRO_CEXT_BUILD_DIR``, with a tempdir fallback when the tree is
  read-only;
* compilation happens at most once per process and never raises out of
  :func:`load_solver` — any failure (no compiler, sandboxed exec,
  unwritable disk) returns ``None`` and the backend layer falls through
  to the next provider.

Optimisation flags deliberately exclude ``-ffast-math``: the kernel's
contract is bit-compatibility with the scalar solver, which fast-math's
reassociation would break.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

__all__ = ["load_solver", "solve_packed_c"]

_SRC = Path(__file__).with_name("_csolver.c")
# -ffp-contract=off: compilers default to contracting a*b+c into FMA at
# -O2 on targets that have it, which changes rounding; the kernel's
# contract is bit-compatibility with the scalar solver.
_CFLAGS = ["-O2", "-shared", "-fPIC", "-fno-fast-math",
           "-ffp-contract=off"]

_lib: ctypes.CDLL | None = None
_probed = False

_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_U8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")


def _build_dir() -> Path:
    override = os.environ.get("REPRO_CEXT_BUILD_DIR")
    if override:
        return Path(override)
    return _SRC.parent / "_build"


def _compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile(so_path: Path) -> bool:
    """Compile the C source to ``so_path`` atomically; False on failure."""
    cc = _compiler()
    if cc is None:
        return False
    try:
        so_path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=so_path.parent)
        os.close(fd)
    except OSError:
        return False
    try:
        result = subprocess.run(
            [cc, *_CFLAGS, "-o", tmp, str(_SRC), "-lm"],
            capture_output=True, timeout=120)
        if result.returncode != 0:
            return False
        os.replace(tmp, so_path)
        return True
    except (OSError, subprocess.SubprocessError):
        return False
    finally:
        if os.path.exists(tmp):
            try:
                os.unlink(tmp)
            except OSError:
                pass


def load_solver() -> ctypes.CDLL | None:
    """Return the loaded kernel library, building it if needed.

    Memoized per process; returns ``None`` (once and forever, for this
    process) if the source is missing, no compiler is available, or the
    build/load fails for any reason.
    """
    global _lib, _probed
    if _probed:
        return _lib
    _probed = True
    if not _SRC.is_file():
        return None
    digest = hashlib.sha256(
        _SRC.read_bytes() + " ".join(_CFLAGS).encode()).hexdigest()[:16]
    candidates = [_build_dir() / f"_csolver-{digest}.so"]
    if "REPRO_CEXT_BUILD_DIR" not in os.environ:
        candidates.append(
            Path(tempfile.gettempdir()) / f"repro-csolver-{digest}.so")
    for so_path in candidates:
        if not so_path.is_file() and not _compile(so_path):
            continue
        try:
            lib = ctypes.CDLL(str(so_path))
        except OSError:
            continue
        lib.solve_packed.restype = ctypes.c_int
        lib.solve_packed.argtypes = [
            _I64, ctypes.c_int64,                 # offsets, n_batch
            _I64, _I64,                           # comp_of, dnn_of
            _F64, _F64, _F64, _F64,               # inflated..weights
            ctypes.c_int64, ctypes.c_int64,       # num_dnns, num_comp
            ctypes.c_int64, ctypes.c_double,      # max_iter, damping
            ctypes.c_double, ctypes.c_int64,      # tol, cycle_window
            ctypes.c_double, ctypes.c_int64,      # cycle_tol, cycle_burn_in
            _F64, _F64, _F64, _F64,               # out_rates..out_util
            _I64, _U8,                            # out_iters, out_conv
        ]
        _lib = lib
        return _lib
    return None


def solve_packed_c(offsets, comp_of, dnn_of, inflated, kernel_time, hol_k,
                   weights, num_dnns, num_comp, max_iter, damping, tol,
                   cycle_window, cycle_tol, cycle_burn_in,
                   out_rates, out_alloc, out_eff, out_util, out_iters,
                   out_conv) -> None:
    """Call the C kernel with the same signature as the python kernel.

    ``out_conv`` must be ``uint8`` (ctypes has no bool pointer); the
    backend layer converts.  Raises ``RuntimeError`` if the library is
    unavailable or the kernel reports an allocation failure.
    """
    lib = load_solver()
    if lib is None:
        raise RuntimeError("C solver library unavailable")
    status = lib.solve_packed(
        offsets, offsets.shape[0] - 1, comp_of, dnn_of, inflated,
        kernel_time, hol_k, weights, num_dnns, num_comp, max_iter,
        damping, tol, cycle_window, cycle_tol, cycle_burn_in,
        out_rates, out_alloc, out_eff, out_util, out_iters, out_conv)
    if status != 0:
        raise RuntimeError("C solver scratch allocation failed")
