"""Discrete-event pipeline execution simulator (extension; DESIGN.md §6).

The analytical engine (:mod:`repro.sim.contention`) solves steady-state
*fluid* rates.  This module executes the same mapping as a discrete-event
simulation: every (stage, inference) pair is a non-preemptive job, each
component serves one job at a time under start-time fair queueing (SFQ)
with the component's entitlement weights, and inferences flow through
bounded inter-stage buffers.  Two things come out of it:

* **Cross-validation** — an independent second opinion on the analytical
  solver.  The two share the physical layer (layer latencies, interference
  inflation, transfer costs) but disagree on scheduling (explicit queueing
  vs. fluid water-filling), so agreement on rates and on mapping *ordering*
  is evidence neither is an artefact of its own approximations
  (tests/test_sim_des.py, experiment id ``desval``).
* **Latency** — per-inference end-to-end latency percentiles, which a
  steady-state fluid model cannot express at all (pipeline depth, queueing
  delay and head-of-line blocking all show up here).

Scheduling notes: non-preemptive SFQ mirrors the board — one kernel runs
at a time per accelerator queue, and a freshly woken stage cannot burn
banked idle credit (SFQ start tags are clamped to the component's virtual
time).  Head-of-line blocking therefore *emerges* from the event order
instead of being a calibrated coefficient as in the analytical model.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..zoo.layers import ModelSpec
from .demands import compute_stage_demands

__all__ = ["DesConfig", "DesResult", "simulate_des"]


@dataclass(frozen=True)
class DesConfig:
    """Horizon, warm-up and buffering knobs of the event simulation."""

    horizon_s: float = 30.0
    warmup_s: float = 5.0
    buffer_depth: int = 2      # finished-but-unconsumed items between stages
    apply_interference: bool = True

    def __post_init__(self):
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if not 0.0 <= self.warmup_s < self.horizon_s:
            raise ValueError("warmup_s must lie within [0, horizon_s)")
        if self.buffer_depth < 1:
            raise ValueError("buffer_depth must be at least 1")


@dataclass(frozen=True)
class DesResult:
    """Measured outcome of one discrete-event run."""

    workload_names: tuple[str, ...]
    rates: np.ndarray                    # inferences/s per DNN (post warm-up)
    completions: np.ndarray              # raw completion counts per DNN
    latencies: dict[str, np.ndarray]     # end-to-end seconds per inference
    measured_seconds: float

    def latency_percentile(self, name: str, q: float) -> float:
        """End-to-end latency percentile (q in [0, 100]) for one DNN."""
        samples = self.latencies[name]
        if samples.size == 0:
            return float("nan")
        return float(np.percentile(samples, q))

    def mean_latency(self, name: str) -> float:
        samples = self.latencies[name]
        return float(samples.mean()) if samples.size else float("nan")

    @property
    def average_throughput(self) -> float:
        """The paper's T over the measured window."""
        return float(self.rates.mean())


@dataclass
class _Stage:
    """Mutable run state of one pipeline stage."""

    dnn: int
    component: int
    service_s: float
    weight: float
    prev: "_Stage | None" = None
    next: "_Stage | None" = None
    started: int = 0        # inferences this stage has begun
    done: int = 0           # inferences this stage has finished
    finish_tag: float = 0.0  # SFQ virtual finish time
    start_times: list[float] = field(default_factory=list)

    def eligible(self, buffer_depth: int) -> bool:
        """Can this stage begin its next inference right now?"""
        if self.started > self.done:
            return False                       # already in service
        if self.prev is not None and self.prev.done <= self.started:
            return False                       # input not produced yet
        if self.next is not None and \
                self.done - self.next.started >= buffer_depth:
            return False                       # output buffer full
        return True


def _build_stages(workload: list[ModelSpec], mapping: Mapping,
                  platform: Platform,
                  apply_interference: bool) -> list[_Stage]:
    demands = compute_stage_demands(workload, mapping, platform)

    inflation = np.ones(platform.num_components)
    if apply_interference:
        for c in range(platform.num_components):
            contexts = len({d.dnn_index for d in demands
                            if d.component == c})
            inflation[c] = platform.component(c).interference_factor(contexts)

    stages: list[_Stage] = []
    per_dnn: dict[int, list[_Stage]] = {}
    for demand in demands:     # demands arrive in (dnn, stage) order
        kappa = platform.component(demand.component).sharing_bias
        service = demand.seconds_per_inference * inflation[demand.component]
        stage = _Stage(dnn=demand.dnn_index, component=demand.component,
                       service_s=service, weight=max(service, 1e-12) ** kappa)
        per_dnn.setdefault(demand.dnn_index, []).append(stage)
        stages.append(stage)
    for chain in per_dnn.values():
        for a, b in itertools.pairwise(chain):
            a.next = b
            b.prev = a
    return stages


def simulate_des(workload: list[ModelSpec], mapping: Mapping,
                 platform: Platform,
                 config: DesConfig | None = None) -> DesResult:
    """Execute ``mapping`` event-by-event and measure rates and latencies."""
    config = config if config is not None else DesConfig()
    mapping.validate_against(workload, platform.num_components)
    stages = _build_stages(workload, mapping, platform,
                           config.apply_interference)
    n_dnns = len(workload)
    by_component: dict[int, list[_Stage]] = {}
    for stage in stages:
        by_component.setdefault(stage.component, []).append(stage)

    busy = {c: False for c in by_component}
    virtual = {c: 0.0 for c in by_component}    # SFQ virtual time
    heap: list[tuple[float, int, int, _Stage]] = []
    seq = itertools.count()

    def dispatch(component: int, now: float) -> None:
        if busy[component]:
            return
        ready = [s for s in by_component[component]
                 if s.eligible(config.buffer_depth)]
        if not ready:
            return
        stage = min(ready, key=lambda s: (max(s.finish_tag,
                                              virtual[component]),
                                          s.dnn))
        start_tag = max(stage.finish_tag, virtual[component])
        virtual[component] = start_tag
        stage.finish_tag = start_tag + stage.service_s / stage.weight
        stage.started += 1
        if stage.prev is None:
            stage.start_times.append(now)
        busy[component] = True
        heapq.heappush(heap, (now + stage.service_s, next(seq),
                              component, stage))

    completions = np.zeros(n_dnns, dtype=np.int64)
    measured = np.zeros(n_dnns, dtype=np.int64)
    latencies: dict[int, list[float]] = {i: [] for i in range(n_dnns)}
    heads = {s.dnn: _head_of(s) for s in stages}

    for component in by_component:
        dispatch(component, 0.0)

    now = 0.0
    while heap:
        now, _, component, stage = heapq.heappop(heap)
        if now > config.horizon_s:
            break
        stage.done += 1
        busy[component] = False
        if stage.next is None:
            index = stage.done - 1
            completions[stage.dnn] += 1
            admitted = heads[stage.dnn].start_times[index]
            if now >= config.warmup_s:
                measured[stage.dnn] += 1
                latencies[stage.dnn].append(now - admitted)
        for c in by_component:
            dispatch(c, now)

    window = config.horizon_s - config.warmup_s
    rates = measured / window
    return DesResult(
        workload_names=tuple(m.name for m in workload),
        rates=rates,
        completions=completions,
        latencies={workload[i].name: np.asarray(latencies[i])
                   for i in range(n_dnns)},
        measured_seconds=window,
    )


def _head_of(stage: _Stage) -> _Stage:
    while stage.prev is not None:
        stage = stage.prev
    return stage
