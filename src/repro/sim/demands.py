"""Per-stage service demands.

A pipeline stage's *demand* is the component-time (seconds) it consumes per
inference: the sum of its blocks' layer latencies plus, when the previous
stage lives on a different component, the feature-map handoff cost charged
to the receiving stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.latency import block_latencies
from ..hw.platform import Platform
from ..mapping.mapping import Mapping, Stage
from ..zoo.layers import ModelSpec

__all__ = ["StageDemand", "compute_stage_demands"]


@dataclass(frozen=True)
class StageDemand:
    """A pipeline stage together with its per-inference service demand."""

    stage: Stage
    seconds_per_inference: float
    num_kernels: int  # layer/kernel launches per inference of this stage

    @property
    def dnn_index(self) -> int:
        return self.stage.dnn_index

    @property
    def component(self) -> int:
        return self.stage.component

    @property
    def mean_kernel_time(self) -> float:
        return self.seconds_per_inference / max(1, self.num_kernels)


def compute_stage_demands(workload: list[ModelSpec], mapping: Mapping,
                          platform: Platform) -> list[StageDemand]:
    """Demands for every stage of ``mapping`` over ``workload``."""
    mapping.validate_against(workload, platform.num_components)
    all_stages = mapping.stages()
    demands: list[StageDemand] = []
    per_comp_latencies = [
        [block_latencies(model, platform.component(c))
         for c in range(platform.num_components)]
        for model in workload
    ]
    for dnn_index, model in enumerate(workload):
        prev_comp: int | None = None
        for stage in (s for s in all_stages if s.dnn_index == dnn_index):
            latencies = per_comp_latencies[dnn_index][stage.component]
            seconds = sum(latencies[stage.block_start : stage.block_end])
            if prev_comp is not None and prev_comp != stage.component:
                handoff = model.blocks[stage.block_start].input_bytes
                seconds += platform.link.transfer_time(handoff)
            kernels = sum(
                len(model.blocks[b].layers)
                for b in range(stage.block_start, stage.block_end)
            )
            demands.append(StageDemand(stage, seconds, kernels))
            prev_comp = stage.component
    return demands
