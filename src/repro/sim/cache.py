"""Canonical-assignment-keyed LRU cache over the simulator.

MCTS evaluates 160 iterations x 4 rollouts per plan and RankMap's
threshold-relaxation loop re-searches the same space with lowered floors;
both revisit mappings they have already solved.  The cache makes every
re-visit free while :func:`repro.sim.engine.simulate_batch` keeps the
misses cheap.

Cache-key canonicalization
--------------------------

A cache instance is bound to one :class:`~repro.hw.platform.Platform`
(platform parameters are part of neither key nor value) and one solver
backend, and a cached entry is keyed by::

    key = (backend, tuple of model names, mapping.assignments)

* **Backend** is the solver implementation name (``"numpy"`` or
  ``"compiled"``, see :mod:`repro.sim.backend`).  The two backends agree
  only within a documented tolerance, so an entry solved on one must
  never answer a request made on the other — the backend is part of the
  key, not just an instance attribute, so the isolation survives
  :meth:`~EvaluationCache.save`/:meth:`~EvaluationCache.load` too.
* **Model names** stand in for the full :class:`ModelSpec`: the zoo
  registry guarantees one spec per name, and stage demands depend only on
  the spec and the platform.  Workload *order* is significant — the same
  models in a different order index different rate vectors — so the name
  tuple is used verbatim, not sorted.
* **``mapping.assignments``** is already canonical: it is a nested tuple
  of per-block component indices, so two ``Mapping`` instances produced
  by different search paths (tree expansion, rollout completion,
  relaxation retry) hash equal whenever they describe the same placement.

Entries are evicted least-recently-used once ``maxsize`` is reached;
hits refresh recency.  ``hits``/``misses``/``hit_rate`` expose the
effectiveness (asserted in the regression tests).

Persistence
-----------

A cache can :meth:`~EvaluationCache.save` its entries to disk and a later
process can :meth:`~EvaluationCache.load` them back, so serve workers and
repeated experiment runs start warm instead of re-solving the same
canonical keys.  The on-disk record carries a format version and a
:func:`platform_fingerprint` of every parameter that influences a solve;
loading refuses a cache built for a different platform (the rates would be
silently wrong) or an unknown format version.
"""

from __future__ import annotations

import hashlib
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path

from ..hw.platform import Platform
from ..mapping.mapping import Mapping
from ..zoo.layers import ModelSpec
from .backend import normalize_backend
from .engine import SimResult, simulate_batch

__all__ = ["EvaluationCache", "platform_fingerprint"]

#: On-disk format version; bump when the payload layout changes.
#: v2: the solver backend joined the entry key (v1 files, whose keys
#: lack it, refuse to load rather than alias backends together).
_CACHE_FORMAT_VERSION = 2


def platform_fingerprint(platform: Platform) -> str:
    """Stable digest of every platform parameter that affects a solve.

    Built from the value-based ``cache_key`` of each component plus the
    link parameters, so two structurally identical platform objects (e.g.
    rebuilt from the same preset in different processes) fingerprint equal
    while any parameter tweak produces a different digest.
    """
    parts = [platform.name]
    for comp in platform.components:
        parts.append(repr(comp.cache_key()))
    parts.append(repr((platform.link.bandwidth_bytes_per_s,
                       platform.link.latency_s)))
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]

#: Default capacity: ~75 plans' worth of distinct 640-evaluation searches.
#: Each entry retains a full SimResult (a few KB of per-stage arrays), so
#: the default bounds a long-lived predictor's cache to ~100 MB; raise it
#: explicitly for sweeps that can afford the memory.
_DEFAULT_MAXSIZE = 50_000


class EvaluationCache:
    """LRU memo of :func:`simulate` results for one platform."""

    def __init__(self, platform: Platform,
                 maxsize: int = _DEFAULT_MAXSIZE,
                 backend: str = "numpy"):
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.platform = platform
        self.maxsize = maxsize
        self.backend = normalize_backend(backend)
        self.hits = 0
        self.misses = 0
        self._store: OrderedDict[tuple, SimResult] = OrderedDict()

    # ------------------------------------------------------------------
    @staticmethod
    def key(workload: list[ModelSpec], mapping: Mapping,
            backend: str = "numpy") -> tuple:
        """Canonical cache key (see module docstring)."""
        return (backend, tuple(m.name for m in workload),
                mapping.assignments)

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._store.clear()

    # ------------------------------------------------------------------
    def simulate(self, workload: list[ModelSpec],
                 mappings: list[Mapping]) -> list[SimResult]:
        """Like ``[simulate(workload, m, platform) for m in mappings]`` but
        cached: hits are returned directly and all misses are solved in one
        batched fixed-point call.

        Duplicate mappings inside one call are solved once.
        """
        results: list[SimResult | None] = [None] * len(mappings)
        miss_keys: list[tuple] = []
        miss_mappings: list[Mapping] = []
        miss_slots: dict[tuple, list[int]] = {}
        for i, mapping in enumerate(mappings):
            k = self.key(workload, mapping, self.backend)
            cached = self._store.get(k)
            if cached is not None:
                self._store.move_to_end(k)
                self.hits += 1
                results[i] = cached
                continue
            self.misses += 1
            if k not in miss_slots:
                miss_slots[k] = []
                miss_keys.append(k)
                miss_mappings.append(mapping)
            miss_slots[k].append(i)

        if miss_mappings:
            solved = simulate_batch(workload, miss_mappings, self.platform,
                                    backend=self.backend)
            for k, result in zip(miss_keys, solved):
                self._insert(k, result)
                for i in miss_slots[k]:
                    results[i] = result
        return results  # type: ignore[return-value]

    def simulate_one(self, workload: list[ModelSpec],
                     mapping: Mapping) -> SimResult:
        return self.simulate(workload, [mapping])[0]

    # ------------------------------------------------------------------
    def _insert(self, key: tuple, result: SimResult) -> None:
        self._store[key] = result
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> int:
        """Serialize the cached entries to ``path``; returns the count.

        The parent directory is created if needed.  The write goes through
        a temporary file and an atomic rename so concurrent readers never
        observe a half-written cache.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": _CACHE_FORMAT_VERSION,
            "fingerprint": platform_fingerprint(self.platform),
            "platform_name": self.platform.name,
            "entries": list(self._store.items()),
        }
        # Unique temp name per writer: concurrent saves to one path must
        # not interleave into the same file before the atomic rename.
        with tempfile.NamedTemporaryFile(dir=path.parent, delete=False,
                                         suffix=".tmp") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            tmp = Path(fh.name)
        tmp.replace(path)
        return len(self._store)

    @classmethod
    def load(cls, path: str | Path, platform: Platform,
             maxsize: int = _DEFAULT_MAXSIZE,
             backend: str = "numpy") -> "EvaluationCache":
        """Rebuild a cache from :meth:`save` output, bound to ``platform``.

        Refuses (``ValueError``) a file whose format version is unknown or
        whose platform fingerprint does not match ``platform`` — entries
        solved on one board model must never answer for another.  When the
        file holds more than ``maxsize`` entries the most recently used
        ones survive.  ``backend`` sets the rebuilt cache's solver backend
        for future misses; loaded entries keep their own backend-tagged
        keys, so entries solved on the other backend stay dormant rather
        than answering for this one.
        """
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        version = payload.get("version")
        if version != _CACHE_FORMAT_VERSION:
            raise ValueError(
                f"cache file {path} has format version {version!r}; this "
                f"build reads version {_CACHE_FORMAT_VERSION}")
        fingerprint = platform_fingerprint(platform)
        if payload.get("fingerprint") != fingerprint:
            raise ValueError(
                f"cache file {path} was built for platform "
                f"{payload.get('platform_name')!r} (fingerprint "
                f"{payload.get('fingerprint')!r}); refusing to load it for "
                f"{platform.name!r} (fingerprint {fingerprint!r})")
        cache = cls(platform, maxsize=maxsize, backend=backend)
        entries = payload["entries"]
        for key, result in entries[-maxsize:]:
            cache._store[key] = result
        return cache
