"""RankMap reproduction: priority-aware multi-DNN management (DATE 2025).

Top-level convenience imports for the most common entry points; the
subpackages hold the full API:

* :mod:`repro.zoo` — the 23-model DNN pool and Eq. 1 layer vectors
* :mod:`repro.hw` / :mod:`repro.sim` — the simulated heterogeneous board
  (plus the power model and the discrete-event cross-validator)
* :mod:`repro.autodiff` — numpy training substrate
* :mod:`repro.vqvae` / :mod:`repro.estimator` — the learned components
* :mod:`repro.search` — MCTS and the starvation-guarded reward
* :mod:`repro.core` — the RankMap manager (and its power-aware variant)
* :mod:`repro.baselines` — comparison managers
* :mod:`repro.workloads` — mixes, scenarios, traces and SLA tiers
* :mod:`repro.experiments` — per-figure reproduction harness
"""

from .core import RankMap, RankMapConfig
from .hw import orange_pi_5
from .sim import simulate
from .zoo import get_model

__version__ = "1.0.0"

__all__ = ["RankMap", "RankMapConfig", "orange_pi_5", "simulate",
           "get_model", "__version__"]
