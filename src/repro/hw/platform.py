"""Heterogeneous platform: an ordered set of components plus transfer links."""

from __future__ import annotations

from dataclasses import dataclass

from ..zoo.layers import ModelSpec
from .component import ComputeComponent
from .latency import solo_throughput
from .link import TransferLink

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """A heterogeneous embedded platform.

    Component order is the mapping alphabet: a mapping assigns each DNN
    block a component index into :attr:`components`.  By convention index 0
    is the GPU (the paper's baseline target).
    """

    name: str
    components: tuple[ComputeComponent, ...]
    link: TransferLink

    def __post_init__(self):
        if not self.components:
            raise ValueError("platform needs at least one component")
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names: {names}")

    # ------------------------------------------------------------------
    @property
    def num_components(self) -> int:
        return len(self.components)

    @property
    def gpu(self) -> ComputeComponent:
        """The highest-performing component (baseline target)."""
        return self.components[0]

    def component(self, index: int) -> ComputeComponent:
        return self.components[index]

    def index_of(self, name: str) -> int:
        for i, c in enumerate(self.components):
            if c.name == name:
                return i
        raise KeyError(f"no component named {name!r}")

    def ideal_throughput(self, model: ModelSpec) -> float:
        """Paper's t_ideal: the model alone and unpartitioned on the GPU."""
        return solo_throughput(model, self.gpu)

    def __repr__(self) -> str:
        names = ", ".join(c.name for c in self.components)
        return f"Platform({self.name!r}: {names})"
