"""Platform power and energy model (extension; see DESIGN.md §6).

The paper optimises throughput only, but its sequel line of work
(MapFormer, ICCAD 2024 — reference [2] of the paper) co-optimises
throughput and power on the same class of boards.  This module adds the
measurement side of that extension: a utilisation-driven power model per
component and an energy report for any simulated mapping, which
:class:`repro.core.power.PowerAwareRankMap` uses as its search signal.

Model shape: each component draws ``idle_w`` when powered plus a dynamic
term that scales with its utilisation, ``P_c = idle + dyn · util^gamma``.
``gamma < 1`` captures race-to-idle effects (clock/power gating recovers
less than linearly as load drops); ``gamma = 1`` is the classic
linear-in-activity CMOS approximation.  Numbers for the Orange Pi 5 preset
are public-datasheet estimates, not board measurements — they set plausible
*relative* magnitudes (the big cluster burns ~3x the LITTLE cluster at full
tilt; the GPU is the most efficient MAC engine), which is all the mapping
comparisons need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mapping.mapping import Mapping
from ..zoo.layers import ModelSpec
from .platform import Platform

__all__ = [
    "ComponentPower",
    "PlatformPower",
    "DvfsState",
    "EnergyReport",
    "orange_pi_5_power",
    "jetson_class_power",
    "dvfs_ladder",
    "interference_inflation",
    "inflated_component_utilisation",
    "energy_report",
]


@dataclass(frozen=True)
class ComponentPower:
    """Power envelope of one computing component."""

    name: str
    idle_w: float            # static draw while powered (W)
    dynamic_w: float         # extra draw at 100 % utilisation (W)
    util_exponent: float = 0.9

    def __post_init__(self):
        if self.idle_w < 0 or self.dynamic_w < 0:
            raise ValueError(f"{self.name}: power terms must be >= 0")
        if self.util_exponent <= 0:
            raise ValueError(f"{self.name}: util_exponent must be positive")

    def watts(self, utilisation: float) -> float:
        """Instantaneous draw at a utilisation in [0, 1]."""
        u = float(np.clip(utilisation, 0.0, 1.0))
        return self.idle_w + self.dynamic_w * u ** self.util_exponent


@dataclass(frozen=True)
class PlatformPower:
    """Per-component power models plus uncore/board overhead."""

    components: tuple[ComponentPower, ...]
    board_overhead_w: float = 0.0   # SoC uncore, DRAM refresh, rails, ...

    def __post_init__(self):
        if self.board_overhead_w < 0:
            raise ValueError("board_overhead_w must be >= 0")
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component power names: {names}")

    def matches(self, platform: Platform) -> bool:
        """True when component names align positionally with ``platform``."""
        if len(self.components) != platform.num_components:
            return False
        return all(p.name == platform.component(i).name
                   for i, p in enumerate(self.components))

    def system_watts(self, utilisations: np.ndarray) -> float:
        """Total board draw for per-component utilisations."""
        if len(utilisations) != len(self.components):
            raise ValueError("utilisation vector must match components")
        return self.board_overhead_w + sum(
            c.watts(u) for c, u in zip(self.components, utilisations))


@dataclass(frozen=True)
class DvfsState:
    """One DVFS operating point: a relative speed and its power envelope.

    ``speed_multiplier`` scales the node's nominal steady-state speed
    (1.0 is the top frequency; lower states trade throughput for watts);
    ``power`` is the whole platform's envelope *at that operating point*.
    Fleet nodes carry a small descending ladder of these
    (:func:`dvfs_ladder`) and the dispatcher's power governor steps down
    it when the fleet is over its cap.
    """

    speed_multiplier: float
    power: PlatformPower

    def __post_init__(self):
        if not 0.0 < self.speed_multiplier <= 1.0:
            raise ValueError(
                f"speed_multiplier must be in (0, 1], "
                f"got {self.speed_multiplier}")

    def node_watts(self, utilisation: float) -> float:
        """Board draw at a scalar occupancy-style utilisation in [0, 1].

        The fleet dispatcher cannot see per-component utilisations (nodes
        serve after the plan is fixed), so it prices a node by applying
        one occupancy fraction uniformly across the envelope's
        components.
        """
        u = float(np.clip(utilisation, 0.0, 1.0))
        return self.power.system_watts(
            np.full(len(self.power.components), u))


def dvfs_ladder(power: PlatformPower,
                multipliers: tuple[float, ...] = (1.0, 0.8, 0.6),
                ) -> tuple[DvfsState, ...]:
    """Build a descending DVFS ladder from a nominal power envelope.

    ``multipliers`` must start at 1.0 (the nominal operating point) and
    strictly decrease.  Each lower state scales every component's dynamic
    draw by ``m**3`` (the classic ``P ~ f * V^2`` CMOS scaling with
    voltage tracking frequency) and its idle draw by ``m`` (lower rails
    leak less); board overhead — rails, DRAM refresh — is frequency-blind
    and kept as is.
    """
    if not multipliers or multipliers[0] != 1.0:
        raise ValueError("multipliers must start at the nominal 1.0 state")
    if any(b >= a for a, b in zip(multipliers, multipliers[1:])):
        raise ValueError(
            f"multipliers must strictly decrease, got {multipliers}")
    states = []
    for m in multipliers:
        components = tuple(
            ComponentPower(name=c.name, idle_w=c.idle_w * m,
                           dynamic_w=c.dynamic_w * m ** 3,
                           util_exponent=c.util_exponent)
            for c in power.components)
        states.append(DvfsState(
            speed_multiplier=m,
            power=PlatformPower(components=components,
                                board_overhead_w=power.board_overhead_w)))
    return tuple(states)


def orange_pi_5_power() -> PlatformPower:
    """Estimated power envelopes for the paper's Orange Pi 5 (RK3588S)."""
    return PlatformPower(
        components=(
            ComponentPower("gpu", idle_w=0.30, dynamic_w=4.0),
            ComponentPower("big", idle_w=0.35, dynamic_w=4.5),
            ComponentPower("little", idle_w=0.15, dynamic_w=1.3),
        ),
        board_overhead_w=1.5,
    )


def jetson_class_power() -> PlatformPower:
    """Estimated power envelopes matching :func:`repro.hw.jetson_class`.

    Orin-NX-class module budgets (10-25 W modes): the Ampere iGPU
    dominates the envelope; the two 3-core A78AE groups are symmetric.
    """
    return PlatformPower(
        components=(
            ComponentPower("gpu", idle_w=0.8, dynamic_w=12.0),
            ComponentPower("big", idle_w=0.4, dynamic_w=3.6),
            ComponentPower("little", idle_w=0.4, dynamic_w=3.4),
        ),
        board_overhead_w=3.0,
    )


@dataclass(frozen=True)
class EnergyReport:
    """Power/energy accounting for one mapping at steady state.

    ``component_utilisation`` is clipped to [0, 1] — the busy fraction
    the power model converts to watts (a component cannot draw more than
    its 100 %-busy power).  ``component_raw_utilisation`` keeps the
    solver's *unclipped* figure: anything above 1.0 there is
    oversubscription the watts alone cannot show, which cap accounting
    and search diagnostics need to see.
    """

    component_names: tuple[str, ...]
    component_utilisation: np.ndarray
    component_raw_utilisation: np.ndarray  # pre-clip; > 1 = oversubscribed
    component_watts: np.ndarray        # per component, incl. its idle term
    system_watts: float                # components + board overhead
    workload_names: tuple[str, ...]
    rates: np.ndarray                  # inferences/s per DNN
    dnn_joules_per_inference: np.ndarray  # dynamic energy attribution

    @property
    def total_throughput(self) -> float:
        """Sum of per-DNN rates (inferences/s)."""
        return float(self.rates.sum())

    @property
    def inferences_per_joule(self) -> float:
        """System energy efficiency: total inferences per joule.

        Degenerate cases report 0.0, never ``inf``: zero throughput
        earns nothing per joule, and a zero/negative-watts envelope (an
        all-zero power model) has no meaningful efficiency — returning
        ``inf`` would poison ``reward / watts`` comparisons and JSON
        export alike.
        """
        throughput = self.total_throughput
        if throughput <= 0 or self.system_watts <= 0:
            return 0.0
        return throughput / self.system_watts

    def __repr__(self) -> str:
        return (f"EnergyReport({self.system_watts:.2f} W, "
                f"{self.total_throughput:.2f} inf/s, "
                f"{self.inferences_per_joule:.2f} inf/J)")


def interference_inflation(platform: Platform, demands) -> np.ndarray:
    """Per-component demand inflation from co-resident DNN contexts.

    Each component's factor is its
    :meth:`~repro.hw.component.Component.interference_factor` at the
    number of distinct DNNs with at least one stage resident there — the
    same contention model the steady-state solver applies.  ``demands``
    is the :func:`repro.sim.demands.compute_stage_demands` list.
    """
    inflation = np.ones(platform.num_components)
    for c in range(platform.num_components):
        contexts = len({d.dnn_index for d in demands if d.component == c})
        if contexts:
            inflation[c] = platform.component(c).interference_factor(contexts)
    return inflation


def inflated_component_utilisation(demands, rates: np.ndarray,
                                   platform: Platform) -> np.ndarray:
    """Raw per-component busy fraction at given per-DNN rates.

    Sums ``rate x interference-inflated service demand`` over the
    resident stages of each component — the single source of truth for
    power-model utilisation, shared by :func:`energy_report` (with the
    solver's measured rates) and
    :meth:`repro.core.power.PowerAwareRankMap.estimated_watts` (with
    predicted rates).  The result is *unclipped*: values above 1.0 mean
    the rates oversubscribe the component.
    """
    inflation = interference_inflation(platform, demands)
    util = np.zeros(platform.num_components)
    for d in demands:
        util[d.component] += (rates[d.dnn_index] * d.seconds_per_inference
                              * inflation[d.component])
    return util


def energy_report(workload: list[ModelSpec], mapping: Mapping,
                  platform: Platform, power: PlatformPower) -> EnergyReport:
    """Simulate ``mapping`` and account its steady-state power and energy.

    Per-DNN energy attribution covers each component's *dynamic* draw,
    split among resident stages by their share of the component's busy
    time; idle and board overhead are shared infrastructure and appear
    only in ``system_watts``.
    """
    from ..sim.demands import compute_stage_demands
    from ..sim.engine import simulate

    if not power.matches(platform):
        raise ValueError("power model does not match platform components")

    result = simulate(workload, mapping, platform)
    solution = result.solution
    demands = compute_stage_demands(workload, mapping, platform)

    raw_util = np.asarray(solution.component_utilisation, dtype=float)
    util = np.clip(raw_util, 0.0, 1.0)
    watts = np.array([c.watts(u)
                      for c, u in zip(power.components, util)])
    system = power.system_watts(util)

    # Stage busy time per second of wall clock: rate x service demand
    # (interference-inflated execution only — head-of-line *waiting* burns
    # no energy and is excluded, consistent with the solver's utilisation).
    n = len(workload)
    dyn_power_per_dnn = np.zeros(n)
    inflation = interference_inflation(platform, demands)
    busy = np.array([
        solution.rates[d.dnn_index] * d.seconds_per_inference
        * inflation[d.component]
        for d in demands
    ])
    for c in range(platform.num_components):
        stage_idx = [i for i, d in enumerate(demands) if d.component == c]
        if not stage_idx:
            continue
        comp_busy = busy[stage_idx].sum()
        if comp_busy <= 0:
            continue
        dyn_watts = power.components[c].dynamic_w * \
            float(util[c]) ** power.components[c].util_exponent
        for i in stage_idx:
            share = busy[i] / comp_busy
            dyn_power_per_dnn[demands[i].dnn_index] += dyn_watts * share

    joules = np.where(solution.rates > 0,
                      dyn_power_per_dnn / np.maximum(solution.rates, 1e-12),
                      np.inf)
    return EnergyReport(
        component_names=tuple(c.name for c in power.components),
        component_utilisation=util,
        component_raw_utilisation=raw_util,
        component_watts=watts,
        system_watts=system,
        workload_names=tuple(m.name for m in workload),
        rates=solution.rates,
        dnn_joules_per_inference=joules,
    )
