"""Platform power and energy model (extension; see DESIGN.md §6).

The paper optimises throughput only, but its sequel line of work
(MapFormer, ICCAD 2024 — reference [2] of the paper) co-optimises
throughput and power on the same class of boards.  This module adds the
measurement side of that extension: a utilisation-driven power model per
component and an energy report for any simulated mapping, which
:class:`repro.core.power.PowerAwareRankMap` uses as its search signal.

Model shape: each component draws ``idle_w`` when powered plus a dynamic
term that scales with its utilisation, ``P_c = idle + dyn · util^gamma``.
``gamma < 1`` captures race-to-idle effects (clock/power gating recovers
less than linearly as load drops); ``gamma = 1`` is the classic
linear-in-activity CMOS approximation.  Numbers for the Orange Pi 5 preset
are public-datasheet estimates, not board measurements — they set plausible
*relative* magnitudes (the big cluster burns ~3x the LITTLE cluster at full
tilt; the GPU is the most efficient MAC engine), which is all the mapping
comparisons need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mapping.mapping import Mapping
from ..zoo.layers import ModelSpec
from .platform import Platform

__all__ = [
    "ComponentPower",
    "PlatformPower",
    "EnergyReport",
    "orange_pi_5_power",
    "jetson_class_power",
    "energy_report",
]


@dataclass(frozen=True)
class ComponentPower:
    """Power envelope of one computing component."""

    name: str
    idle_w: float            # static draw while powered (W)
    dynamic_w: float         # extra draw at 100 % utilisation (W)
    util_exponent: float = 0.9

    def __post_init__(self):
        if self.idle_w < 0 or self.dynamic_w < 0:
            raise ValueError(f"{self.name}: power terms must be >= 0")
        if self.util_exponent <= 0:
            raise ValueError(f"{self.name}: util_exponent must be positive")

    def watts(self, utilisation: float) -> float:
        """Instantaneous draw at a utilisation in [0, 1]."""
        u = float(np.clip(utilisation, 0.0, 1.0))
        return self.idle_w + self.dynamic_w * u ** self.util_exponent


@dataclass(frozen=True)
class PlatformPower:
    """Per-component power models plus uncore/board overhead."""

    components: tuple[ComponentPower, ...]
    board_overhead_w: float = 0.0   # SoC uncore, DRAM refresh, rails, ...

    def __post_init__(self):
        if self.board_overhead_w < 0:
            raise ValueError("board_overhead_w must be >= 0")
        names = [c.name for c in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component power names: {names}")

    def matches(self, platform: Platform) -> bool:
        """True when component names align positionally with ``platform``."""
        if len(self.components) != platform.num_components:
            return False
        return all(p.name == platform.component(i).name
                   for i, p in enumerate(self.components))

    def system_watts(self, utilisations: np.ndarray) -> float:
        """Total board draw for per-component utilisations."""
        if len(utilisations) != len(self.components):
            raise ValueError("utilisation vector must match components")
        return self.board_overhead_w + sum(
            c.watts(u) for c, u in zip(self.components, utilisations))


def orange_pi_5_power() -> PlatformPower:
    """Estimated power envelopes for the paper's Orange Pi 5 (RK3588S)."""
    return PlatformPower(
        components=(
            ComponentPower("gpu", idle_w=0.30, dynamic_w=4.0),
            ComponentPower("big", idle_w=0.35, dynamic_w=4.5),
            ComponentPower("little", idle_w=0.15, dynamic_w=1.3),
        ),
        board_overhead_w=1.5,
    )


def jetson_class_power() -> PlatformPower:
    """Estimated power envelopes matching :func:`repro.hw.jetson_class`.

    Orin-NX-class module budgets (10-25 W modes): the Ampere iGPU
    dominates the envelope; the two 3-core A78AE groups are symmetric.
    """
    return PlatformPower(
        components=(
            ComponentPower("gpu", idle_w=0.8, dynamic_w=12.0),
            ComponentPower("big", idle_w=0.4, dynamic_w=3.6),
            ComponentPower("little", idle_w=0.4, dynamic_w=3.4),
        ),
        board_overhead_w=3.0,
    )


@dataclass(frozen=True)
class EnergyReport:
    """Power/energy accounting for one mapping at steady state."""

    component_names: tuple[str, ...]
    component_utilisation: np.ndarray
    component_watts: np.ndarray        # per component, incl. its idle term
    system_watts: float                # components + board overhead
    workload_names: tuple[str, ...]
    rates: np.ndarray                  # inferences/s per DNN
    dnn_joules_per_inference: np.ndarray  # dynamic energy attribution

    @property
    def total_throughput(self) -> float:
        """Sum of per-DNN rates (inferences/s)."""
        return float(self.rates.sum())

    @property
    def inferences_per_joule(self) -> float:
        """System energy efficiency: total inferences per joule."""
        if self.system_watts <= 0:
            return float("inf")
        return self.total_throughput / self.system_watts

    def __repr__(self) -> str:
        return (f"EnergyReport({self.system_watts:.2f} W, "
                f"{self.total_throughput:.2f} inf/s, "
                f"{self.inferences_per_joule:.2f} inf/J)")


def energy_report(workload: list[ModelSpec], mapping: Mapping,
                  platform: Platform, power: PlatformPower) -> EnergyReport:
    """Simulate ``mapping`` and account its steady-state power and energy.

    Per-DNN energy attribution covers each component's *dynamic* draw,
    split among resident stages by their share of the component's busy
    time; idle and board overhead are shared infrastructure and appear
    only in ``system_watts``.
    """
    from ..sim.demands import compute_stage_demands
    from ..sim.engine import simulate

    if not power.matches(platform):
        raise ValueError("power model does not match platform components")

    result = simulate(workload, mapping, platform)
    solution = result.solution
    demands = compute_stage_demands(workload, mapping, platform)

    util = np.clip(solution.component_utilisation, 0.0, 1.0)
    watts = np.array([c.watts(u)
                      for c, u in zip(power.components, util)])
    system = power.system_watts(util)

    # Stage busy time per second of wall clock: rate x service demand
    # (interference-inflated execution only — head-of-line *waiting* burns
    # no energy and is excluded, consistent with the solver's utilisation).
    n = len(workload)
    dyn_power_per_dnn = np.zeros(n)
    inflation = np.ones(platform.num_components)
    for c in range(platform.num_components):
        contexts = len({d.dnn_index for d in demands if d.component == c})
        if contexts:
            inflation[c] = platform.component(c).interference_factor(contexts)
    busy = np.array([
        solution.rates[d.dnn_index] * d.seconds_per_inference
        * inflation[d.component]
        for d in demands
    ])
    for c in range(platform.num_components):
        stage_idx = [i for i, d in enumerate(demands) if d.component == c]
        if not stage_idx:
            continue
        comp_busy = busy[stage_idx].sum()
        if comp_busy <= 0:
            continue
        dyn_watts = power.components[c].dynamic_w * \
            float(util[c]) ** power.components[c].util_exponent
        for i in stage_idx:
            share = busy[i] / comp_busy
            dyn_power_per_dnn[demands[i].dnn_index] += dyn_watts * share

    joules = np.where(solution.rates > 0,
                      dyn_power_per_dnn / np.maximum(solution.rates, 1e-12),
                      np.inf)
    return EnergyReport(
        component_names=tuple(c.name for c in power.components),
        component_utilisation=util,
        component_watts=watts,
        system_watts=system,
        workload_names=tuple(m.name for m in workload),
        rates=solution.rates,
        dnn_joules_per_inference=joules,
    )
