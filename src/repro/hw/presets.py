"""Calibrated platform presets.

``orange_pi_5`` reproduces the paper's evaluation board: a Mali-G610 GPU,
a quad-core Cortex-A76 (big) cluster at 2.4 GHz and a quad-core Cortex-A55
(LITTLE) cluster at 1.8 GHz sharing LPDDR4X memory.  Parameters are
calibrated so the GPU's solo ("ideal") throughputs land near the values the
paper reports: AlexNet ~43 inf/s, SqueezeNet-V1 ~67 inf/s, ResNet-50
~20 inf/s, Inception-ResNet-V1 ~4 inf/s (Sec. V-B); see
tests/test_hw_calibration.py for the asserted bands.
"""

from __future__ import annotations

from .component import ComputeComponent, default_efficiency
from .link import TransferLink
from .platform import Platform

__all__ = ["orange_pi_5", "jetson_class", "GPU", "BIG", "LITTLE",
           "COMPONENT_NAMES"]

# Canonical component indices (mapping alphabet).
GPU, BIG, LITTLE = 0, 1, 2
COMPONENT_NAMES = ("gpu", "big", "little")


def orange_pi_5() -> Platform:
    """The calibrated Orange Pi 5 platform model."""
    gpu = ComputeComponent(
        name="gpu",
        kind="gpu",
        # Mali-G610 MC4: ~500 GFLOPS fp32 peak => ~250 GMAC/s.
        peak_macs_per_s=250e9,
        mem_bw_bytes_per_s=14e9,
        elem_ops_per_s=40e9,
        # OpenCL kernel launch + ARM CL scheduling per layer.
        dispatch_overhead_s=0.25e-3,
        type_efficiency=default_efficiency(conv=0.55, dwconv=0.20, fc=0.35),
        macs_half=4e6,
        channel_sat=48,
        # Non-preemptive command queues favour long-kernel contexts.
        sharing_bias=0.70,
        interference_alpha=0.60,
        interference_beta=1.2,
        # Non-preemptive kernel queue: launches wait behind running kernels.
        hol_blocking=0.5,
    )
    big = ComputeComponent(
        name="big",
        kind="big",
        # 4x Cortex-A76 @ 2.4 GHz, 2x128-bit NEON FMA: ~38 GMAC/s peak,
        # ACL GEMM reaches a large fraction of it.
        peak_macs_per_s=30e9,
        mem_bw_bytes_per_s=10e9,
        elem_ops_per_s=12e9,
        dispatch_overhead_s=0.03e-3,
        type_efficiency=default_efficiency(conv=0.65, dwconv=0.55, fc=0.60),
        macs_half=2e6,
        channel_sat=16,
        sharing_bias=0.15,
        interference_alpha=0.25,
        interference_beta=1.0,
        # CFS preempts at millisecond scale: little head-of-line blocking.
        hol_blocking=0.05,
    )
    little = ComputeComponent(
        name="little",
        kind="little",
        # 4x Cortex-A55 @ 1.8 GHz, single 128-bit NEON pipe.
        peak_macs_per_s=8e9,
        mem_bw_bytes_per_s=5e9,
        elem_ops_per_s=4e9,
        dispatch_overhead_s=0.04e-3,
        type_efficiency=default_efficiency(conv=0.60, dwconv=0.50, fc=0.55),
        macs_half=1e6,
        channel_sat=8,
        sharing_bias=0.15,
        interference_alpha=0.30,
        interference_beta=1.0,
        hol_blocking=0.05,
    )
    # Shared-DRAM handoff: map/unmap + cache maintenance + driver sync.
    link = TransferLink(bandwidth_bytes_per_s=5e9, latency_s=0.4e-3)
    return Platform("orange_pi_5", (gpu, big, little), link)


def jetson_class() -> Platform:
    """A Jetson-Orin-NX-class alternative platform.

    Much stronger, better-behaved GPU (CUDA stack: lower dispatch
    overhead, preemptive scheduling) with a uniform 6-core CPU complex
    exposed as two 3-core scheduling groups.  Used to show the manager
    generalises beyond the paper's board: on this platform the GPU
    dominates harder, so good mappings keep more work there.
    """
    gpu = ComputeComponent(
        name="gpu",
        kind="gpu",
        # Ampere-class iGPU: ~2 TFLOPS fp32 sustained => ~1 TMAC/s peak.
        peak_macs_per_s=1000e9,
        mem_bw_bytes_per_s=60e9,
        elem_ops_per_s=150e9,
        dispatch_overhead_s=0.05e-3,
        type_efficiency=default_efficiency(conv=0.60, dwconv=0.30, fc=0.45),
        macs_half=8e6,
        channel_sat=64,
        sharing_bias=0.3,          # preemptive MPS-style time slicing
        interference_alpha=0.35,
        interference_beta=1.1,
        hol_blocking=0.15,
    )
    cpu_a = ComputeComponent(
        name="big",
        kind="big",
        # 3x Cortex-A78AE @ 2.0 GHz.
        peak_macs_per_s=24e9,
        mem_bw_bytes_per_s=20e9,
        elem_ops_per_s=10e9,
        dispatch_overhead_s=0.03e-3,
        type_efficiency=default_efficiency(conv=0.65, dwconv=0.55, fc=0.60),
        macs_half=2e6,
        channel_sat=16,
        sharing_bias=0.15,
        interference_alpha=0.25,
        interference_beta=1.0,
        hol_blocking=0.05,
    )
    cpu_b = ComputeComponent(
        name="little",
        kind="little",
        # Second 3-core group (same silicon, shared L3: slightly worse).
        peak_macs_per_s=22e9,
        mem_bw_bytes_per_s=18e9,
        elem_ops_per_s=9e9,
        dispatch_overhead_s=0.03e-3,
        type_efficiency=default_efficiency(conv=0.62, dwconv=0.52, fc=0.57),
        macs_half=2e6,
        channel_sat=16,
        sharing_bias=0.15,
        interference_alpha=0.28,
        interference_beta=1.0,
        hol_blocking=0.05,
    )
    link = TransferLink(bandwidth_bytes_per_s=20e9, latency_s=0.15e-3)
    return Platform("jetson_class", (gpu, cpu_a, cpu_b), link)
