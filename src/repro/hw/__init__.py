"""Hardware platform model (the board substitute — see DESIGN.md)."""

from .component import ComputeComponent, default_efficiency
from .energy import (
    ComponentPower,
    DvfsState,
    EnergyReport,
    PlatformPower,
    dvfs_ladder,
    energy_report,
    inflated_component_utilisation,
    interference_inflation,
    jetson_class_power,
    orange_pi_5_power,
)
from .latency import block_latency, layer_latency, model_latency, solo_throughput
from .link import TransferLink
from .platform import Platform
from .presets import BIG, COMPONENT_NAMES, GPU, LITTLE, jetson_class, orange_pi_5

__all__ = [
    "ComputeComponent",
    "default_efficiency",
    "ComponentPower",
    "PlatformPower",
    "DvfsState",
    "EnergyReport",
    "orange_pi_5_power",
    "jetson_class_power",
    "dvfs_ladder",
    "interference_inflation",
    "inflated_component_utilisation",
    "energy_report",
    "TransferLink",
    "Platform",
    "orange_pi_5",
    "jetson_class",
    "GPU",
    "BIG",
    "LITTLE",
    "COMPONENT_NAMES",
    "layer_latency",
    "block_latency",
    "model_latency",
    "solo_throughput",
]
