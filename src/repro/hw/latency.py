"""Roofline-style per-layer latency model.

For a layer ``l`` on component ``c``::

    compute_t = macs / (peak * eff(type) * utilisation) + elem_ops / elem_rate
    memory_t  = (ifm + ofm + weights bytes) / mem_bw
    latency   = dispatch_overhead + max(compute_t, memory_t)

Weights are streamed from DRAM every inference (model working sets exceed
on-chip caches on the Orange Pi 5 class of device), so weight bytes count
toward the memory roof.
"""

from __future__ import annotations

from ..zoo.layers import BlockSpec, LayerSpec, ModelSpec
from .component import ComputeComponent

__all__ = ["layer_latency", "block_latency", "model_latency", "solo_throughput"]


def layer_latency(layer: LayerSpec, comp: ComputeComponent) -> float:
    """Seconds to execute ``layer`` once, alone, on ``comp``."""
    compute_t = 0.0
    if layer.macs > 0:
        eff = comp.efficiency_for(layer.op_type)
        util = comp.utilisation(layer.macs, layer.ifm[0], layer.ofm[0])
        compute_t += layer.macs / (comp.peak_macs_per_s * eff * util)
    if layer.elem_ops > 0:
        compute_t += layer.elem_ops / comp.elem_ops_per_s
    bytes_moved = layer.input_bytes + layer.output_bytes + layer.weight_bytes
    memory_t = bytes_moved / comp.mem_bw_bytes_per_s
    return comp.dispatch_overhead_s + max(compute_t, memory_t)


def block_latency(block: BlockSpec, comp: ComputeComponent) -> float:
    """Seconds to execute every layer of ``block`` once on ``comp``."""
    return sum(layer_latency(l, comp) for l in block.layers)


# Block latencies are pure functions of (model, component parameters); the
# solver re-evaluates them for every candidate mapping, so memoise them.
_BLOCK_CACHE: dict[tuple, list[float]] = {}


def block_latencies(model: ModelSpec, comp: ComputeComponent) -> list[float]:
    """Per-block latencies of ``model`` on ``comp`` (memoised)."""
    key = (model.name, comp.cache_key())
    found = _BLOCK_CACHE.get(key)
    if found is None:
        found = [block_latency(b, comp) for b in model.blocks]
        _BLOCK_CACHE[key] = found
    return found


def model_latency(model: ModelSpec, comp: ComputeComponent) -> float:
    """End-to-end single-inference latency of the whole model on ``comp``."""
    return sum(block_latencies(model, comp))


def solo_throughput(model: ModelSpec, comp: ComputeComponent) -> float:
    """Inferences/s of the unpartitioned model running alone on ``comp``.

    On the platform's GPU this is the paper's ``t_ideal`` reference used by
    the potential-throughput metric P.
    """
    return 1.0 / model_latency(model, comp)
