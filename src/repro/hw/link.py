"""Inter-component transfer model.

On the Orange Pi 5 all components share LPDDR4X DRAM, so a pipeline-stage
handoff between components is a buffer ownership transfer: cache
flush/invalidate plus driver synchronisation, modelled as a fixed latency
plus a bandwidth term.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TransferLink"]


@dataclass(frozen=True)
class TransferLink:
    """Cost model for moving a feature map between two components."""

    bandwidth_bytes_per_s: float
    latency_s: float

    def __post_init__(self):
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("link latency must be non-negative")

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to hand ``nbytes`` to the next stage."""
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s
