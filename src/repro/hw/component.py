"""Computing-component performance model.

Each component (GPU, big CPU cluster, LITTLE CPU cluster) is described by a
small set of parameters that drive a roofline-style per-layer latency model
(see :mod:`repro.hw.latency`) and a contention model (see
:mod:`repro.sim.contention`):

* ``peak_macs_per_s`` / ``type_efficiency`` — compute roof per layer type.
* ``macs_half`` / ``channel_sat`` — utilisation saturation: small kernels
  cannot fill wide engines, which is why light DNNs lose less than heavy
  ones when they leave the GPU (a key effect behind the paper's Fig. 2).
* ``dispatch_overhead_s`` — fixed per-layer launch cost; penalises
  branch-heavy architectures (Inception family) on the GPU.
* ``sharing_bias`` (κ) — how the component's scheduler divides time between
  co-resident pipeline stages: 0 = perfectly fair processor sharing (CFS on
  the CPU clusters), 1 = shares proportional to kernel service time
  (non-preemptive GPU command queues favour long-kernel contexts).
* ``interference_alpha/beta`` — co-residency demand inflation
  1 + α·(n−1)^β from cache/memory-system thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..zoo.layers import LayerType

__all__ = ["ComputeComponent", "default_efficiency"]


def default_efficiency(conv: float, dwconv: float, fc: float) -> dict[int, float]:
    """Build a per-layer-type efficiency table from three anchor values."""
    return {
        LayerType.CONV: conv,
        LayerType.GROUP_CONV: 0.8 * conv,
        LayerType.DWCONV: dwconv,
        LayerType.FC: fc,
        LayerType.DETECT_HEAD: 0.9 * conv,
    }


@dataclass(frozen=True)
class ComputeComponent:
    """A single computing component of the heterogeneous platform."""

    name: str
    kind: str                       # "gpu" | "big" | "little"
    peak_macs_per_s: float
    mem_bw_bytes_per_s: float
    elem_ops_per_s: float
    dispatch_overhead_s: float
    type_efficiency: dict[int, float] = field(hash=False)
    macs_half: float = 1e6          # 50 %-utilisation kernel size
    channel_sat: int = 16           # channels needed to fill vector lanes
    sharing_bias: float = 0.0       # κ: 0 fair PS .. 1 service-time biased
    interference_alpha: float = 0.2
    interference_beta: float = 1.0
    hol_blocking: float = 0.0       # head-of-line blocking fraction

    def __post_init__(self):
        if self.peak_macs_per_s <= 0 or self.mem_bw_bytes_per_s <= 0:
            raise ValueError(f"{self.name}: rates must be positive")
        if not 0.0 <= self.sharing_bias <= 1.0:
            raise ValueError(f"{self.name}: sharing_bias must be in [0, 1]")

    # ------------------------------------------------------------------
    def cache_key(self) -> tuple:
        """Value-based key for latency memoisation (dataclass holds a dict,
        so instances themselves are unhashable)."""
        return (
            self.name, self.kind, self.peak_macs_per_s,
            self.mem_bw_bytes_per_s, self.elem_ops_per_s,
            self.dispatch_overhead_s, tuple(sorted(self.type_efficiency.items())),
            self.macs_half, self.channel_sat, self.sharing_bias,
            self.interference_alpha, self.interference_beta, self.hol_blocking,
        )

    def efficiency_for(self, op_type: int) -> float:
        """Fraction of peak MAC throughput achieved by ``op_type``."""
        return self.type_efficiency.get(op_type, 0.5)

    def utilisation(self, macs: int, in_channels: int, out_channels: int) -> float:
        """Kernel-size dependent utilisation in (0, 1].

        Combines a MAC-count saturation curve with a channel-width term:
        kernels with few MACs or narrow channel dimensions cannot fill the
        component's parallel lanes.
        """
        if macs <= 0:
            return 1.0
        size_u = macs / (macs + self.macs_half)
        ch = min(in_channels, out_channels) if min(in_channels, out_channels) > 0 \
            else max(in_channels, out_channels)
        ch_u = min(1.0, ch / self.channel_sat) if ch > 0 else 1.0
        # Geometric blend keeps either term from zeroing the estimate.
        return max(0.05, size_u * (0.5 + 0.5 * ch_u))

    def interference_factor(self, resident_stages: int) -> float:
        """Demand inflation when ``resident_stages`` share this component."""
        if resident_stages <= 1:
            return 1.0
        return 1.0 + self.interference_alpha * (resident_stages - 1) ** self.interference_beta

    def __repr__(self) -> str:
        return f"ComputeComponent({self.name!r}, {self.peak_macs_per_s/1e9:.0f} GMAC/s)"
