"""Grouped Residual Vector Quantisation (Sec. IV-C).

The paper quantises the VQ-VAE latent space with Grouped Residual Vector
Quantisation (HiFi-Codec, Yang et al. 2023): the embedding dimensions are
split into groups, each group is quantised by a cascade of residual
codebooks, and codebooks are learned with exponential-moving-average
k-means updates plus dead-code restarts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GroupedResidualVQ"]


class GroupedResidualVQ:
    """EMA-trained grouped residual vector quantiser.

    Parameters
    ----------
    dim:
        Embedding dimensionality (split evenly across ``groups``).
    groups:
        Number of dimension groups quantised independently.
    stages:
        Residual quantisation depth per group.
    codebook_size:
        Entries per (group, stage) codebook.
    """

    def __init__(self, dim: int, groups: int = 2, stages: int = 2,
                 codebook_size: int = 64, decay: float = 0.95,
                 epsilon: float = 1e-5, rng: np.random.Generator | None = None):
        if dim % groups:
            raise ValueError(f"dim {dim} not divisible by groups {groups}")
        self.dim = dim
        self.groups = groups
        self.stages = stages
        self.codebook_size = codebook_size
        self.decay = decay
        self.epsilon = epsilon
        self.group_dim = dim // groups
        rng = rng or np.random.default_rng(0)
        self._rng = rng
        # codebooks[g][s]: (K, group_dim)
        self.codebooks = [
            [rng.normal(0, 0.5, size=(codebook_size, self.group_dim))
             for _ in range(stages)]
            for _ in range(groups)
        ]
        self._ema_count = [
            [np.ones(codebook_size) for _ in range(stages)]
            for _ in range(groups)
        ]
        self._ema_sum = [
            [self.codebooks[g][s].copy() for s in range(stages)]
            for g in range(groups)
        ]

    # ------------------------------------------------------------------
    def quantize(self, x: np.ndarray, update: bool = False
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Quantise rows of ``x`` (N, dim).

        Returns (quantised (N, dim), codes (N, groups, stages)).  With
        ``update=True`` codebooks receive an EMA k-means step.
        """
        if x.ndim != 2 or x.shape[1] != self.dim:
            raise ValueError(f"expected (N, {self.dim}), got {x.shape}")
        n = x.shape[0]
        quantized = np.zeros_like(x)
        codes = np.zeros((n, self.groups, self.stages), dtype=np.int64)
        for g in range(self.groups):
            lo, hi = g * self.group_dim, (g + 1) * self.group_dim
            residual = x[:, lo:hi].copy()
            acc = np.zeros_like(residual)
            for s in range(self.stages):
                book = self.codebooks[g][s]
                dists = (
                    (residual**2).sum(axis=1, keepdims=True)
                    - 2 * residual @ book.T
                    + (book**2).sum(axis=1)
                )
                idx = dists.argmin(axis=1)
                codes[:, g, s] = idx
                chosen = book[idx]
                if update:
                    self._ema_update(g, s, residual, idx)
                acc += chosen
                residual -= chosen
            quantized[:, lo:hi] = acc
        return quantized, codes

    def _ema_update(self, g: int, s: int, vectors: np.ndarray,
                    idx: np.ndarray) -> None:
        k = self.codebook_size
        onehot = np.zeros((vectors.shape[0], k))
        onehot[np.arange(vectors.shape[0]), idx] = 1.0
        counts = onehot.sum(axis=0)
        sums = onehot.T @ vectors

        self._ema_count[g][s] = (
            self.decay * self._ema_count[g][s] + (1 - self.decay) * counts
        )
        self._ema_sum[g][s] = (
            self.decay * self._ema_sum[g][s] + (1 - self.decay) * sums
        )
        # Laplace-smoothed means.
        total = self._ema_count[g][s].sum()
        smoothed = (
            (self._ema_count[g][s] + self.epsilon)
            / (total + k * self.epsilon) * total
        )
        self.codebooks[g][s] = self._ema_sum[g][s] / smoothed[:, None]

        # Dead-code restart: entries that have essentially never been used
        # are re-seeded from the current batch.
        dead = self._ema_count[g][s] < 0.01
        if dead.any() and vectors.shape[0] > 0:
            picks = self._rng.integers(vectors.shape[0], size=int(dead.sum()))
            self.codebooks[g][s][dead] = vectors[picks]
            self._ema_sum[g][s][dead] = vectors[picks]
            self._ema_count[g][s][dead] = 1.0

    # ------------------------------------------------------------------
    def codebook_usage(self) -> float:
        """Fraction of codebook entries in active use (perplexity proxy)."""
        used = 0
        total = 0
        for g in range(self.groups):
            for s in range(self.stages):
                used += int((self._ema_count[g][s] > 0.01).sum())
                total += self.codebook_size
        return used / total

    def state_arrays(self) -> list[np.ndarray]:
        out = []
        for g in range(self.groups):
            for s in range(self.stages):
                out.extend([
                    self.codebooks[g][s].copy(),
                    self._ema_count[g][s].copy(),
                    self._ema_sum[g][s].copy(),
                ])
        return out

    def load_arrays(self, arrays: list[np.ndarray]) -> None:
        expected = self.groups * self.stages * 3
        if len(arrays) != expected:
            raise ValueError(f"expected {expected} arrays, got {len(arrays)}")
        it = iter(arrays)
        for g in range(self.groups):
            for s in range(self.stages):
                self.codebooks[g][s] = next(it).copy()
                self._ema_count[g][s] = next(it).copy()
                self._ema_sum[g][s] = next(it).copy()
