"""VQ-VAE layer encoder (Sec. IV-C).

Compresses the raw 22-dimensional Eq. 1 layer vectors into 16-dimensional
discrete-codebook embeddings.  1-D convolutions run along a DNN's layer
sequence so each embedding carries local architectural context; the
bottleneck is quantised with :class:`GroupedResidualVQ` and trained with a
straight-through estimator plus commitment loss.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, nn, no_grad, ops
from ..zoo.layers import ModelSpec
from ..zoo.vectorize import LAYER_VECTOR_DIM, vectorize_model
from .quantizer import GroupedResidualVQ

__all__ = ["LayerVQVAE", "EMBEDDING_DIM"]

#: The paper's compressed layer-embedding width.
EMBEDDING_DIM = 16


class LayerVQVAE(nn.Module):
    """Conv1d encoder / decoder around a grouped-residual VQ bottleneck."""

    def __init__(self, rng: np.random.Generator, hidden: int = 32,
                 embed_dim: int = EMBEDDING_DIM, groups: int = 2,
                 stages: int = 2, codebook_size: int = 64,
                 commitment_beta: float = 0.25):
        super().__init__()
        self.embed_dim = embed_dim
        self.commitment_beta = commitment_beta
        self.encoder = nn.Sequential(
            nn.Conv1d(LAYER_VECTOR_DIM, hidden, 3, rng, padding=1),
            nn.ReLU(),
            nn.Conv1d(hidden, hidden, 3, rng, padding=1),
            nn.ReLU(),
            nn.Conv1d(hidden, embed_dim, 1, rng),
        )
        self.decoder = nn.Sequential(
            nn.Conv1d(embed_dim, hidden, 3, rng, padding=1),
            nn.ReLU(),
            nn.Conv1d(hidden, hidden, 3, rng, padding=1),
            nn.ReLU(),
            nn.Conv1d(hidden, LAYER_VECTOR_DIM, 1, rng),
        )
        self.quantizer = GroupedResidualVQ(
            embed_dim, groups=groups, stages=stages,
            codebook_size=codebook_size, rng=rng,
        )

    # ------------------------------------------------------------------
    def encode_continuous(self, features: Tensor) -> Tensor:
        """Encoder output before quantisation; ``features`` is (1, 22, L)."""
        return self.encoder(features)

    def forward(self, features: Tensor) -> tuple[Tensor, Tensor, np.ndarray]:
        """Run the full autoencoder.

        Returns (reconstruction (1, 22, L), continuous latents (1, E, L),
        quantised latents as a plain array).
        """
        ze = self.encode_continuous(features)
        flat = ze.data[0].T  # (L, E)
        zq_flat, _ = self.quantizer.quantize(flat, update=self.training)
        zq_data = zq_flat.T[None]
        zq = ops.straight_through(Tensor(zq_data), ze)
        recon = self.decoder(zq)
        return recon, ze, zq_data

    def loss(self, features: Tensor) -> tuple[Tensor, float]:
        """Training objective: reconstruction + commitment.

        Returns (total loss tensor, reconstruction L2 as a float).
        """
        recon, ze, zq_data = self.forward(features)
        recon_err = ((recon - features) ** 2).mean()
        commit = ((ze - Tensor(zq_data)) ** 2).mean()
        total = recon_err + commit * self.commitment_beta
        return total, float(recon_err.data)

    # ------------------------------------------------------------------
    def embed_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Quantised embeddings for a (layers, 22) feature matrix."""
        x = Tensor(matrix.T[None])  # (1, 22, L)
        with no_grad():
            ze = self.encode_continuous(x)
        zq, _ = self.quantizer.quantize(ze.data[0].T, update=False)
        return zq

    def embed_model(self, model: ModelSpec) -> np.ndarray:
        """Quantised (num_layers, EMBEDDING_DIM) embedding of ``model``."""
        return self.embed_matrix(vectorize_model(model))
