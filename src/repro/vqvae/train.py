"""VQ-VAE training on the model zoo's layer sequences."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor, optim
from ..zoo.layers import ModelSpec
from ..zoo.registry import pool_models
from ..zoo.vectorize import vectorize_model
from .model import LayerVQVAE

__all__ = ["VQVAETrainConfig", "train_vqvae", "EmbeddingCache"]


@dataclass(frozen=True)
class VQVAETrainConfig:
    """Hyper-parameters for VQ-VAE training."""

    epochs: int = 12
    lr: float = 2e-3
    seed: int = 0
    hidden: int = 32


def train_vqvae(models: list[ModelSpec] | None = None,
                config: VQVAETrainConfig | None = None
                ) -> tuple[LayerVQVAE, list[float]]:
    """Train a :class:`LayerVQVAE` on the layer sequences of ``models``.

    Returns the trained model and the per-epoch mean reconstruction L2.
    """
    config = config if config is not None else VQVAETrainConfig()
    rng = np.random.default_rng(config.seed)
    models = models if models is not None else pool_models()
    vqvae = LayerVQVAE(rng, hidden=config.hidden)
    optimizer = optim.Adam(vqvae.parameters(), lr=config.lr)
    sequences = [vectorize_model(m) for m in models]

    history: list[float] = []
    for _ in range(config.epochs):
        order = rng.permutation(len(sequences))
        epoch_err = 0.0
        for i in order:
            features = Tensor(sequences[i].T[None])  # (1, 22, L)
            optimizer.zero_grad()
            total, recon_err = vqvae.loss(features)
            total.backward()
            optim.clip_grad_norm(vqvae.parameters(), 5.0)
            optimizer.step()
            epoch_err += recon_err
        history.append(epoch_err / len(sequences))
    vqvae.eval()
    return vqvae, history


class EmbeddingCache:
    """Memoised per-model quantised embeddings (the search hot path)."""

    def __init__(self, vqvae: LayerVQVAE):
        self.vqvae = vqvae
        self._cache: dict[str, np.ndarray] = {}

    def get(self, model: ModelSpec) -> np.ndarray:
        found = self._cache.get(model.name)
        if found is None:
            found = self.vqvae.embed_model(model)
            self._cache[model.name] = found
        return found

    def for_workload(self, workload: list[ModelSpec]) -> list[np.ndarray]:
        return [self.get(m) for m in workload]
