"""VQ-VAE layer-embedding compression (Sec. IV-C)."""

from .model import EMBEDDING_DIM, LayerVQVAE
from .quantizer import GroupedResidualVQ
from .train import EmbeddingCache, VQVAETrainConfig, train_vqvae

__all__ = [
    "EMBEDDING_DIM",
    "LayerVQVAE",
    "GroupedResidualVQ",
    "EmbeddingCache",
    "VQVAETrainConfig",
    "train_vqvae",
]
