"""Numpy reverse-mode autodiff engine (training substrate).

The paper trains its learned components (VQ-VAE layer encoder, multi-task
throughput estimator) with PyTorch; this package provides the equivalent
capability offline: tensors with backpropagation, the operator set those
models require, a small module system, and optimisers.
"""

from . import nn, ops, optim
from .gradcheck import check_gradients, numeric_gradient
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "nn",
    "ops",
    "optim",
    "check_gradients",
    "numeric_gradient",
]
