"""Reverse-mode automatic differentiation on numpy arrays.

This module is the training substrate for the learned components of the
RankMap reproduction (the VQ-VAE layer encoder and the multi-task throughput
estimator).  The paper trains these in PyTorch; PyTorch is not available
offline, so we provide a small, well-tested tape-based autodiff engine with
exactly the operator set those models need.

The design follows the classic define-by-run pattern: every operation on
:class:`Tensor` records its parents and a closure that accumulates gradients
into them.  Calling :meth:`Tensor.backward` topologically sorts the recorded
graph and runs the closures in reverse order.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph recording (inference mode)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return True when operations record the autodiff graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Gradients of broadcast operands must be summed over the broadcast axes so
    that ``x.grad.shape == x.data.shape`` always holds.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation.

    Parameters
    ----------
    data:
        Array-like payload; converted to a float numpy array.
    requires_grad:
        When True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = ""):
        arr = np.asarray(data)
        if arr.dtype.kind not in "fc":
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        """Create a result tensor wired into the graph (if grad is enabled)."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Store by reference (cast only when dtypes differ).  Safe
            # because gradients are never mutated in place afterwards:
            # further accumulation rebinds via `+`, and the optimisers /
            # clippers also rebind rather than mutate.
            self.grad = grad if grad.dtype == self.data.dtype \
                else grad.astype(self.data.dtype)
        else:
            self.grad = self.grad + grad

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to 1 for scalar tensors.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without grad only allowed for scalars")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order over the recorded graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other):
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self):
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other):
        return self + (-as_tensor(other))

    def __rsub__(self, other):
        return as_tensor(other) + (-self)

    def __mul__(self, other):
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other):
        return as_tensor(other) / self

    def __pow__(self, exponent: float):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other):
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                if other.data.ndim == 1:
                    ga = np.multiply.outer(grad, other.data)
                else:
                    ga = grad @ np.swapaxes(other.data, -1, -2)
                if self.data.ndim == 1 and ga.ndim > 1:
                    ga = ga.sum(axis=tuple(range(ga.ndim - 1)))
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    gb = np.multiply.outer(self.data, grad)
                else:
                    gb = np.swapaxes(self.data, -1, -2) @ grad
                if other.data.ndim == 1 and gb.ndim > 1:
                    gb = gb.sum(axis=tuple(range(gb.ndim - 1)))
                other._accumulate(_unbroadcast(gb, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False):
        mu = self.mean(axis=axis, keepdims=True)
        centred = self - mu
        out = (centred * centred).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                o = np.expand_dims(o, axis)
            mask = (self.data == o).astype(self.data.dtype)
            # Split gradient equally between ties to keep the op well defined.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(in_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes):
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    def swapaxes(self, a: int, b: int):
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, idx):
        out_data = self.data[idx]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, idx, grad)
                self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self):
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self):
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self):
        out_data = np.sqrt(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward)

    def relu(self):
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, slope: float = 0.01):
        mask = self.data > 0
        out_data = np.where(mask, self.data, slope * self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, slope))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def gelu(self):
        """Gaussian error linear unit (tanh approximation)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad):
            if self.requires_grad:
                dt = (1.0 - t**2) * c * (1.0 + 3 * 0.044715 * x**2)
                self._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x * dt))

        return Tensor._make(out_data, (self,), backward)

    def abs(self):
        out_data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no-op for tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
