"""Composite and structured operations for the autodiff engine.

Convolutions are implemented with a kernel-position loop: for every kernel
offset the contribution is a single strided slice times a weight plane, which
keeps both the forward and backward passes fully vectorised in numpy without
materialising im2col buffers.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "concat",
    "stack",
    "pad2d",
    "pad1d",
    "softmax",
    "log_softmax",
    "conv2d",
    "depthwise_conv2d",
    "conv1d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "straight_through",
    "dropout",
    "where_mask",
    "clip_values",
]


# ----------------------------------------------------------------------
# Joining
# ----------------------------------------------------------------------
def concat(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                idx = [slice(None)] * grad.ndim
                idx[axis] = slice(lo, hi)
                t._accumulate(grad[tuple(idx)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        slabs = np.split(grad, len(tensors), axis=axis)
        for t, slab in zip(tensors, slabs):
            if t.requires_grad:
                t._accumulate(np.squeeze(slab, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


# ----------------------------------------------------------------------
# Padding
# ----------------------------------------------------------------------
def pad2d(x: Tensor, pad: tuple[int, int]) -> Tensor:
    """Zero-pad the trailing two (spatial) axes of an NCHW tensor."""
    ph, pw = pad
    if ph == 0 and pw == 0:
        return x
    out_data = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    def backward(grad):
        if x.requires_grad:
            h, w = x.shape[-2], x.shape[-1]
            x._accumulate(grad[..., ph : ph + h, pw : pw + w])

    return Tensor._make(out_data, (x,), backward)


def pad1d(x: Tensor, pad: int) -> Tensor:
    """Zero-pad the trailing axis of an NCL tensor."""
    if pad == 0:
        return x
    out_data = np.pad(x.data, ((0, 0), (0, 0), (pad, pad)))

    def backward(grad):
        if x.requires_grad:
            length = x.shape[-1]
            x._accumulate(grad[..., pad : pad + length])

    return Tensor._make(out_data, (x,), backward)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad):
        if x.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse
    soft = np.exp(out_data)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


# ----------------------------------------------------------------------
# Convolutions (kernel-position loop)
# ----------------------------------------------------------------------
def _out_size(n: int, k: int, stride: int) -> int:
    return (n - k) // stride + 1


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over an NCHW tensor.

    ``weight`` has shape (F, C, KH, KW).
    """
    if padding:
        x = pad2d(x, (padding, padding))
    n, c, h, w = x.shape
    f, c_w, kh, kw = weight.shape
    if c_w != c:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {c_w}")
    oh, ow = _out_size(h, kh, stride), _out_size(w, kw, stride)
    xd, wd = x.data, weight.data

    out_data = np.zeros((n, f, oh, ow), dtype=xd.dtype)
    for ki in range(kh):
        for kj in range(kw):
            patch = xd[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride]
            # (n, c, oh, ow) x (f, c) -> (n, f, oh, ow)
            out_data += np.einsum("nchw,fc->nfhw", patch, wd[:, :, ki, kj], optimize=True)
    if bias is not None:
        out_data += bias.data.reshape(1, f, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(xd)
            for ki in range(kh):
                for kj in range(kw):
                    gx[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride] += (
                        np.einsum("nfhw,fc->nchw", grad, wd[:, :, ki, kj], optimize=True)
                    )
            x._accumulate(gx)
        if weight.requires_grad:
            gw = np.zeros_like(wd)
            for ki in range(kh):
                for kj in range(kw):
                    patch = xd[
                        :, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride
                    ]
                    gw[:, :, ki, kj] = np.einsum("nchw,nfhw->fc", patch, grad, optimize=True)
            weight._accumulate(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor._make(out_data, parents, backward)


def depthwise_conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """Depthwise 2-D convolution (one filter per channel).

    ``weight`` has shape (C, KH, KW); channel ``c`` of the output only sees
    channel ``c`` of the input.  The estimator uses this because the channels
    of the mapping tensor Q correspond to statistically independent DNNs.
    """
    if padding:
        x = pad2d(x, (padding, padding))
    n, c, h, w = x.shape
    c_w, kh, kw = weight.shape
    if c_w != c:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {c_w}")
    oh, ow = _out_size(h, kh, stride), _out_size(w, kw, stride)
    xd, wd = x.data, weight.data

    out_data = np.zeros((n, c, oh, ow), dtype=xd.dtype)
    for ki in range(kh):
        for kj in range(kw):
            patch = xd[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride]
            out_data += patch * wd[None, :, ki, kj, None, None]
    if bias is not None:
        out_data += bias.data.reshape(1, c, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(xd)
            for ki in range(kh):
                for kj in range(kw):
                    gx[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride] += (
                        grad * wd[None, :, ki, kj, None, None]
                    )
            x._accumulate(gx)
        if weight.requires_grad:
            gw = np.zeros_like(wd)
            for ki in range(kh):
                for kj in range(kw):
                    patch = xd[
                        :, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride
                    ]
                    gw[:, ki, kj] = (patch * grad).sum(axis=(0, 2, 3))
            weight._accumulate(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor._make(out_data, parents, backward)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """1-D convolution over an NCL tensor; ``weight`` is (F, C, K)."""
    if padding:
        x = pad1d(x, padding)
    n, c, length = x.shape
    f, c_w, k = weight.shape
    if c_w != c:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {c_w}")
    ol = _out_size(length, k, stride)
    xd, wd = x.data, weight.data

    out_data = np.zeros((n, f, ol), dtype=xd.dtype)
    for ki in range(k):
        patch = xd[:, :, ki : ki + stride * ol : stride]
        out_data += np.einsum("ncl,fc->nfl", patch, wd[:, :, ki], optimize=True)
    if bias is not None:
        out_data += bias.data.reshape(1, f, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        if x.requires_grad:
            gx = np.zeros_like(xd)
            for ki in range(k):
                gx[:, :, ki : ki + stride * ol : stride] += np.einsum(
                    "nfl,fc->ncl", grad, wd[:, :, ki], optimize=True
                )
            x._accumulate(gx)
        if weight.requires_grad:
            gw = np.zeros_like(wd)
            for ki in range(k):
                patch = xd[:, :, ki : ki + stride * ol : stride]
                gw[:, :, ki] = np.einsum("ncl,nfl->fc", patch, grad, optimize=True)
            weight._accumulate(gw)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))

    return Tensor._make(out_data, parents, backward)


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over NCHW; gradient flows to the (first) argmax element."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh, ow = _out_size(h, kernel, stride), _out_size(w, kernel, stride)
    xd = x.data

    windows = np.empty((kernel * kernel, n, c, oh, ow), dtype=xd.dtype)
    for ki in range(kernel):
        for kj in range(kernel):
            windows[ki * kernel + kj] = xd[
                :, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride
            ]
    arg = windows.argmax(axis=0)
    out_data = np.take_along_axis(windows, arg[None], axis=0)[0]

    def backward(grad):
        if not x.requires_grad:
            return
        gx = np.zeros_like(xd)
        for ki in range(kernel):
            for kj in range(kernel):
                mask = arg == (ki * kernel + kj)
                gx[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride] += (
                    grad * mask
                )
        x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling over NCHW."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh, ow = _out_size(h, kernel, stride), _out_size(w, kernel, stride)
    xd = x.data
    scale = 1.0 / (kernel * kernel)

    out_data = np.zeros((n, c, oh, ow), dtype=xd.dtype)
    for ki in range(kernel):
        for kj in range(kernel):
            out_data += xd[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride]
    out_data *= scale

    def backward(grad):
        if not x.requires_grad:
            return
        gx = np.zeros_like(xd)
        g = grad * scale
        for ki in range(kernel):
            for kj in range(kernel):
                gx[:, :, ki : ki + stride * oh : stride, kj : kj + stride * ow : stride] += g
        x._accumulate(gx)

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial axes of NCHW, keeping (N, C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Miscellaneous
# ----------------------------------------------------------------------
def straight_through(quantized: Tensor, continuous: Tensor) -> Tensor:
    """VQ-VAE straight-through estimator.

    Forward returns ``quantized``; the gradient bypasses the (non-
    differentiable) quantisation and flows into ``continuous`` unchanged.
    """

    def backward(grad):
        if continuous.requires_grad:
            continuous._accumulate(grad)

    return Tensor._make(quantized.data.copy(), (continuous,), backward)


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep) / keep

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward)


def where_mask(mask: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select ``a`` where ``mask`` else ``b`` (mask is a constant array)."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.where(mask, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(np.where(mask, grad, 0.0).reshape(a.shape))
        if b.requires_grad:
            b._accumulate(np.where(mask, 0.0, grad).reshape(b.shape))

    return Tensor._make(out_data, (a, b), backward)


def clip_values(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values; gradient is passed through inside the active range."""
    out_data = np.clip(x.data, low, high)
    mask = (x.data > low) & (x.data < high)

    def backward(grad):
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)
