"""Finite-difference gradient checking for the autodiff engine.

Used pervasively by the test suite to verify that every operator's analytic
gradient matches a central-difference estimate.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "check_gradients"]


def numeric_gradient(fn, x: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` w.r.t. ``x``."""
    grad = np.zeros_like(x.data, dtype=np.float64)
    flat = x.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(fn().data)
        flat[i] = orig - eps
        lo = float(fn().data)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_gradients(fn, inputs: list[Tensor], eps: float = 1e-6,
                    rtol: float = 1e-4, atol: float = 1e-6) -> float:
    """Compare analytic and numeric gradients of scalar ``fn`` over ``inputs``.

    Returns the worst absolute error observed; raises ``AssertionError`` when
    any gradient disagrees beyond tolerance.
    """
    for t in inputs:
        t.zero_grad()
    out = fn()
    if out.data.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    out.backward()

    worst = 0.0
    for t in inputs:
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numeric_gradient(fn, t, eps=eps)
        err = np.abs(analytic - numeric)
        worst = max(worst, float(err.max()) if err.size else 0.0)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            idx = np.unravel_index(np.argmax(err), err.shape) if err.size else ()
            raise AssertionError(
                f"gradient mismatch at {idx}: analytic={analytic[idx]:.8f} "
                f"numeric={numeric[idx]:.8f} (max err {err.max():.2e})"
            )
    return worst
