"""Neural-network module system on top of the autodiff engine.

Mirrors the small subset of ``torch.nn`` needed by the RankMap models: a
:class:`Module` base with parameter discovery, linear/convolutional layers,
batch/layer normalisation, and the two attention variants the paper uses
(softmax self-attention in the estimator backbone, linear attention in the
per-DNN decoder streams).
"""

from __future__ import annotations

import math

import numpy as np

from . import ops
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "DepthwiseConv2d",
    "Conv1d",
    "BatchNorm2d",
    "BatchNorm1d",
    "LayerNorm",
    "ReLU",
    "GELU",
    "SelfAttention2d",
    "LinearAttention",
    "MLP",
]


class Parameter(Tensor):
    """A tensor registered as trainable state of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with recursive parameter/state discovery."""

    def __init__(self):
        self.training = True

    # -- traversal ------------------------------------------------------
    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        params: list[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            self._collect(value, params, seen)
        return params

    def _collect(self, value, params: list[Parameter], seen: set[int]) -> None:
        if isinstance(value, Parameter):
            if id(value) not in seen:
                seen.add(id(value))
                params.append(value)
        elif isinstance(value, Module):
            for p in value.parameters():
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        elif isinstance(value, (list, tuple)):
            for item in value:
                self._collect(item, params, seen)
        elif isinstance(value, dict):
            for item in value.values():
                self._collect(item, params, seen)

    def modules(self) -> list["Module"]:
        """This module plus all nested submodules."""
        found: list[Module] = [self]
        for value in self.__dict__.values():
            found.extend(self._collect_modules(value))
        return found

    def _collect_modules(self, value) -> list["Module"]:
        if isinstance(value, Module):
            return value.modules()
        if isinstance(value, (list, tuple)):
            out: list[Module] = []
            for item in value:
                out.extend(self._collect_modules(item))
            return out
        return []

    # -- mode switches --------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def astype(self, dtype) -> "Module":
        """Cast all parameters and numpy buffers (e.g. BN running stats)."""
        for m in self.modules():
            for key, value in m.__dict__.items():
                if isinstance(value, Parameter):
                    value.data = value.data.astype(dtype)
                elif isinstance(value, np.ndarray):
                    m.__dict__[key] = value.astype(dtype)
        return self

    # -- state (de)serialisation -----------------------------------------
    def _buffers(self) -> list[tuple["Module", str]]:
        """Non-parameter numpy buffers (e.g. batch-norm running stats), in
        deterministic traversal order."""
        found = []
        for m in self.modules():
            for key in sorted(m.__dict__):
                if isinstance(m.__dict__[key], np.ndarray):
                    found.append((m, key))
        return found

    def state_arrays(self) -> list[np.ndarray]:
        """Parameters followed by buffers (load with :meth:`load_arrays`)."""
        arrays = [p.data.copy() for p in self.parameters()]
        arrays.extend(m.__dict__[key].copy() for m, key in self._buffers())
        return arrays

    def load_arrays(self, arrays: list[np.ndarray]) -> None:
        params = self.parameters()
        buffers = self._buffers()
        expected = len(params) + len(buffers)
        if len(arrays) != expected:
            raise ValueError(f"expected {expected} arrays, got {len(arrays)}")
        for p, a in zip(params, arrays):
            if p.data.shape != a.shape:
                raise ValueError(f"shape mismatch: {p.data.shape} vs {a.shape}")
            p.data = a.copy()
        for (m, key), a in zip(buffers, arrays[len(params):]):
            if m.__dict__[key].shape != a.shape:
                raise ValueError(
                    f"buffer {key} shape mismatch: "
                    f"{m.__dict__[key].shape} vs {a.shape}"
                )
            m.__dict__[key] = a.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


def _kaiming(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


class Linear(Module):
    """Affine map y = x W^T + b."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.weight = Parameter(_kaiming(rng, (out_features, in_features), in_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """Standard 2-D convolution (NCHW)."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 rng: np.random.Generator, stride: int = 1, padding: int = 0,
                 bias: bool = True):
        super().__init__()
        fan_in = in_channels * kernel * kernel
        self.weight = Parameter(
            _kaiming(rng, (out_channels, in_channels, kernel, kernel), fan_in)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv2d(x, self.weight, self.bias, stride=self.stride,
                          padding=self.padding)


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution: one kernel per channel (NCHW)."""

    def __init__(self, channels: int, kernel: int, rng: np.random.Generator,
                 stride: int = 1, padding: int = 0, bias: bool = True):
        super().__init__()
        fan_in = kernel * kernel
        self.weight = Parameter(_kaiming(rng, (channels, kernel, kernel), fan_in))
        self.bias = Parameter(np.zeros(channels)) if bias else None
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return ops.depthwise_conv2d(x, self.weight, self.bias, stride=self.stride,
                                    padding=self.padding)


class Conv1d(Module):
    """Standard 1-D convolution (NCL); used by the VQ-VAE encoder/decoder."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int,
                 rng: np.random.Generator, stride: int = 1, padding: int = 0,
                 bias: bool = True):
        super().__init__()
        fan_in = in_channels * kernel
        self.weight = Parameter(_kaiming(rng, (out_channels, in_channels, kernel), fan_in))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return ops.conv1d(x, self.weight, self.bias, stride=self.stride,
                          padding=self.padding)


class BatchNorm2d(Module):
    """Batch normalisation over (N, H, W) per channel with running stats."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mu.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1)
            )
        else:
            mu = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        inv = (var + self.eps) ** -0.5
        normed = (x - mu) * inv
        return normed * self.gamma.reshape(1, -1, 1, 1) + self.beta.reshape(1, -1, 1, 1)


class BatchNorm1d(Module):
    """Batch normalisation over (N, L) per channel for NCL tensors."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(channels))
        self.beta = Parameter(np.zeros(channels))
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self.momentum = momentum
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = x.mean(axis=(0, 2), keepdims=True)
            var = x.var(axis=(0, 2), keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mu.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var.data.reshape(-1)
            )
        else:
            mu = Tensor(self.running_mean.reshape(1, -1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1))
        inv = (var + self.eps) ** -0.5
        normed = (x - mu) * inv
        return normed * self.gamma.reshape(1, -1, 1) + self.beta.reshape(1, -1, 1)


class LayerNorm(Module):
    """Layer normalisation over the trailing feature axis."""

    def __init__(self, features: int, eps: float = 1e-5):
        super().__init__()
        self.gamma = Parameter(np.ones(features))
        self.beta = Parameter(np.zeros(features))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) * ((var + self.eps) ** -0.5)
        return normed * self.gamma + self.beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class SelfAttention2d(Module):
    """Single-head softmax self-attention over the spatial grid of NCHW.

    Tokens are the H*W spatial positions; channels are features.  Includes a
    residual connection with a learned gate, following common practice for
    attention blocks inside convolutional backbones.
    """

    def __init__(self, channels: int, rng: np.random.Generator, head_dim: int | None = None):
        super().__init__()
        d = head_dim or channels
        self.q = Linear(channels, d, rng, bias=False)
        self.k = Linear(channels, d, rng, bias=False)
        self.v = Linear(channels, channels, rng, bias=False)
        self.gate = Parameter(np.zeros(1))
        self.scale = 1.0 / math.sqrt(d)

    def forward(self, x: Tensor) -> Tensor:
        n, c, h, w = x.shape
        tokens = x.reshape(n, c, h * w).swapaxes(1, 2)  # (n, hw, c)
        q, k, v = self.q(tokens), self.k(tokens), self.v(tokens)
        attn = ops.softmax((q @ k.swapaxes(1, 2)) * self.scale, axis=-1)
        out = attn @ v  # (n, hw, c)
        out = out.swapaxes(1, 2).reshape(n, c, h, w)
        return x + out * self.gate


class LinearAttention(Module):
    """Efficient attention with linear complexity (Shen et al., WACV 2021).

    Instead of the T×T score matrix, softmax is applied separately to queries
    (over features) and keys (over tokens); the context matrix K^T V is then
    only d×d.  Used for the estimator's per-DNN decoder streams.
    """

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 head_dim: int = 32):
        super().__init__()
        self.q = Linear(in_features, head_dim, rng, bias=False)
        self.k = Linear(in_features, head_dim, rng, bias=False)
        self.v = Linear(in_features, out_features, rng, bias=False)

    def forward(self, x: Tensor) -> Tensor:
        """``x`` is (N, T, F); returns (N, T, out_features)."""
        q = ops.softmax(self.q(x), axis=-1)       # feature-wise
        k = ops.softmax(self.k(x), axis=1)        # token-wise
        v = self.v(x)
        context = k.swapaxes(1, 2) @ v            # (N, d, out)
        return q @ context                        # (N, T, out)


class MLP(Module):
    """Fully connected stack with ReLU between layers."""

    def __init__(self, sizes: list[int], rng: np.random.Generator):
        super().__init__()
        self.layers = [
            Linear(a, b, rng) for a, b in zip(sizes[:-1], sizes[1:])
        ]

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = x.relu()
        return x
