"""Gradient-descent optimisers for the autodiff engine."""

from __future__ import annotations

import numpy as np

from .nn import Parameter

__all__ = ["SGD", "Adam", "clip_grad_norm", "CosineSchedule"]


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale  # rebind: grads may be shared views
    return norm


class SGD:
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: list[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class CosineSchedule:
    """Cosine learning-rate decay from ``lr_max`` to ``lr_min`` over ``steps``."""

    def __init__(self, optimizer, lr_max: float, lr_min: float, steps: int):
        self.optimizer = optimizer
        self.lr_max = lr_max
        self.lr_min = lr_min
        self.steps = max(1, steps)
        self._step = 0

    def step(self) -> float:
        frac = min(1.0, self._step / self.steps)
        lr = self.lr_min + 0.5 * (self.lr_max - self.lr_min) * (1 + np.cos(np.pi * frac))
        self.optimizer.lr = float(lr)
        self._step += 1
        return float(lr)
