"""ASCII rendering of tables, bar charts and histograms.

No plotting stack is available offline, so every figure is regenerated as
text: the same series the paper plots, printed as aligned tables/bars and
dumped as CSV next to them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["render_table", "render_bars", "render_histogram", "to_csv"]


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Monospace table with right-aligned numeric formatting."""
    def fmt(cell) -> str:
        if isinstance(cell, float) or isinstance(cell, np.floating):
            return f"{cell:.3f}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(labels: list[str], values, title: str = "",
                width: int = 50, unit: str = "") -> str:
    """Horizontal bar chart."""
    values = np.asarray(values, dtype=np.float64)
    top = values.max() if values.size and values.max() > 0 else 1.0
    label_w = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / top)))
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.3f}{unit}")
    return "\n".join(lines)


def render_histogram(values, bins: int = 10, title: str = "",
                     width: int = 40,
                     value_range: tuple[float, float] | None = None) -> str:
    """Vertical-count histogram rendered as horizontal bars per bin."""
    values = np.asarray(values, dtype=np.float64)
    counts, edges = np.histogram(values, bins=bins, range=value_range)
    top = counts.max() if counts.size and counts.max() > 0 else 1
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / top))
        lines.append(f"[{lo:6.2f},{hi:6.2f}) {str(count).rjust(4)} | {bar}")
    return "\n".join(lines)


def to_csv(headers: list[str], rows: list[list]) -> str:
    """Simple CSV serialisation (no quoting needs in our data)."""
    out = [",".join(headers)]
    for row in rows:
        out.append(",".join(
            f"{c:.6g}" if isinstance(c, (float, np.floating)) else str(c)
            for c in row
        ))
    return "\n".join(out) + "\n"
