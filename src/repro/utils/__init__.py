"""Shared utilities (ASCII rendering, misc helpers)."""

from .ascii_plots import render_bars, render_histogram, render_table, to_csv

__all__ = ["render_bars", "render_histogram", "render_table", "to_csv"]
