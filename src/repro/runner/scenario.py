"""Declarative scenario specs for fleet-scale sweeps.

A :class:`Scenario` names everything a worker process needs to rebuild the
run from scratch — model names (zoo registry keys), a platform preset key,
a manager roster key and a seed — so scenarios ship to a process pool as a
few bytes and every execution is deterministic no matter which worker picks
it up or in what order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mapping.mapping import Mapping
from ..workloads import sample_mix

__all__ = ["Scenario", "ScenarioResult", "mix_scenarios", "summarise"]


@dataclass(frozen=True)
class Scenario:
    """One (workload, platform, manager) planning problem."""

    name: str
    workload: tuple[str, ...]           # zoo model names, order significant
    manager: str = "rankmap_d"          # roster key, see runner.MANAGER_SPECS
    platform: str = "orange_pi_5"       # hw preset key
    priorities: tuple[float, ...] | None = None   # user vector (static modes)
    seed: int = 0
    search_iterations: int = 40         # MCTS budget for search-based managers
    search_rollouts: int = 2

    def __post_init__(self):
        if not self.workload:
            raise ValueError("scenario workload must not be empty")
        if self.priorities is not None \
                and len(self.priorities) != len(self.workload):
            raise ValueError("priorities must match workload size")


@dataclass(frozen=True)
class ScenarioResult:
    """Per-scenario outcome: the decision plus its measured steady state."""

    name: str
    manager: str
    platform: str
    workload: tuple[str, ...]
    assignments: tuple[tuple[int, ...], ...]
    decision_seconds: float
    rates: tuple[float, ...]
    potentials: tuple[float, ...]
    wall_seconds: float
    cache_hit_rate: float = 0.0         # oracle-cache effectiveness, if any

    @property
    def mapping(self) -> Mapping:
        return Mapping(self.assignments)

    @property
    def average_throughput(self) -> float:
        return float(np.mean(self.rates))

    @property
    def min_potential(self) -> float:
        return float(min(self.potentials))


def mix_scenarios(managers: tuple[str, ...],
                  sizes: tuple[int, ...] = (3, 4, 5),
                  mixes_per_size: int = 6,
                  seed: int = 0,
                  platform: str = "orange_pi_5",
                  search_iterations: int = 40,
                  search_rollouts: int = 2) -> list[Scenario]:
    """The paper's Sec. V-A style sweep as a flat scenario list.

    Every manager sees the *same* sampled mixes (one rng drives the mix
    sampling; manager seeds derive from the mix index), so per-manager
    aggregates stay comparable.
    """
    rng = np.random.default_rng(seed + 42)
    scenarios: list[Scenario] = []
    for size in sizes:
        for mix_index in range(mixes_per_size):
            workload = tuple(m.name for m in sample_mix(rng, size))
            for manager in managers:
                scenarios.append(Scenario(
                    name=f"mix{size}_{mix_index}_{manager}",
                    workload=workload, manager=manager, platform=platform,
                    seed=seed + 1000 * size + mix_index,
                    search_iterations=search_iterations,
                    search_rollouts=search_rollouts,
                ))
    return scenarios


def summarise(results: list[ScenarioResult]) -> list[dict]:
    """Aggregate results per (manager, platform): one row each."""
    groups: dict[tuple[str, str], list[ScenarioResult]] = {}
    for r in results:
        groups.setdefault((r.manager, r.platform), []).append(r)
    rows = []
    for (manager, platform), rs in sorted(groups.items()):
        rows.append({
            "manager": manager,
            "platform": platform,
            "scenarios": len(rs),
            "mean_throughput": float(np.mean(
                [r.average_throughput for r in rs])),
            "mean_min_potential": float(np.mean(
                [r.min_potential for r in rs])),
            "mean_decision_seconds": float(np.mean(
                [r.decision_seconds for r in rs])),
        })
    return rows
