"""Declarative scenario specs for fleet-scale sweeps.

A :class:`Scenario` names everything a worker process needs to rebuild the
run from scratch — model names (zoo registry keys), a platform preset key,
a manager roster key and a seed — so scenarios ship to a process pool as a
few bytes and every execution is deterministic no matter which worker picks
it up or in what order.

:class:`DynamicScenario` is the dynamic-traffic counterpart: instead of a
fixed workload it carries the parameters of a Poisson session trace, an
admission-control configuration and a replan-policy key, and a worker runs
the whole online serving loop (:mod:`repro.serve`) to a
:class:`~repro.serve.ServeReport`.  :class:`FleetScenario` scales that to
a cluster: N node descriptions (reused ``DynamicScenario``s) sharing one
aggregate demand through the :mod:`repro.serve.fleet` dispatcher.  All
spec kinds are a few strings and floats, so the same process pool sweeps
static planning, dynamic-traffic and fleet studies alike; dict-shaped
specs parse strictly through the ``from_dict`` classmethods (unknown keys
raise).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from ..mapping.mapping import Mapping
from ..obs import TelemetrySnapshot
from ..serve.fleet.report import FleetReport
from ..serve.preempt import PREEMPTION_POLICIES
from ..serve.report import ServeReport
from ..sim.backend import normalize_backend
from ..workloads import sample_mix

__all__ = [
    "Scenario",
    "ScenarioResult",
    "DynamicScenario",
    "DynamicResult",
    "FleetScenario",
    "FleetResult",
    "mix_scenarios",
    "dynamic_sweep_scenarios",
    "fleet_sweep_scenarios",
    "summarise",
    "summarise_dynamic",
    "summarise_fleet",
]


def _strict_from_dict(cls, spec: dict, convert: dict | None = None):
    """Build a scenario dataclass from a plain dict, strictly.

    Unknown keys raise instead of being silently dropped — a sweep config
    with a typo (``arival_rate_per_s``) must fail loudly, not quietly run
    the defaults.  ``convert`` optionally maps field names to coercions
    (e.g. list-of-dict node specs into ``DynamicScenario`` tuples).
    """
    if not isinstance(spec, dict):
        raise TypeError(f"{cls.__name__} spec must be a dict, "
                        f"got {type(spec).__name__}")
    allowed = {f.name for f in fields(cls)}
    unknown = sorted(set(spec) - allowed)
    if unknown:
        raise ValueError(
            f"unexpected {cls.__name__} field(s) {unknown}; "
            f"known fields: {sorted(allowed)}")
    kwargs = dict(spec)
    for name, coerce in (convert or {}).items():
        if kwargs.get(name) is not None:
            kwargs[name] = coerce(kwargs[name])
    return cls(**kwargs)


def _tupled(value):
    """Coerce list-typed spec fields to the tuples the dataclasses expect."""
    return tuple(tuple(v) if isinstance(v, list) else v for v in value)


@dataclass(frozen=True)
class Scenario:
    """One (workload, platform, manager) planning problem."""

    name: str
    workload: tuple[str, ...]           # zoo model names, order significant
    manager: str = "rankmap_d"          # roster key, see runner.MANAGER_SPECS
    platform: str = "orange_pi_5"       # hw preset key
    priorities: tuple[float, ...] | None = None   # user vector (static modes)
    seed: int = 0
    search_iterations: int = 40         # MCTS budget for search-based managers
    search_rollouts: int = 2
    backend: str = "numpy"              # solver backend, see repro.sim.BACKENDS

    def __post_init__(self):
        if not self.workload:
            raise ValueError("scenario workload must not be empty")
        if self.priorities is not None \
                and len(self.priorities) != len(self.workload):
            raise ValueError("priorities must match workload size")
        normalize_backend(self.backend)

    @classmethod
    def from_dict(cls, spec: dict) -> "Scenario":
        """Build a :class:`Scenario` from a plain dict, rejecting unknown
        keys (a typo'd sweep config must fail loudly, not run defaults)."""
        return _strict_from_dict(cls, spec, convert={
            "workload": tuple, "priorities": tuple})


@dataclass(frozen=True)
class ScenarioResult:
    """Per-scenario outcome: the decision plus its measured steady state."""

    name: str
    manager: str
    platform: str
    workload: tuple[str, ...]
    assignments: tuple[tuple[int, ...], ...]
    decision_seconds: float
    rates: tuple[float, ...]
    potentials: tuple[float, ...]
    wall_seconds: float
    cache_hit_rate: float = 0.0         # oracle-cache effectiveness, if any

    @property
    def mapping(self) -> Mapping:
        """The decided placement rebuilt from its plain-data assignments."""
        return Mapping(self.assignments)

    @property
    def average_throughput(self) -> float:
        """Mean steady-state rate across the workload's DNNs."""
        return float(np.mean(self.rates))

    @property
    def min_potential(self) -> float:
        """Worst per-DNN potential P — the starvation-guard headline."""
        return float(min(self.potentials))


@dataclass(frozen=True)
class DynamicScenario:
    """One online-serving study: a stochastic trace served end to end.

    Everything is registry keys and scalars, so the spec ships to a worker
    process as a few bytes and the run is a pure function of the spec —
    the determinism regression compares 1-worker and N-worker reports
    bit for bit.  The worker regenerates the trace from
    ``(seed, horizon_s, arrival_rate_per_s, ...)`` as a *stream*
    (:func:`repro.workloads.iter_session_requests` feeding the serving
    loop one arrival at a time), so a multi-day horizon costs memory
    proportional to the live set, not the arrival count.
    ``cache_path`` optionally names a persisted
    :class:`~repro.sim.EvaluationCache` for the worker to load on start;
    a file built for a different platform is ignored (cold start) since
    the cache only affects wall clock, never the report.

    ``predictor`` selects how the node's search managers score candidate
    mappings: ``"oracle"`` measures on the simulated board (one cached
    batched solve per candidate set), ``"estimator"`` loads the trained
    artifact named by ``estimator_path``
    (:func:`repro.estimator.save_estimator_artifact`) and scores through
    the learned path — the paper's 0.04 s/eval decision latency instead
    of a full measurement window per candidate.  An artifact trained for
    a *different* platform downgrades the node to the oracle with a
    warning (the heterogeneous-fleet analogue of ``cache_path``); a
    corrupt artifact, or a missing file, fails the scenario loudly.
    Unlike ``cache_path`` this choice changes the report — different
    predictions, different plans — but it stays a pure function of the
    spec plus the artifact bytes, so 1-vs-N-worker runs remain
    bit-identical.

    ``observe`` switches on the :mod:`repro.obs` telemetry recorder for
    the run: the worker collects admission/preemption/replan decision
    traces, queue and cache metrics and realized plan segments into the
    :class:`~repro.obs.TelemetrySnapshot` on ``DynamicResult.telemetry``.
    Telemetry is a pure side channel — the report is bit-identical with
    ``observe`` on or off.

    ``backend`` selects the contention-solver implementation the node's
    evaluation cache solves misses on (``"numpy"`` or ``"compiled"``,
    see :mod:`repro.sim.backend`).  The compiled path agrees with numpy
    within the documented tolerance, so reports may differ across
    backends at that order; each backend remains a pure function of the
    spec, bit-identical across worker counts.
    """

    name: str
    manager: str = "rankmap_d"          # roster key, see runner.MANAGER_SPECS
    platform: str = "orange_pi_5"       # hw preset key
    policy: str = "full"                # serve.REPLAN_POLICIES key
    seed: int = 0
    horizon_s: float = 600.0
    arrival_rate_per_s: float = 1.0 / 60.0
    mean_session_s: float = 180.0
    pool: tuple[str, ...] = ()          # zoo names; empty -> full MODEL_POOL
    capacity: int = 4
    queue_limit: int = 8
    max_queue_wait_s: float = 180.0
    tier_shift_prob: float = 0.0        # mid-session priority-shift odds
    preemption: str = "none"            # serve.PREEMPTION_POLICIES key
    search_iterations: int = 40         # MCTS budget for search managers
    search_rollouts: int = 2
    cache_path: str | None = None       # persisted EvaluationCache to load
    predictor: str = "oracle"           # "oracle" | "estimator"
    estimator_path: str | None = None   # trained-estimator artifact to load
    observe: bool = False               # collect repro.obs telemetry
    backend: str = "numpy"              # solver backend, see repro.sim.BACKENDS

    def __post_init__(self):
        normalize_backend(self.backend)
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if self.mean_session_s <= 0:
            raise ValueError("mean_session_s must be positive")
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.preemption not in PREEMPTION_POLICIES:
            raise ValueError(
                f"unknown preemption policy {self.preemption!r}; "
                f"choose from {sorted(PREEMPTION_POLICIES)}")
        if self.predictor not in ("oracle", "estimator"):
            raise ValueError(
                f"unknown predictor {self.predictor!r}; "
                f"choose from ['estimator', 'oracle']")
        if self.predictor == "estimator" and self.estimator_path is None:
            raise ValueError(
                "predictor 'estimator' requires estimator_path (a "
                "repro.estimator.save_estimator_artifact file)")
        if self.predictor != "estimator" and self.estimator_path is not None:
            raise ValueError(
                "estimator_path is set but predictor is "
                f"{self.predictor!r}; the artifact would be silently "
                "ignored — set predictor='estimator' (or drop the path)")

    @classmethod
    def from_dict(cls, spec: dict) -> "DynamicScenario":
        """Build a :class:`DynamicScenario` from a plain dict, rejecting
        unknown keys instead of silently ignoring them."""
        return _strict_from_dict(cls, spec, convert={"pool": tuple})


@dataclass(frozen=True)
class DynamicResult:
    """Per-dynamic-scenario outcome: the report plus worker-local stats.

    ``report`` is deterministic per spec; ``wall_seconds`` and
    ``eval_cache_hit_rate`` depend on the worker (machine load, whether a
    persisted cache was found), which is why they live outside the report.
    ``telemetry`` is the run's :class:`~repro.obs.TelemetrySnapshot` when
    the spec set ``observe`` (deterministic per spec, like the report);
    ``None`` otherwise.
    """

    name: str
    manager: str
    platform: str
    policy: str
    report: ServeReport
    wall_seconds: float
    eval_cache_hit_rate: float = 0.0
    eval_cache_preloaded: int = 0       # entries loaded from cache_path
    telemetry: TelemetrySnapshot | None = None


@dataclass(frozen=True)
class FleetScenario:
    """One cluster-scale serving study: N nodes sharing a Poisson demand.

    The fleet samples *one* aggregate session trace from its own
    ``(horizon_s, arrival_rate_per_s, mean_session_s, seed)`` and routes
    it across ``nodes`` with the named routing policy
    (:data:`repro.serve.fleet.ROUTING_POLICIES` key).  Each node is a
    :class:`DynamicScenario` reused as a *node description* — its
    manager, platform, replan policy, admission knobs, pool, seed, search
    budget and ``cache_path`` all apply; its own trace fields
    (``horizon_s``, ``arrival_rate_per_s``, ``mean_session_s``,
    ``tier_shift_prob``) are ignored because the fleet owns the demand.

    ``fail_at`` lists ``(node_index, time_s)`` failures: the node serves
    up to that instant and its live sessions are re-dispatched to the
    survivors.  Like every spec here the scenario is a pure value — the
    resulting :class:`~repro.serve.fleet.FleetReport` is bit-identical
    for any ``ScenarioRunner`` worker count.

    ``feedback_rounds`` iterates the dispatch-then-serve cycle with
    measured per-node pressure fed back into the routing policy (see
    :func:`repro.serve.fleet.serve_fleet`); 0 keeps today's single-shot
    dispatch.  ``rate_shift`` optionally drifts the demand mid-run: a
    ``(shift_at_s, rate_multiplier)`` pair multiplies the Poisson
    arrival rate by ``rate_multiplier`` from ``shift_at_s`` onwards —
    the trace an estimator trained on pre-shift traffic has never seen,
    which is what the closed-loop fine-tuning study exercises.

    ``power_cap_w`` makes the dispatch energy-budgeted: each node gets a
    DVFS ladder built from its platform's power preset
    (``power_dvfs_levels`` operating points deep; 1 pins every node at
    nominal) and the dispatcher's power governor renegotiates levels —
    and sheds ``power_shed_tiers`` arrivals — to keep the estimated
    fleet draw under the cap (:mod:`repro.serve.fleet.power`), with the
    violation ledger landing on ``FleetReport.power``.
    ``power_cap_shift=(at_s, new_cap_w)`` is the brownout knob: the cap
    in force changes mid-trace.  ``power_enforce=False`` keeps the
    ledger but never throttles or sheds — the cap-blind baseline.  Like
    everything else here the whole power path runs in dispatch phase 1,
    so reports stay bit-identical for any worker count.
    """

    name: str
    nodes: tuple[DynamicScenario, ...]
    routing: str = "round_robin"        # serve.fleet.ROUTING_POLICIES key
    seed: int = 0
    horizon_s: float = 600.0
    arrival_rate_per_s: float = 1.0 / 20.0
    mean_session_s: float = 180.0
    tier_shift_prob: float = 0.0        # mid-session priority-shift odds
    fail_at: tuple[tuple[int, float], ...] = ()   # (node index, fail time)
    feedback_rounds: int = 0            # pressure-feedback re-dispatch rounds
    rate_shift: tuple[float, float] | None = None  # (shift_at_s, multiplier)
    power_cap_w: float | None = None    # fleet draw budget; None = power off
    power_cap_shift: tuple[float, float] | None = None  # (at_s, new_cap_w)
    power_dvfs_levels: int = 3          # DVFS ladder depth per node (1..4)
    power_shed_tiers: tuple[str, ...] = ("bronze",)
    power_enforce: bool = True          # False = cap-blind accounting only

    def __post_init__(self):
        if not self.nodes:
            raise ValueError("fleet must have at least one node")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if self.mean_session_s <= 0:
            raise ValueError("mean_session_s must be positive")
        if not isinstance(self.feedback_rounds, int) \
                or self.feedback_rounds < 0:
            raise ValueError(
                f"feedback_rounds must be a non-negative int, "
                f"got {self.feedback_rounds!r}")
        if self.rate_shift is not None:
            if len(self.rate_shift) != 2:
                raise ValueError(
                    "rate_shift must be (shift_at_s, rate_multiplier)")
            shift_at, multiplier = self.rate_shift
            if not 0.0 < shift_at < self.horizon_s:
                raise ValueError(
                    f"rate_shift time {shift_at} must fall inside the "
                    f"horizon (0, {self.horizon_s})")
            if multiplier <= 0:
                raise ValueError(
                    f"rate_shift multiplier must be positive, "
                    f"got {multiplier}")
        if self.power_cap_w is not None and self.power_cap_w <= 0:
            raise ValueError(
                f"power_cap_w must be positive, got {self.power_cap_w}")
        if self.power_cap_shift is not None:
            if self.power_cap_w is None:
                raise ValueError(
                    "power_cap_shift requires power_cap_w; a brownout "
                    "needs a cap to drop from")
            if len(self.power_cap_shift) != 2:
                raise ValueError(
                    "power_cap_shift must be (shift_at_s, new_cap_w)")
            shift_at, new_cap = self.power_cap_shift
            if not 0.0 < shift_at < self.horizon_s:
                raise ValueError(
                    f"power_cap_shift time {shift_at} must fall inside "
                    f"the horizon (0, {self.horizon_s})")
            if new_cap <= 0:
                raise ValueError(
                    f"power_cap_shift cap must be positive, got {new_cap}")
        if not isinstance(self.power_dvfs_levels, int) \
                or not 1 <= self.power_dvfs_levels <= 4:
            raise ValueError(
                f"power_dvfs_levels must be an int in 1..4 (the runner "
                f"ladder depth), got {self.power_dvfs_levels!r}")
        seen: set[int] = set()
        for index, fail_s in self.fail_at:
            if not 0 <= index < len(self.nodes):
                raise ValueError(f"fail_at node index {index} out of range")
            if fail_s <= 0:
                raise ValueError("fail_at time must be positive")
            if index in seen:
                raise ValueError(
                    f"duplicate fail_at entry for node {index}; a node "
                    "fails at most once")
            seen.add(index)

    @classmethod
    def from_dict(cls, spec: dict) -> "FleetScenario":
        """Build a :class:`FleetScenario` from a plain dict, rejecting
        unknown keys; node entries may themselves be dicts (parsed
        strictly through :meth:`DynamicScenario.from_dict`)."""
        return _strict_from_dict(cls, spec, convert={
            "nodes": lambda nodes: tuple(
                DynamicScenario.from_dict(n) if isinstance(n, dict) else n
                for n in nodes),
            "fail_at": _tupled,
            "rate_shift": tuple,
            "power_cap_shift": tuple,
            "power_shed_tiers": tuple,
        })


@dataclass(frozen=True)
class FleetResult:
    """Per-fleet outcome: the aggregated report plus worker-local stats.

    ``report`` is deterministic per spec; ``wall_seconds`` (the summed
    node serving walls) depends on the machine, which is why it lives
    outside the report.  ``telemetry`` is the deterministic merge of the
    dispatch-phase and per-node snapshots when any node spec set
    ``observe`` — bit-identical for any worker count — and ``None``
    otherwise.
    """

    name: str
    routing: str
    report: FleetReport
    wall_seconds: float
    telemetry: TelemetrySnapshot | None = None


def mix_scenarios(managers: tuple[str, ...],
                  sizes: tuple[int, ...] = (3, 4, 5),
                  mixes_per_size: int = 6,
                  seed: int = 0,
                  platform: str = "orange_pi_5",
                  search_iterations: int = 40,
                  search_rollouts: int = 2) -> list[Scenario]:
    """The paper's Sec. V-A style sweep as a flat scenario list.

    Every manager sees the *same* sampled mixes (one rng drives the mix
    sampling; manager seeds derive from the mix index), so per-manager
    aggregates stay comparable.
    """
    rng = np.random.default_rng(seed + 42)
    scenarios: list[Scenario] = []
    for size in sizes:
        for mix_index in range(mixes_per_size):
            workload = tuple(m.name for m in sample_mix(rng, size))
            for manager in managers:
                scenarios.append(Scenario(
                    name=f"mix{size}_{mix_index}_{manager}",
                    workload=workload, manager=manager, platform=platform,
                    seed=seed + 1000 * size + mix_index,
                    search_iterations=search_iterations,
                    search_rollouts=search_rollouts,
                ))
    return scenarios


def dynamic_sweep_scenarios(policies: tuple[str, ...] = ("full", "warm",
                                                         "cache"),
                            managers: tuple[str, ...] = ("rankmap_d",),
                            traces_per_cell: int = 2,
                            seed: int = 0,
                            platform: str = "orange_pi_5",
                            horizon_s: float = 600.0,
                            arrival_rate_per_s: float = 1.0 / 45.0,
                            mean_session_s: float = 200.0,
                            pool: tuple[str, ...] = (),
                            capacity: int = 4,
                            tier_shift_prob: float = 0.0,
                            preemption: str = "none",
                            search_iterations: int = 24,
                            search_rollouts: int = 2,
                            cache_path: str | None = None,
                            predictor: str = "oracle",
                            estimator_path: str | None = None,
                            backend: str = "numpy",
                            ) -> list[DynamicScenario]:
    """A (policy x manager x trace) grid of dynamic-traffic studies.

    Every policy/manager cell sees the *same* sampled traces (the trace
    seed depends only on the trace index), so per-policy aggregates stay
    comparable — the dynamic analogue of :func:`mix_scenarios`.
    ``preemption`` keys the node-side preemption policy
    (:data:`repro.serve.PREEMPTION_POLICIES`) applied in every cell;
    ``predictor``/``estimator_path`` select the candidate-scoring path
    (oracle measurement vs the trained estimator artifact) in every cell;
    ``backend`` sets every cell's contention-solver backend.
    """
    scenarios: list[DynamicScenario] = []
    for trace_index in range(traces_per_cell):
        for manager in managers:
            for policy in policies:
                scenarios.append(DynamicScenario(
                    name=f"trace{trace_index}_{manager}_{policy}",
                    manager=manager, platform=platform, policy=policy,
                    seed=seed + 1000 * trace_index,
                    horizon_s=horizon_s,
                    arrival_rate_per_s=arrival_rate_per_s,
                    mean_session_s=mean_session_s, pool=pool,
                    capacity=capacity, tier_shift_prob=tier_shift_prob,
                    preemption=preemption,
                    search_iterations=search_iterations,
                    search_rollouts=search_rollouts,
                    cache_path=cache_path,
                    predictor=predictor, estimator_path=estimator_path,
                    backend=backend,
                ))
    return scenarios


def fleet_sweep_scenarios(routings: tuple[str, ...] = ("round_robin",
                                                       "least_loaded",
                                                       "tier_affinity"),
                          traces_per_cell: int = 2,
                          num_nodes: int = 3,
                          manager: str = "rankmap_d",
                          policy: str = "warm",
                          platforms: tuple[str, ...] = ("orange_pi_5",
                                                        "jetson_class"),
                          seed: int = 0,
                          horizon_s: float = 600.0,
                          arrival_rate_per_s: float = 1.0 / 15.0,
                          mean_session_s: float = 180.0,
                          pool: tuple[str, ...] = (),
                          capacity: int = 3,
                          tier_shift_prob: float = 0.0,
                          preemption: str = "none",
                          search_iterations: int = 24,
                          search_rollouts: int = 2,
                          cache_path: str | None = None,
                          predictor: str = "oracle",
                          estimator_path: str | None = None,
                          fail_at: tuple[tuple[int, float], ...] = (),
                          observe: bool = False,
                          feedback_rounds: int = 0,
                          rate_shift: tuple[float, float] | None = None,
                          power_cap_w: float | None = None,
                          power_cap_shift: tuple[float, float] | None = None,
                          backend: str = "numpy",
                          ) -> list[FleetScenario]:
    """A (routing x trace) grid of fleet studies over heterogeneous nodes.

    Node ``i`` runs on ``platforms[i % len(platforms)]``, so any
    ``num_nodes >= 2`` fleet with the default platform pair is genuinely
    heterogeneous.  A shared ``cache_path`` therefore warms only the
    nodes whose platform matches the persisted cache; the others start
    cold (see :class:`DynamicScenario`).  Every routing cell sees the
    *same* sampled aggregate traces (the trace seed depends only on the
    trace index), so per-routing aggregates stay comparable — the
    cluster analogue of :func:`dynamic_sweep_scenarios`.  ``preemption``
    applies the keyed :data:`repro.serve.PREEMPTION_POLICIES` policy on
    every node's admission controller.  ``predictor``/``estimator_path``
    select every node's candidate-scoring path; like a shared
    ``cache_path``, a shared estimator artifact only matches the nodes
    whose platform it was trained for — the others downgrade to the
    oracle with a warning.  ``observe`` switches on every node's
    telemetry recorder (the segments feed
    :meth:`~repro.experiments.ExperimentContext.refresh_estimator`);
    ``feedback_rounds``/``rate_shift`` are forwarded to every
    :class:`FleetScenario` cell (pressure-fed re-dispatch and mid-run
    demand drift), as are ``power_cap_w``/``power_cap_shift`` (the
    energy budget and its brownout drop) so a sweep can compare routing
    policies under the same power envelope.  ``backend`` sets every
    *node's* contention-solver backend (the fleet spec itself carries
    none — only nodes solve fixed points).
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    nodes = tuple(
        DynamicScenario(
            name=f"node{i}", manager=manager,
            platform=platforms[i % len(platforms)], policy=policy,
            seed=seed + i, pool=pool, capacity=capacity,
            preemption=preemption,
            search_iterations=search_iterations,
            search_rollouts=search_rollouts, cache_path=cache_path,
            predictor=predictor, estimator_path=estimator_path,
            observe=observe, backend=backend)
        for i in range(num_nodes))
    scenarios: list[FleetScenario] = []
    for trace_index in range(traces_per_cell):
        for routing in routings:
            scenarios.append(FleetScenario(
                name=f"fleet{trace_index}_{routing}",
                nodes=nodes, routing=routing,
                seed=seed + 1000 * trace_index,
                horizon_s=horizon_s,
                arrival_rate_per_s=arrival_rate_per_s,
                mean_session_s=mean_session_s,
                tier_shift_prob=tier_shift_prob,
                fail_at=fail_at,
                feedback_rounds=feedback_rounds,
                rate_shift=rate_shift,
                power_cap_w=power_cap_w,
                power_cap_shift=power_cap_shift,
            ))
    return scenarios


def summarise(results: list[ScenarioResult]) -> list[dict]:
    """Aggregate results per (manager, platform): one row each."""
    groups: dict[tuple[str, str], list[ScenarioResult]] = {}
    for r in results:
        groups.setdefault((r.manager, r.platform), []).append(r)
    rows = []
    for (manager, platform), rs in sorted(groups.items()):
        rows.append({
            "manager": manager,
            "platform": platform,
            "scenarios": len(rs),
            "mean_throughput": float(np.mean(
                [r.average_throughput for r in rs])),
            "mean_min_potential": float(np.mean(
                [r.min_potential for r in rs])),
            "mean_decision_seconds": float(np.mean(
                [r.decision_seconds for r in rs])),
        })
    return rows


def summarise_dynamic(results: list[DynamicResult]) -> list[dict]:
    """Aggregate dynamic results per (manager, policy): one row each."""
    groups: dict[tuple[str, str], list[DynamicResult]] = {}
    for r in results:
        groups.setdefault((r.manager, r.policy), []).append(r)
    rows = []
    for (manager, policy), rs in sorted(groups.items()):
        reports = [r.report for r in rs]
        rows.append({
            "manager": manager,
            "policy": policy,
            "scenarios": len(rs),
            "mean_decision_seconds": float(np.mean(
                [rep.mean_decision_seconds for rep in reports])),
            "mean_gap_seconds": float(np.mean(
                [rep.total_gap_seconds for rep in reports])),
            "mean_violation_fraction": float(np.mean(
                [rep.sla_violation_fraction for rep in reports])),
            "mean_session_rate": float(np.mean(
                [rep.mean_session_rate for rep in reports])),
            "admitted": sum(rep.admitted for rep in reports),
            "rejected": sum(rep.rejected for rep in reports),
            "evictions": sum(rep.evictions for rep in reports),
            "demotions": sum(rep.demotions for rep in reports),
            "mean_eviction_fairness": float(np.mean(
                [rep.eviction_fairness for rep in reports])),
            "mean_queue_wait_s": float(np.mean(
                [rep.mean_queue_wait_s for rep in reports])),
        })
    return rows


def summarise_fleet(results: list[FleetResult]) -> list[dict]:
    """Aggregate fleet results per routing policy: one row each.

    Rows surface the cluster-scale trade-offs the per-node summary cannot
    see: admission totals, mean session rate, cross-node fairness,
    starvation, and the failure-path counters (re-dispatched / lost).
    Power-governed reports additionally contribute ``shed`` and the
    cap-violation columns (zeros when no report in the group carried a
    power ledger).
    """
    groups: dict[str, list[FleetResult]] = {}
    for r in results:
        groups.setdefault(r.routing, []).append(r)
    rows = []
    for routing, rs in sorted(groups.items()):
        reports = [r.report for r in rs]
        powered = [rep.power for rep in reports if rep.power is not None]
        rows.append({
            "routing": routing,
            "scenarios": len(rs),
            "admitted": sum(rep.admitted for rep in reports),
            "rejected": sum(rep.rejected for rep in reports),
            "abandoned": sum(rep.abandoned for rep in reports),
            "re_dispatched": sum(rep.re_dispatched for rep in reports),
            "lost": sum(rep.lost for rep in reports),
            "evictions": sum(rep.evictions for rep in reports),
            "demotions": sum(rep.demotions for rep in reports),
            "mean_eviction_fairness": float(np.mean(
                [rep.eviction_fairness for rep in reports])),
            "mean_session_rate": float(np.mean(
                [rep.mean_session_rate for rep in reports])),
            "mean_node_fairness": float(np.mean(
                [rep.node_fairness for rep in reports])),
            "mean_starvation_rate": float(np.mean(
                [rep.starvation_rate for rep in reports])),
            "mean_queue_wait_s": float(np.mean(
                [rep.mean_queue_wait_s for rep in reports])),
            "shed": sum(rep.shed for rep in reports),
            "mean_fleet_watts": float(np.mean(
                [p.mean_watts for p in powered])) if powered else 0.0,
            "over_cap_ws": float(sum(
                p.fleet_over_cap_ws for p in powered)),
        })
    return rows
