"""Declarative scenario specs for fleet-scale sweeps.

A :class:`Scenario` names everything a worker process needs to rebuild the
run from scratch — model names (zoo registry keys), a platform preset key,
a manager roster key and a seed — so scenarios ship to a process pool as a
few bytes and every execution is deterministic no matter which worker picks
it up or in what order.

:class:`DynamicScenario` is the dynamic-traffic counterpart: instead of a
fixed workload it carries the parameters of a Poisson session trace, an
admission-control configuration and a replan-policy key, and a worker runs
the whole online serving loop (:mod:`repro.serve`) to a
:class:`~repro.serve.ServeReport`.  Both spec kinds are a few strings and
floats, so the same process pool sweeps static planning studies and
dynamic-traffic studies alike.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mapping.mapping import Mapping
from ..serve.report import ServeReport
from ..workloads import sample_mix

__all__ = [
    "Scenario",
    "ScenarioResult",
    "DynamicScenario",
    "DynamicResult",
    "mix_scenarios",
    "dynamic_sweep_scenarios",
    "summarise",
    "summarise_dynamic",
]


@dataclass(frozen=True)
class Scenario:
    """One (workload, platform, manager) planning problem."""

    name: str
    workload: tuple[str, ...]           # zoo model names, order significant
    manager: str = "rankmap_d"          # roster key, see runner.MANAGER_SPECS
    platform: str = "orange_pi_5"       # hw preset key
    priorities: tuple[float, ...] | None = None   # user vector (static modes)
    seed: int = 0
    search_iterations: int = 40         # MCTS budget for search-based managers
    search_rollouts: int = 2

    def __post_init__(self):
        if not self.workload:
            raise ValueError("scenario workload must not be empty")
        if self.priorities is not None \
                and len(self.priorities) != len(self.workload):
            raise ValueError("priorities must match workload size")


@dataclass(frozen=True)
class ScenarioResult:
    """Per-scenario outcome: the decision plus its measured steady state."""

    name: str
    manager: str
    platform: str
    workload: tuple[str, ...]
    assignments: tuple[tuple[int, ...], ...]
    decision_seconds: float
    rates: tuple[float, ...]
    potentials: tuple[float, ...]
    wall_seconds: float
    cache_hit_rate: float = 0.0         # oracle-cache effectiveness, if any

    @property
    def mapping(self) -> Mapping:
        return Mapping(self.assignments)

    @property
    def average_throughput(self) -> float:
        return float(np.mean(self.rates))

    @property
    def min_potential(self) -> float:
        return float(min(self.potentials))


@dataclass(frozen=True)
class DynamicScenario:
    """One online-serving study: a stochastic trace served end to end.

    Everything is registry keys and scalars, so the spec ships to a worker
    process as a few bytes and the run is a pure function of the spec —
    the determinism regression compares 1-worker and N-worker reports
    bit for bit.  ``cache_path`` optionally names a persisted
    :class:`~repro.sim.EvaluationCache` for the worker to load on start
    (built for the same platform, see ``EvaluationCache.load``).
    """

    name: str
    manager: str = "rankmap_d"          # roster key, see runner.MANAGER_SPECS
    platform: str = "orange_pi_5"       # hw preset key
    policy: str = "full"                # serve.REPLAN_POLICIES key
    seed: int = 0
    horizon_s: float = 600.0
    arrival_rate_per_s: float = 1.0 / 60.0
    mean_session_s: float = 180.0
    pool: tuple[str, ...] = ()          # zoo names; empty -> full MODEL_POOL
    capacity: int = 4
    queue_limit: int = 8
    max_queue_wait_s: float = 180.0
    tier_shift_prob: float = 0.0        # mid-session priority-shift odds
    search_iterations: int = 40         # MCTS budget for search managers
    search_rollouts: int = 2
    cache_path: str | None = None       # persisted EvaluationCache to load

    def __post_init__(self):
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if self.arrival_rate_per_s <= 0:
            raise ValueError("arrival_rate_per_s must be positive")
        if self.mean_session_s <= 0:
            raise ValueError("mean_session_s must be positive")
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")


@dataclass(frozen=True)
class DynamicResult:
    """Per-dynamic-scenario outcome: the report plus worker-local stats.

    ``report`` is deterministic per spec; ``wall_seconds`` and
    ``eval_cache_hit_rate`` depend on the worker (machine load, whether a
    persisted cache was found), which is why they live outside the report.
    """

    name: str
    manager: str
    platform: str
    policy: str
    report: ServeReport
    wall_seconds: float
    eval_cache_hit_rate: float = 0.0
    eval_cache_preloaded: int = 0       # entries loaded from cache_path


def mix_scenarios(managers: tuple[str, ...],
                  sizes: tuple[int, ...] = (3, 4, 5),
                  mixes_per_size: int = 6,
                  seed: int = 0,
                  platform: str = "orange_pi_5",
                  search_iterations: int = 40,
                  search_rollouts: int = 2) -> list[Scenario]:
    """The paper's Sec. V-A style sweep as a flat scenario list.

    Every manager sees the *same* sampled mixes (one rng drives the mix
    sampling; manager seeds derive from the mix index), so per-manager
    aggregates stay comparable.
    """
    rng = np.random.default_rng(seed + 42)
    scenarios: list[Scenario] = []
    for size in sizes:
        for mix_index in range(mixes_per_size):
            workload = tuple(m.name for m in sample_mix(rng, size))
            for manager in managers:
                scenarios.append(Scenario(
                    name=f"mix{size}_{mix_index}_{manager}",
                    workload=workload, manager=manager, platform=platform,
                    seed=seed + 1000 * size + mix_index,
                    search_iterations=search_iterations,
                    search_rollouts=search_rollouts,
                ))
    return scenarios


def dynamic_sweep_scenarios(policies: tuple[str, ...] = ("full", "warm",
                                                         "cache"),
                            managers: tuple[str, ...] = ("rankmap_d",),
                            traces_per_cell: int = 2,
                            seed: int = 0,
                            platform: str = "orange_pi_5",
                            horizon_s: float = 600.0,
                            arrival_rate_per_s: float = 1.0 / 45.0,
                            mean_session_s: float = 200.0,
                            pool: tuple[str, ...] = (),
                            capacity: int = 4,
                            tier_shift_prob: float = 0.0,
                            search_iterations: int = 24,
                            search_rollouts: int = 2,
                            cache_path: str | None = None,
                            ) -> list[DynamicScenario]:
    """A (policy x manager x trace) grid of dynamic-traffic studies.

    Every policy/manager cell sees the *same* sampled traces (the trace
    seed depends only on the trace index), so per-policy aggregates stay
    comparable — the dynamic analogue of :func:`mix_scenarios`.
    """
    scenarios: list[DynamicScenario] = []
    for trace_index in range(traces_per_cell):
        for manager in managers:
            for policy in policies:
                scenarios.append(DynamicScenario(
                    name=f"trace{trace_index}_{manager}_{policy}",
                    manager=manager, platform=platform, policy=policy,
                    seed=seed + 1000 * trace_index,
                    horizon_s=horizon_s,
                    arrival_rate_per_s=arrival_rate_per_s,
                    mean_session_s=mean_session_s, pool=pool,
                    capacity=capacity, tier_shift_prob=tier_shift_prob,
                    search_iterations=search_iterations,
                    search_rollouts=search_rollouts,
                    cache_path=cache_path,
                ))
    return scenarios


def summarise(results: list[ScenarioResult]) -> list[dict]:
    """Aggregate results per (manager, platform): one row each."""
    groups: dict[tuple[str, str], list[ScenarioResult]] = {}
    for r in results:
        groups.setdefault((r.manager, r.platform), []).append(r)
    rows = []
    for (manager, platform), rs in sorted(groups.items()):
        rows.append({
            "manager": manager,
            "platform": platform,
            "scenarios": len(rs),
            "mean_throughput": float(np.mean(
                [r.average_throughput for r in rs])),
            "mean_min_potential": float(np.mean(
                [r.min_potential for r in rs])),
            "mean_decision_seconds": float(np.mean(
                [r.decision_seconds for r in rs])),
        })
    return rows


def summarise_dynamic(results: list[DynamicResult]) -> list[dict]:
    """Aggregate dynamic results per (manager, policy): one row each."""
    groups: dict[tuple[str, str], list[DynamicResult]] = {}
    for r in results:
        groups.setdefault((r.manager, r.policy), []).append(r)
    rows = []
    for (manager, policy), rs in sorted(groups.items()):
        reports = [r.report for r in rs]
        rows.append({
            "manager": manager,
            "policy": policy,
            "scenarios": len(rs),
            "mean_decision_seconds": float(np.mean(
                [rep.mean_decision_seconds for rep in reports])),
            "mean_gap_seconds": float(np.mean(
                [rep.total_gap_seconds for rep in reports])),
            "mean_violation_fraction": float(np.mean(
                [rep.sla_violation_fraction for rep in reports])),
            "mean_session_rate": float(np.mean(
                [rep.mean_session_rate for rep in reports])),
            "admitted": sum(rep.admitted for rep in reports),
            "rejected": sum(rep.rejected for rep in reports),
            "mean_queue_wait_s": float(np.mean(
                [rep.mean_queue_wait_s for rep in reports])),
        })
    return rows
