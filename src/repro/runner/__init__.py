"""Fleet-scale scenario execution: declarative specs + a process pool."""

from .runner import (
    MANAGER_SPECS,
    PLATFORM_SPECS,
    ScenarioRunner,
    build_manager,
    execute_scenario,
)
from .scenario import Scenario, ScenarioResult, mix_scenarios, summarise

__all__ = [
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "mix_scenarios",
    "summarise",
    "build_manager",
    "execute_scenario",
    "MANAGER_SPECS",
    "PLATFORM_SPECS",
]
