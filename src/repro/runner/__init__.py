"""Fleet-scale scenario execution: declarative specs + a process pool."""

from .runner import (
    MANAGER_SPECS,
    PLATFORM_SPECS,
    ScenarioRunner,
    build_manager,
    execute_dynamic_scenario,
    execute_scenario,
)
from .scenario import (
    DynamicResult,
    DynamicScenario,
    Scenario,
    ScenarioResult,
    dynamic_sweep_scenarios,
    mix_scenarios,
    summarise,
    summarise_dynamic,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "DynamicScenario",
    "DynamicResult",
    "ScenarioRunner",
    "mix_scenarios",
    "dynamic_sweep_scenarios",
    "summarise",
    "summarise_dynamic",
    "build_manager",
    "execute_scenario",
    "execute_dynamic_scenario",
    "MANAGER_SPECS",
    "PLATFORM_SPECS",
]
