"""Fleet-scale scenario execution: declarative specs + a process pool.

Three spec kinds ride the same :class:`ScenarioRunner` pool mechanics:

* :class:`Scenario` — one static (workload, platform, manager) planning
  problem, executed by :func:`execute_scenario`.
* :class:`DynamicScenario` — one online-serving study (a Poisson trace
  through :mod:`repro.serve`), executed by
  :func:`execute_dynamic_scenario`.
* :class:`FleetScenario` — one cluster study: N heterogeneous nodes
  sharing a demand via the :mod:`repro.serve.fleet` dispatcher, with the
  node slices fanned across the pool by
  :meth:`ScenarioRunner.run_fleet`.

Every spec is a few registry keys and scalars, so it ships to a worker
as bytes and every result is bit-identical for any worker count.
"""

from .runner import (
    MANAGER_SPECS,
    PLATFORM_SPECS,
    FleetNodeTask,
    ScenarioRunner,
    build_manager,
    execute_dynamic_scenario,
    execute_fleet_node,
    execute_scenario,
    resolve_predictor,
    sample_fleet_requests,
)
from .scenario import (
    DynamicResult,
    DynamicScenario,
    FleetResult,
    FleetScenario,
    Scenario,
    ScenarioResult,
    dynamic_sweep_scenarios,
    fleet_sweep_scenarios,
    mix_scenarios,
    summarise,
    summarise_dynamic,
    summarise_fleet,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "DynamicScenario",
    "DynamicResult",
    "FleetScenario",
    "FleetResult",
    "FleetNodeTask",
    "ScenarioRunner",
    "mix_scenarios",
    "dynamic_sweep_scenarios",
    "fleet_sweep_scenarios",
    "summarise",
    "summarise_dynamic",
    "summarise_fleet",
    "build_manager",
    "resolve_predictor",
    "execute_scenario",
    "execute_dynamic_scenario",
    "execute_fleet_node",
    "sample_fleet_requests",
    "MANAGER_SPECS",
    "PLATFORM_SPECS",
]
