"""Process-pool scenario execution.

:class:`ScenarioRunner` fans a list of :class:`~repro.runner.scenario.Scenario`
specs across worker processes.  Each worker rebuilds platform + manager from
the spec's registry keys (nothing heavier than a few strings crosses the
process boundary), plans, measures the decision with the simulator, and
returns a plain-data :class:`ScenarioResult`.  Results come back in input
order and are bit-identical regardless of ``max_workers`` — every manager
is freshly constructed from the scenario's seed, so no state leaks between
scenarios or workers.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from ..baselines import GAConfig, GeneticManager, GpuBaseline, Mosaic, Odmdef, OmniBoost
from ..core.manager import Manager, RankMap, RankMapConfig
from ..core.predictor import EstimatorPredictor, OraclePredictor, RatePredictor
from ..estimator import (ArtifactPlatformMismatch,
                         artifact_generation_candidates,
                         load_estimator_artifact)
from ..hw import (dvfs_ladder, jetson_class, jetson_class_power,
                  orange_pi_5, orange_pi_5_power)
from ..hw.energy import PlatformPower
from ..hw.platform import Platform
from ..obs import NULL_RECORDER, Recorder, TelemetryRecorder, merge_snapshots
from ..obs.registry import EVAL_CACHE_DOWNGRADES, PREDICTOR_DOWNGRADES
from ..search import MCTSConfig
from ..serve import AdmissionConfig, ServeConfig, build_replan_policy, serve_trace
from ..serve.fleet import (FleetPowerConfig, NodeSpec, build_fleet_report,
                           fleet_pressure, node_speed, plan_dispatch)
from ..sim import EvaluationCache, simulate
from ..sim.cache import platform_fingerprint
from ..workloads import (SessionRequest, TraceConfig, iter_session_requests,
                         sample_session_requests)
from ..zoo import MODEL_POOL, get_model
from .scenario import (
    DynamicResult,
    DynamicScenario,
    FleetResult,
    FleetScenario,
    Scenario,
    ScenarioResult,
)

__all__ = ["ScenarioRunner", "MANAGER_SPECS", "PLATFORM_SPECS",
           "POWER_SPECS", "DVFS_MULTIPLIERS",
           "build_manager", "resolve_predictor", "execute_scenario",
           "execute_dynamic_scenario", "FleetNodeTask", "execute_fleet_node",
           "sample_fleet_requests"]

PLATFORM_SPECS: dict[str, Callable[[], Platform]] = {
    "orange_pi_5": orange_pi_5,
    "jetson_class": jetson_class,
}

#: Platform-key → power-envelope preset, mirroring :data:`PLATFORM_SPECS`
#: so a power-capped fleet node prices energy with the same board its
#: speed came from.
POWER_SPECS: dict[str, Callable[[], PlatformPower]] = {
    "orange_pi_5": orange_pi_5_power,
    "jetson_class": jetson_class_power,
}

#: Speed multipliers the runner's DVFS ladders are cut from;
#: ``FleetScenario.power_dvfs_levels`` takes a prefix of this tuple.
DVFS_MULTIPLIERS: tuple[float, ...] = (1.0, 0.8, 0.65, 0.5)

#: Per-process memo of loaded estimator artifacts, keyed by
#: (path, mtime_ns, size, platform fingerprint) so every scenario a pool
#: worker executes against the same artifact file shares one rebuilt
#: estimator instead of unpickling per scenario.  Safe for determinism:
#: the loaded weights are a pure function of the key.
_ARTIFACT_MEMO: dict[tuple, object] = {}


def resolve_predictor(scenario, platform: Platform,
                      cache: EvaluationCache,
                      recorder: Recorder = NULL_RECORDER) -> RatePredictor:
    """Build the candidate-scoring predictor a scenario's spec names.

    ``"oracle"`` (and any spec without a ``predictor`` field, e.g. the
    static :class:`~repro.runner.Scenario`) measures candidates on the
    simulated board through the shared evaluation ``cache``.
    ``"estimator"`` loads the trained artifact at
    ``scenario.estimator_path`` and scores through the learned path.

    Fine-tuned **generations** are preferred automatically: when
    ``estimator_path`` names a family base, the newest compatible
    ``<stem>.gen<N><suffix>`` sibling
    (:func:`repro.estimator.artifact_generation_candidates`) wins over
    the base file, so a node picks up the latest
    :func:`repro.estimator.refresh_artifact` output without any spec
    change.  Naming a generation file directly pins that exact
    generation.  A generation trained for a different platform falls
    through to the next older candidate; only when *every* existing
    candidate mismatches does the scenario downgrade.

    Mirroring the ``cache_path`` rules, an artifact trained for a
    *different platform* downgrades to the oracle with a warning (whose
    message carries the artifact path and both platform fingerprints)
    plus a :data:`~repro.obs.registry.PREDICTOR_DOWNGRADES` counter tick
    on ``recorder`` — a heterogeneous fleet sharing one artifact path
    legitimately warms only the matching nodes — while a corrupt or
    missing artifact raises: the predictor choice changes reports, so a
    broken file must fail loudly rather than silently serve the wrong
    study (a corrupt *newer generation* therefore blocks the whole
    family rather than silently serving stale weights).  The returned
    predictor reports its scoring metrics to ``recorder``.
    """
    kind = getattr(scenario, "predictor", "oracle")
    if kind == "oracle":
        predictor = OraclePredictor(platform, cache=cache)
        predictor.recorder = recorder
        return predictor
    path = Path(scenario.estimator_path)
    fingerprint = platform_fingerprint(platform)
    artifact = None
    mismatch: ArtifactPlatformMismatch | None = None
    for candidate in artifact_generation_candidates(path):
        try:
            stat = candidate.stat()
        except FileNotFoundError:
            continue
        key = (str(candidate), stat.st_mtime_ns, stat.st_size, fingerprint)
        loaded = _ARTIFACT_MEMO.get(key)
        if loaded is None:
            try:
                loaded = load_estimator_artifact(candidate, platform)
            except ArtifactPlatformMismatch as exc:
                # Negative-memoise the mismatch too: the verdict is a pure
                # function of the key, and a heterogeneous fleet
                # re-resolves the same (artifact, platform) pair once per
                # node slice — no point re-unpickling the full weight
                # payload each time.  Memoise a *fresh* exception carrying
                # only the message: the raised one's traceback frames
                # would pin the unpickled weight arrays in the memo for
                # the process lifetime.
                loaded = ArtifactPlatformMismatch(str(exc))
            _ARTIFACT_MEMO[key] = loaded
        if isinstance(loaded, ArtifactPlatformMismatch):
            # Keep the newest mismatch for the downgrade warning but try
            # the next older generation — a heterogeneous fleet fine-tunes
            # per platform, so an incompatible child must not shadow a
            # compatible base.
            if mismatch is None:
                mismatch = loaded
            continue
        artifact = loaded
        break
    if artifact is None and mismatch is None:
        path.stat()             # missing artifact: FileNotFoundError
        raise FileNotFoundError(   # pragma: no cover - stat raises first
            f"no estimator artifact found for {path}")
    if artifact is None:
        artifact = mismatch
    if isinstance(artifact, ArtifactPlatformMismatch):
        # Force emission per call: fleet sweeps reuse node names across
        # cells, and the default warnings filter would dedupe the
        # byte-identical message after the first downgrade — silencing
        # exactly the substitution this warning exists to surface.  The
        # mismatch message carries the artifact path and both platform
        # fingerprints, so the warning pinpoints which file lost to
        # which board.
        with warnings.catch_warnings():
            warnings.simplefilter("always")
            warnings.warn(
                f"scenario {scenario.name!r}: {artifact}; downgrading to "
                "the oracle predictor", stacklevel=2)
        if recorder.enabled:
            recorder.count(PREDICTOR_DOWNGRADES)
        predictor = OraclePredictor(platform, cache=cache)
        predictor.recorder = recorder
        return predictor
    if artifact.config.num_components != platform.num_components:
        # The fingerprint covers the platform only, not the estimator's
        # shapes — a Q tensor laid out for a different component count
        # would crash (or silently mis-place) deep inside the scatter.
        raise ValueError(
            f"estimator artifact {path} featurizes "
            f"{artifact.config.num_components} components but platform "
            f"{platform.name!r} has {platform.num_components}")
    capacity = getattr(scenario, "capacity", None)
    if capacity is not None:
        # Overcommitting preemption policies (renegotiation) admit past
        # capacity, so the live set can exceed it by the policy's
        # headroom — ask the policy itself rather than duplicating it.
        from ..serve.preempt import build_preemption_policy

        policy = build_preemption_policy(
            getattr(scenario, "preemption", "none"))
        peak = capacity + policy.max_overcommit
        if peak > artifact.config.max_dnns:
            raise ValueError(
                f"scenario {scenario.name!r} can reach {peak} concurrent "
                f"DNNs but the estimator artifact caps at "
                f"max_dnns={artifact.config.max_dnns}")
    predictor = EstimatorPredictor(artifact.estimator, artifact.embedder)
    predictor.recorder = recorder
    return predictor


def _mcts(scenario: Scenario) -> MCTSConfig:
    return MCTSConfig(iterations=scenario.search_iterations,
                      rollouts_per_leaf=scenario.search_rollouts,
                      seed=scenario.seed)


def _rankmap(mode: str):
    def build(platform: Platform, scenario: Scenario,
              cache: EvaluationCache,
              recorder: Recorder = NULL_RECORDER) -> Manager:
        return RankMap(platform,
                       resolve_predictor(scenario, platform, cache,
                                         recorder=recorder),
                       RankMapConfig(mode=mode, mcts=_mcts(scenario)))
    return build


MANAGER_SPECS: dict[str, Callable[..., Manager]] = {
    "baseline": lambda platform, scenario, cache, recorder=NULL_RECORDER:
        GpuBaseline(),
    "mosaic": lambda platform, scenario, cache, recorder=NULL_RECORDER:
        Mosaic(platform),
    "odmdef": lambda platform, scenario, cache, recorder=NULL_RECORDER:
        Odmdef(platform, seed=scenario.seed),
    "ga": lambda platform, scenario, cache, recorder=NULL_RECORDER:
        GeneticManager(platform, GAConfig(seed=scenario.seed)),
    "omniboost": lambda platform, scenario, cache, recorder=NULL_RECORDER:
        OmniBoost(platform,
                  resolve_predictor(scenario, platform, cache,
                                    recorder=recorder),
                  _mcts(scenario)),
    "rankmap_s": _rankmap("static"),
    "rankmap_d": _rankmap("dynamic"),
}


def build_manager(scenario: Scenario, platform: Platform,
                  cache: EvaluationCache,
                  recorder: Recorder = NULL_RECORDER) -> Manager:
    """Build the scenario's planning manager from its roster key.

    Every worker constructs its manager fresh from the spec (seeded by
    the scenario), which is what makes pool results order- and
    worker-count-independent.  ``recorder`` reaches the manager's rate
    predictor (:mod:`repro.obs`); planning decisions never depend on it.
    """
    try:
        spec = MANAGER_SPECS[scenario.manager]
    except KeyError:
        raise ValueError(
            f"unknown manager {scenario.manager!r}; "
            f"choose from {sorted(MANAGER_SPECS)}") from None
    return spec(platform, scenario, cache, recorder)


def execute_scenario(scenario: Scenario) -> ScenarioResult:
    """Run one scenario start-to-finish (also the process-pool worker)."""
    try:
        platform = PLATFORM_SPECS[scenario.platform]()
    except KeyError:
        raise ValueError(
            f"unknown platform {scenario.platform!r}; "
            f"choose from {sorted(PLATFORM_SPECS)}") from None
    workload = [get_model(n) for n in scenario.workload]
    cache = EvaluationCache(platform, backend=scenario.backend)
    manager = build_manager(scenario, platform, cache)
    priorities = (np.asarray(scenario.priorities, dtype=np.float64)
                  if scenario.priorities is not None else None)

    t0 = time.perf_counter()
    decision = manager.plan(workload, priorities)
    wall = time.perf_counter() - t0
    result = simulate(workload, decision.mapping, platform)
    return ScenarioResult(
        name=scenario.name,
        manager=scenario.manager,
        platform=scenario.platform,
        workload=scenario.workload,
        assignments=decision.mapping.assignments,
        decision_seconds=float(decision.decision_seconds),
        rates=tuple(float(r) for r in result.rates),
        potentials=tuple(float(p) for p in result.potentials),
        wall_seconds=wall,
        cache_hit_rate=cache.hit_rate,
    )


def _serve_requests(spec: DynamicScenario,
                    requests: Iterable[SessionRequest],
                    horizon_s: float) -> DynamicResult:
    """Serve ``requests`` on the node ``spec`` describes.

    The shared core of :func:`execute_dynamic_scenario` (which samples its
    own trace from the spec) and :func:`execute_fleet_node` (whose trace
    slice the fleet dispatcher fixed in the parent process).  The
    evaluation cache is rebuilt per call — loaded from ``spec.cache_path``
    when that file exists and was built for this node's platform, fresh
    otherwise — so the report is a pure function of
    ``(spec, requests, horizon_s)`` regardless of which worker runs it or
    how warm it starts.

    An *incompatible* cache file (other platform's fingerprint, unknown
    format) downgrades to a cold start instead of aborting: the cache
    only changes wall clock, never a report bit, and a heterogeneous
    fleet sharing one ``cache_path`` legitimately warms only the nodes
    the file matches.  ``eval_cache_preloaded == 0`` on the result is the
    signal that nothing was loaded.
    """
    try:
        platform = PLATFORM_SPECS[spec.platform]()
    except KeyError:
        raise ValueError(
            f"unknown platform {spec.platform!r}; "
            f"choose from {sorted(PLATFORM_SPECS)}") from None
    recorder: Recorder = (TelemetryRecorder(where=spec.name)
                          if spec.observe else NULL_RECORDER)
    preloaded = 0
    cache = None
    if spec.cache_path is not None and Path(spec.cache_path).exists():
        try:
            cache = EvaluationCache.load(spec.cache_path, platform,
                                         backend=spec.backend)
            preloaded = len(cache)
        except (ValueError, KeyError, AttributeError, EOFError,
                pickle.UnpicklingError) as exc:
            cache = None   # wrong platform / unknown or corrupt format:
            #                start cold instead of aborting the sweep
            # `exc` carries the artifact path and, for fingerprint
            # mismatches, both platform fingerprints (EvaluationCache.load
            # builds that message) — surface it so a silently-cold sweep
            # node is diagnosable from the warning alone.
            with warnings.catch_warnings():
                warnings.simplefilter("always")
                warnings.warn(
                    f"scenario {spec.name!r}: failed to load evaluation "
                    f"cache {spec.cache_path}: {exc}; starting cold",
                    stacklevel=2)
            if recorder.enabled:
                recorder.count(EVAL_CACHE_DOWNGRADES)
    if cache is None:
        cache = EvaluationCache(platform, backend=spec.backend)
    manager = build_manager(spec, platform, cache, recorder=recorder)
    policy = build_replan_policy(spec.policy, manager)

    pool = spec.pool if spec.pool else MODEL_POOL
    serve_config = ServeConfig(
        horizon_s=horizon_s,
        admission=AdmissionConfig(
            capacity=spec.capacity, queue_limit=spec.queue_limit,
            max_queue_wait_s=spec.max_queue_wait_s,
            preemption=spec.preemption),
        pool=pool, seed=spec.seed,
    )

    t0 = time.perf_counter()
    report = serve_trace(requests, policy, platform, serve_config,
                         cache=cache, recorder=recorder)
    wall = time.perf_counter() - t0
    return DynamicResult(
        name=spec.name, manager=spec.manager, platform=spec.platform,
        policy=spec.policy, report=report, wall_seconds=wall,
        eval_cache_hit_rate=cache.hit_rate,
        eval_cache_preloaded=preloaded,
        telemetry=recorder.snapshot(),
    )


def execute_dynamic_scenario(spec: DynamicScenario) -> DynamicResult:
    """Serve one stochastic trace start-to-finish (also the pool worker).

    Samples the spec's own Poisson demand, then defers to
    :func:`_serve_requests`; the report is a pure function of the spec
    regardless of which worker runs it or how warm its cache starts.
    """
    pool = spec.pool if spec.pool else MODEL_POOL
    trace_config = TraceConfig(
        horizon_s=spec.horizon_s,
        arrival_rate_per_s=spec.arrival_rate_per_s,
        mean_session_s=spec.mean_session_s,
        max_concurrent=spec.capacity, pool=pool,
    )
    # Trace seed is decoupled from the search seed so policy/manager cells
    # of a sweep sharing `seed` see the same arrival process.  The demand
    # streams straight into the serving loop — a multi-day scenario never
    # holds its full trace in worker memory.
    requests = iter_session_requests(
        np.random.default_rng(spec.seed + 17), trace_config,
        tier_shift_prob=spec.tier_shift_prob)
    return _serve_requests(spec, requests, spec.horizon_s)


@dataclass(frozen=True)
class FleetNodeTask:
    """Process-pool payload: one fleet node plus its routed trace slice.

    Built in the parent by :meth:`ScenarioRunner.run_fleet` after the
    dispatch plan is fixed; ``horizon_s`` is already truncated to the
    node's failure instant when the scenario kills it mid-run.
    """

    spec: DynamicScenario
    requests: tuple[SessionRequest, ...]
    horizon_s: float


def execute_fleet_node(task: FleetNodeTask) -> DynamicResult:
    """Serve one dispatched node slice (also the pool worker)."""
    return _serve_requests(task.spec, list(task.requests), task.horizon_s)


def sample_fleet_requests(fleet: FleetScenario) -> list[SessionRequest]:
    """Sample the fleet's shared aggregate demand from its spec.

    The model pool is irrelevant at this stage — sessions pick their
    model at admission, per node — so the trace config only shapes
    arrivals, durations and tiers.  The ``seed + 17`` decoupling matches
    :func:`execute_dynamic_scenario`, keeping routing cells of a sweep
    that share a seed on identical arrival processes.

    A ``rate_shift`` drifts the demand mid-run: the trace is sampled in
    two segments from one rng stream — pre-shift at the base arrival
    rate, post-shift at ``rate * multiplier`` with arrival times and
    session ids re-based after the head — so two scenarios differing
    only in routing still see byte-identical drifted traces.  Each
    segment's blind concurrency cap and tier rotation restart at the
    shift instant (the drift is a change of *regime*, not a continuation
    of the old one).
    """
    trace_config = TraceConfig(
        horizon_s=fleet.horizon_s,
        arrival_rate_per_s=fleet.arrival_rate_per_s,
        mean_session_s=fleet.mean_session_s,
        max_concurrent=max(1, sum(n.capacity for n in fleet.nodes)),
    )
    rng = np.random.default_rng(fleet.seed + 17)
    if fleet.rate_shift is None:
        return sample_session_requests(
            rng, trace_config, tier_shift_prob=fleet.tier_shift_prob)
    shift_at, multiplier = fleet.rate_shift
    head = sample_session_requests(
        rng, replace(trace_config, horizon_s=shift_at),
        tier_shift_prob=fleet.tier_shift_prob)
    tail = sample_session_requests(
        rng, replace(trace_config,
                     horizon_s=fleet.horizon_s - shift_at,
                     arrival_rate_per_s=(fleet.arrival_rate_per_s
                                         * multiplier)),
        tier_shift_prob=fleet.tier_shift_prob)
    offset = len(head)
    return head + [
        SessionRequest(session_id=request.session_id + offset,
                       arrival_s=request.arrival_s + shift_at,
                       duration_s=request.duration_s,
                       tier=request.tier,
                       tier_shift=request.tier_shift)
        for request in tail]


def _fleet_node_specs(fleet: FleetScenario) -> list[NodeSpec]:
    """Dispatcher-side node specs: capacity from the scenario, speed from
    the platform preset's ideal throughput over the node's pool."""
    fail_by_index = dict(fleet.fail_at)
    specs = []
    for index, node in enumerate(fleet.nodes):
        try:
            platform = PLATFORM_SPECS[node.platform]()
        except KeyError:
            raise ValueError(
                f"unknown platform {node.platform!r}; "
                f"choose from {sorted(PLATFORM_SPECS)}") from None
        pool = node.pool if node.pool else MODEL_POOL
        specs.append(NodeSpec(
            name=node.name, capacity=node.capacity,
            speed=node_speed(platform, pool),
            fail_at_s=fail_by_index.get(index)))
    return specs


def _fleet_power_config(fleet: FleetScenario) -> FleetPowerConfig | None:
    """The dispatcher power budget a scenario's power knobs describe.

    ``None`` when the fleet is not power-capped.  Each node's DVFS
    ladder is cut from its platform's :data:`POWER_SPECS` preset at the
    first ``power_dvfs_levels`` :data:`DVFS_MULTIPLIERS` operating
    points, so heterogeneous fleets throttle against heterogeneous
    envelopes.
    """
    if fleet.power_cap_w is None:
        return None
    multipliers = DVFS_MULTIPLIERS[:fleet.power_dvfs_levels]
    ladders = []
    for node in fleet.nodes:
        try:
            power = POWER_SPECS[node.platform]()
        except KeyError:
            raise ValueError(
                f"unknown platform {node.platform!r}; "
                f"choose from {sorted(POWER_SPECS)}") from None
        ladders.append(dvfs_ladder(power, multipliers))
    return FleetPowerConfig(ladders=tuple(ladders),
                            cap_w=fleet.power_cap_w,
                            cap_shift=fleet.power_cap_shift,
                            shed_tiers=fleet.power_shed_tiers,
                            enforce=fleet.power_enforce)


class ScenarioRunner:
    """Fan scenarios across a process pool; aggregate in input order.

    ``max_workers=None`` sizes the pool to the machine; ``max_workers=1``
    (or a single scenario) runs inline, which is what the regression tests
    compare against to pin down pool determinism.  :meth:`run` executes
    static planning scenarios, :meth:`run_dynamic` executes online-serving
    scenarios; both share the pool mechanics.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers

    def run(self, scenarios: Sequence[Scenario]) -> list[ScenarioResult]:
        """Execute static planning scenarios across the pool, input order."""
        return self._map(execute_scenario, list(scenarios))

    def run_dynamic(self,
                    scenarios: Sequence[DynamicScenario]) -> list[DynamicResult]:
        """Execute online-serving scenarios across the pool, input order."""
        return self._map(execute_dynamic_scenario, list(scenarios))

    def run_fleet(self,
                  fleets: Sequence[FleetScenario]) -> list[FleetResult]:
        """Execute fleet studies, fanning *nodes* across the process pool.

        Phase 1 runs in this process: each fleet samples its shared
        demand and fixes a deterministic dispatch plan
        (:func:`repro.serve.fleet.plan_dispatch`).  Phase 2 flattens
        every fleet's node slices into one task list and maps it over the
        pool — so a 3-fleet x 4-node sweep keeps 12 workers busy — then
        regroups per fleet and rolls the node reports up into
        :class:`~repro.serve.fleet.FleetReport` objects.  Reports are
        bit-identical for any ``max_workers``.

        Fleets with ``feedback_rounds=N > 0`` re-dispatch iteratively:
        round ``k`` plans with the per-node pressure measured from round
        ``k-1``'s reports (:func:`repro.serve.fleet.fleet_pressure`) and
        the fleet's result is round ``N``'s.  Mixed sweeps stay batched —
        each round flattens every still-active fleet's node slices into
        one pool map, and a fleet whose rounds are exhausted simply stops
        contributing tasks.  Only each fleet's *final* round records
        telemetry (intermediate rounds serve with ``observe=False``
        node specs and a null dispatch recorder), so snapshots — like
        reports — are a pure function of the scenario list.

        Power-capped fleets (``power_cap_w`` set) plan every round under
        the :func:`_fleet_power_config` budget; the final round's
        :class:`~repro.serve.fleet.FleetPowerReport` ledger lands on
        ``FleetReport.power``.  Because the governor runs entirely in
        phase 1, the power path inherits the same any-worker-count
        bit-identity.
        """
        fleets = list(fleets)
        if not fleets:
            return []
        states: list[dict] = []
        for fleet in fleets:
            states.append({
                "fleet": fleet,
                "requests": tuple(sample_fleet_requests(fleet)),
                "specs": _fleet_node_specs(fleet),
                "power": _fleet_power_config(fleet),
                "platforms": [node.platform for node in fleet.nodes],
                "pressure": None,      # measured NodePressure from the
                #                        previous round, None on round 0
                "plan": None,
                "dispatch_snap": None,
                "node_results": None,
            })
        max_rounds = max(state["fleet"].feedback_rounds for state in states)
        for round_index in range(max_rounds + 1):
            active = [state for state in states
                      if round_index <= state["fleet"].feedback_rounds]
            tasks: list[FleetNodeTask] = []
            for state in active:
                fleet = state["fleet"]
                final = round_index == fleet.feedback_rounds
                observing = final and any(n.observe for n in fleet.nodes)
                dispatch_recorder: Recorder = (
                    TelemetryRecorder(where=f"{fleet.name}/dispatch")
                    if observing else NULL_RECORDER)
                plan = plan_dispatch(state["requests"], state["specs"],
                                     fleet.routing, fleet.horizon_s,
                                     recorder=dispatch_recorder,
                                     pressure=state["pressure"],
                                     power=state["power"])
                state["plan"] = plan
                state["dispatch_snap"] = dispatch_recorder.snapshot()
                for node, spec, slice_requests in zip(
                        fleet.nodes, state["specs"], plan.node_requests):
                    horizon = (fleet.horizon_s if spec.fail_at_s is None
                               else min(spec.fail_at_s, fleet.horizon_s))
                    node_spec = (node if final
                                 else replace(node, observe=False))
                    tasks.append(FleetNodeTask(spec=node_spec,
                                               requests=slice_requests,
                                               horizon_s=horizon))
            round_results = self._map(execute_fleet_node, tasks)
            cursor = 0
            for state in active:
                count = len(state["fleet"].nodes)
                slice_results = round_results[cursor:cursor + count]
                cursor += count
                state["node_results"] = slice_results
                state["pressure"] = fleet_pressure(
                    state["specs"], [r.report for r in slice_results])

        results: list[FleetResult] = []
        for state in states:
            fleet = state["fleet"]
            slice_results = state["node_results"]
            report = build_fleet_report(
                fleet.horizon_s, fleet.routing, state["specs"],
                state["platforms"], state["plan"],
                [r.report for r in slice_results])
            # Snapshots fold in a fixed order — dispatch phase first, then
            # nodes in fleet order — so telemetry is bit-identical for any
            # pool size, exactly like the reports themselves.
            dispatch_snap = state["dispatch_snap"]
            snaps = ([dispatch_snap] if dispatch_snap is not None else [])
            snaps += [r.telemetry for r in slice_results
                      if r.telemetry is not None]
            telemetry = (merge_snapshots(snaps, where=fleet.name)
                         if snaps else None)
            results.append(FleetResult(
                name=fleet.name, routing=fleet.routing, report=report,
                wall_seconds=sum(r.wall_seconds for r in slice_results),
                telemetry=telemetry))
        return results

    def _map(self, worker: Callable, scenarios: list) -> list:
        if not scenarios:
            return []
        workers = self.max_workers or min(len(scenarios),
                                          os.cpu_count() or 1)
        workers = min(workers, len(scenarios))
        if workers <= 1:
            return [worker(s) for s in scenarios]
        chunk = max(1, len(scenarios) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, scenarios, chunksize=chunk))
