"""Process-pool scenario execution.

:class:`ScenarioRunner` fans a list of :class:`~repro.runner.scenario.Scenario`
specs across worker processes.  Each worker rebuilds platform + manager from
the spec's registry keys (nothing heavier than a few strings crosses the
process boundary), plans, measures the decision with the simulator, and
returns a plain-data :class:`ScenarioResult`.  Results come back in input
order and are bit-identical regardless of ``max_workers`` — every manager
is freshly constructed from the scenario's seed, so no state leaks between
scenarios or workers.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..baselines import GAConfig, GeneticManager, GpuBaseline, Mosaic, Odmdef, OmniBoost
from ..core.manager import Manager, RankMap, RankMapConfig
from ..core.predictor import OraclePredictor
from ..hw import jetson_class, orange_pi_5
from ..hw.platform import Platform
from ..search import MCTSConfig
from ..serve import AdmissionConfig, ServeConfig, build_replan_policy, serve_trace
from ..sim import EvaluationCache, simulate
from ..workloads import TraceConfig, sample_session_requests
from ..zoo import MODEL_POOL, get_model
from .scenario import DynamicResult, DynamicScenario, Scenario, ScenarioResult

__all__ = ["ScenarioRunner", "MANAGER_SPECS", "PLATFORM_SPECS",
           "build_manager", "execute_scenario", "execute_dynamic_scenario"]

PLATFORM_SPECS: dict[str, Callable[[], Platform]] = {
    "orange_pi_5": orange_pi_5,
    "jetson_class": jetson_class,
}


def _mcts(scenario: Scenario) -> MCTSConfig:
    return MCTSConfig(iterations=scenario.search_iterations,
                      rollouts_per_leaf=scenario.search_rollouts,
                      seed=scenario.seed)


def _rankmap(mode: str):
    def build(platform: Platform, scenario: Scenario,
              cache: EvaluationCache) -> Manager:
        return RankMap(platform, OraclePredictor(platform, cache=cache),
                       RankMapConfig(mode=mode, mcts=_mcts(scenario)))
    return build


MANAGER_SPECS: dict[str, Callable[..., Manager]] = {
    "baseline": lambda platform, scenario, cache: GpuBaseline(),
    "mosaic": lambda platform, scenario, cache: Mosaic(platform),
    "odmdef": lambda platform, scenario, cache: Odmdef(
        platform, seed=scenario.seed),
    "ga": lambda platform, scenario, cache: GeneticManager(
        platform, GAConfig(seed=scenario.seed)),
    "omniboost": lambda platform, scenario, cache: OmniBoost(
        platform, OraclePredictor(platform, cache=cache), _mcts(scenario)),
    "rankmap_s": _rankmap("static"),
    "rankmap_d": _rankmap("dynamic"),
}


def build_manager(scenario: Scenario, platform: Platform,
                  cache: EvaluationCache) -> Manager:
    try:
        spec = MANAGER_SPECS[scenario.manager]
    except KeyError:
        raise ValueError(
            f"unknown manager {scenario.manager!r}; "
            f"choose from {sorted(MANAGER_SPECS)}") from None
    return spec(platform, scenario, cache)


def execute_scenario(scenario: Scenario) -> ScenarioResult:
    """Run one scenario start-to-finish (also the process-pool worker)."""
    try:
        platform = PLATFORM_SPECS[scenario.platform]()
    except KeyError:
        raise ValueError(
            f"unknown platform {scenario.platform!r}; "
            f"choose from {sorted(PLATFORM_SPECS)}") from None
    workload = [get_model(n) for n in scenario.workload]
    cache = EvaluationCache(platform)
    manager = build_manager(scenario, platform, cache)
    priorities = (np.asarray(scenario.priorities, dtype=np.float64)
                  if scenario.priorities is not None else None)

    t0 = time.perf_counter()
    decision = manager.plan(workload, priorities)
    wall = time.perf_counter() - t0
    result = simulate(workload, decision.mapping, platform)
    return ScenarioResult(
        name=scenario.name,
        manager=scenario.manager,
        platform=scenario.platform,
        workload=scenario.workload,
        assignments=decision.mapping.assignments,
        decision_seconds=float(decision.decision_seconds),
        rates=tuple(float(r) for r in result.rates),
        potentials=tuple(float(p) for p in result.potentials),
        wall_seconds=wall,
        cache_hit_rate=cache.hit_rate,
    )


def execute_dynamic_scenario(spec: DynamicScenario) -> DynamicResult:
    """Serve one stochastic trace start-to-finish (also the pool worker).

    The evaluation cache is rebuilt per call — loaded from
    ``spec.cache_path`` when that file exists (a persisted cache built for
    the same platform), fresh otherwise — so the report is a pure function
    of the spec regardless of which worker runs it or how warm it starts.
    """
    try:
        platform = PLATFORM_SPECS[spec.platform]()
    except KeyError:
        raise ValueError(
            f"unknown platform {spec.platform!r}; "
            f"choose from {sorted(PLATFORM_SPECS)}") from None
    preloaded = 0
    if spec.cache_path is not None and Path(spec.cache_path).exists():
        cache = EvaluationCache.load(spec.cache_path, platform)
        preloaded = len(cache)
    else:
        cache = EvaluationCache(platform)
    manager = build_manager(spec, platform, cache)
    policy = build_replan_policy(spec.policy, manager)

    pool = spec.pool if spec.pool else MODEL_POOL
    trace_config = TraceConfig(
        horizon_s=spec.horizon_s,
        arrival_rate_per_s=spec.arrival_rate_per_s,
        mean_session_s=spec.mean_session_s,
        max_concurrent=spec.capacity, pool=pool,
    )
    # Trace seed is decoupled from the search seed so policy/manager cells
    # of a sweep sharing `seed` see the same arrival process.
    requests = sample_session_requests(
        np.random.default_rng(spec.seed + 17), trace_config,
        tier_shift_prob=spec.tier_shift_prob)
    serve_config = ServeConfig(
        horizon_s=spec.horizon_s,
        admission=AdmissionConfig(
            capacity=spec.capacity, queue_limit=spec.queue_limit,
            max_queue_wait_s=spec.max_queue_wait_s),
        pool=pool, seed=spec.seed,
    )

    t0 = time.perf_counter()
    report = serve_trace(requests, policy, platform, serve_config,
                         cache=cache)
    wall = time.perf_counter() - t0
    return DynamicResult(
        name=spec.name, manager=spec.manager, platform=spec.platform,
        policy=spec.policy, report=report, wall_seconds=wall,
        eval_cache_hit_rate=cache.hit_rate,
        eval_cache_preloaded=preloaded,
    )


class ScenarioRunner:
    """Fan scenarios across a process pool; aggregate in input order.

    ``max_workers=None`` sizes the pool to the machine; ``max_workers=1``
    (or a single scenario) runs inline, which is what the regression tests
    compare against to pin down pool determinism.  :meth:`run` executes
    static planning scenarios, :meth:`run_dynamic` executes online-serving
    scenarios; both share the pool mechanics.
    """

    def __init__(self, max_workers: int | None = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.max_workers = max_workers

    def run(self, scenarios: Sequence[Scenario]) -> list[ScenarioResult]:
        return self._map(execute_scenario, list(scenarios))

    def run_dynamic(self,
                    scenarios: Sequence[DynamicScenario]) -> list[DynamicResult]:
        return self._map(execute_dynamic_scenario, list(scenarios))

    def _map(self, worker: Callable, scenarios: list) -> list:
        if not scenarios:
            return []
        workers = self.max_workers or min(len(scenarios),
                                          os.cpu_count() or 1)
        workers = min(workers, len(scenarios))
        if workers <= 1:
            return [worker(s) for s in scenarios]
        chunk = max(1, len(scenarios) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, scenarios, chunksize=chunk))
