"""CLI: inspect the model zoo.

    python -m repro.zoo                 # list all models with stats
    python -m repro.zoo resnet50        # per-block detail of one model
"""

from __future__ import annotations

import argparse
import sys

from ..hw import orange_pi_5, solo_throughput
from .registry import ALL_MODELS, get_model


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.zoo",
                                     description="Inspect the DNN zoo.")
    parser.add_argument("model", nargs="?",
                        help="model name for per-block detail")
    args = parser.parse_args(argv)
    platform = orange_pi_5()

    if args.model is None:
        print(f"{'model':24s} {'blocks':>6s} {'layers':>6s} {'GMACs':>8s} "
              f"{'params(M)':>9s} {'gpu':>7s} {'big':>7s} {'little':>7s}")
        for name in ALL_MODELS:
            m = get_model(name)
            rates = [solo_throughput(m, c) for c in platform.components]
            print(f"{name:24s} {m.num_blocks:6d} {m.num_layers:6d} "
                  f"{m.macs / 1e9:8.2f} {m.params / 1e6:9.1f} "
                  f"{rates[0]:7.1f} {rates[1]:7.1f} {rates[2]:7.1f}")
        return 0

    try:
        model = get_model(args.model)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(f"{model.name}: input {model.input_shape}, "
          f"{model.macs / 1e9:.2f} GMACs, {model.params / 1e6:.1f} M params")
    print(f"{'block':20s} {'layers':>6s} {'MMACs':>9s} {'out_bytes':>10s}")
    for block in model.blocks:
        print(f"{block.name:20s} {len(block.layers):6d} "
              f"{block.macs / 1e6:9.1f} {block.output_bytes:10d}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
