"""Eq. 1 layer vectorisation: LayerSpec -> 22-dimensional feature vector.

Per the paper, each layer l_j^i is described by:

    [ j | t | ifm(4) | ofm(4) | w(4) | b | a | ps(6) ]   (22 dims)

where ifm/ofm/w carry (minibatch, channels, height, width), b is the bias
count, a the activation type, and ps the pad-stride information.  Raw entries
span many orders of magnitude, so :func:`vectorize_layer` also offers the
log-compressed variant used to train the VQ-VAE and estimator.
"""

from __future__ import annotations

import numpy as np

from .layers import LayerSpec, ModelSpec

__all__ = [
    "LAYER_VECTOR_DIM",
    "vectorize_layer",
    "vectorize_model",
    "normalize_features",
]

LAYER_VECTOR_DIM = 22

# Indices of size-like entries that get log1p compression in normalised mode.
_SIZE_IDX = np.array([0, *range(2, 14), 14])  # j, ifm, ofm, w, b


def vectorize_layer(layer: LayerSpec, minibatch: int = 1) -> np.ndarray:
    """Return the raw 22-dim Eq. 1 vector for ``layer``."""
    oc, ic_g, kh, kw = layer.weight_shape
    vec = np.array(
        [
            layer.index,                       # j: layer index within DNN
            layer.op_type,                     # t: layer type
            minibatch, *layer.ifm,             # ifm: (n, c, h, w)
            minibatch, *layer.ofm,             # ofm: (n, c, h, w)
            oc, ic_g, kh, kw,                  # w:  weight tensor dims
            layer.biases,                      # b:  number of biases
            layer.activation,                  # a:  activation type
            layer.pad[0], layer.pad[0],        # ps: pad top/bottom
            layer.pad[1], layer.pad[1],        #     pad left/right
            layer.stride[0], layer.stride[1],  #     stride h/w
        ],
        dtype=np.float64,
    )
    if vec.shape != (LAYER_VECTOR_DIM,):
        raise AssertionError("layer vector dimensionality drifted from Eq. 1")
    return vec


def normalize_features(matrix: np.ndarray) -> np.ndarray:
    """Log-compress size-like columns of a (layers, 22) matrix in place-free
    fashion and scale everything to O(1)."""
    out = matrix.astype(np.float64).copy()
    out[..., _SIZE_IDX] = np.log1p(out[..., _SIZE_IDX])
    # Fixed scales keep the encoding workload-independent (no dataset
    # statistics leak into the representation).
    scales = np.ones(LAYER_VECTOR_DIM)
    scales[_SIZE_IDX] = 10.0      # log1p of big dims tops out ~ 18
    scales[1] = 13.0              # layer-type code range
    scales[15] = 6.0              # activation code range
    scales[16:22] = 4.0           # pads / strides
    return out / scales


def vectorize_model(model: ModelSpec, normalized: bool = True) -> np.ndarray:
    """Vectorise every layer of ``model`` into a (num_layers, 22) matrix."""
    matrix = np.stack([vectorize_layer(l) for l in model.layers()])
    if normalized:
        matrix = normalize_features(matrix)
    return matrix
