"""Classic plain CNNs: AlexNet and the VGG family.

Block granularity: one block per convolution / fully-connected layer group.
AlexNet exposes exactly 8 partitionable blocks, matching the count the paper
uses in its solution-space example (Sec. IV-E).
"""

from __future__ import annotations

from ..builder import NetBuilder
from ..layers import Activation, ModelSpec

__all__ = ["alexnet", "vgg16", "vgg19"]


def alexnet() -> ModelSpec:
    """AlexNet (Krizhevsky et al., 2012); 8 blocks: conv1-5 + fc6-8."""
    b = NetBuilder("alexnet", (3, 227, 227))
    b.block("conv1").conv(96, 11, stride=4, pad=0).lrn().maxpool(3, 2)
    b.block("conv2").conv(256, 5, pad=2).lrn().maxpool(3, 2)
    b.block("conv3").conv(384, 3)
    b.block("conv4").conv(384, 3)
    b.block("conv5").conv(256, 3).maxpool(3, 2)
    b.block("fc6").fc(4096, act=Activation.RELU)
    b.block("fc7").fc(4096, act=Activation.RELU)
    b.block("fc8").fc(1000, act=Activation.SOFTMAX)
    return b.build()


def _vgg(name: str, stage_convs: tuple[int, ...]) -> ModelSpec:
    """VGG backbone: 3x3 conv stacks with maxpool between stages + 3 FCs."""
    b = NetBuilder(name, (3, 224, 224))
    channels = (64, 128, 256, 512, 512)
    idx = 1
    for n_convs, out_c in zip(stage_convs, channels):
        for i in range(n_convs):
            b.block(f"conv{idx}").conv(out_c, 3)
            idx += 1
            # Pool closes each stage inside the stage's final conv block.
            if i == n_convs - 1:
                b.maxpool(2, 2)
    b.block("fc1").fc(4096, act=Activation.RELU)
    b.block("fc2").fc(4096, act=Activation.RELU)
    b.block("fc3").fc(1000, act=Activation.SOFTMAX)
    return b.build()


def vgg16() -> ModelSpec:
    """VGG-16 (Simonyan & Zisserman, 2015): 13 conv + 3 FC blocks."""
    return _vgg("vgg16", (2, 2, 3, 3, 3))


def vgg19() -> ModelSpec:
    """VGG-19: 16 conv + 3 FC blocks."""
    return _vgg("vgg19", (2, 2, 4, 4, 4))
