"""DenseNet-121 / DenseNet-169.

Partition granularity: dense blocks are chunked into groups of four dense
layers (a dense layer = 1x1 bottleneck conv + 3x3 growth conv + concat), so
a DNN stage never splits a single concat chain mid-layer while still giving
the mapper useful flexibility inside the long dense blocks.
"""

from __future__ import annotations

from ..builder import NetBuilder
from ..layers import Activation, ModelSpec

__all__ = ["densenet121", "densenet169"]

_GROWTH = 32
_CHUNK = 4  # dense layers per partitionable block


def _dense_layer(b: NetBuilder) -> None:
    """BN-ReLU-1x1(4k) -> BN-ReLU-3x3(k), concatenated with the input."""
    b.branches(
        lambda nb: nb.pwconv(4 * _GROWTH).conv(_GROWTH, 3),
        _identity,
        name="dense_concat",
    )


def _identity(nb: NetBuilder) -> None:
    """Identity branch: contributes the input tensor to the concat."""
    # No layers: the branch output is the branch input.


def _transition(b: NetBuilder) -> None:
    c = b.shape[0]
    b.pwconv(c // 2, act=Activation.NONE).avgpool(2, 2)


def _densenet(name: str, block_sizes: tuple[int, ...]) -> ModelSpec:
    b = NetBuilder(name, (3, 224, 224))
    b.block("stem").conv(64, 7, stride=2, pad=3).maxpool(3, 2, pad=1)
    for bi, n_layers in enumerate(block_sizes):
        done = 0
        chunk_idx = 0
        while done < n_layers:
            take = min(_CHUNK, n_layers - done)
            b.block(f"dense{bi + 1}_{chunk_idx}")
            for _ in range(take):
                _dense_layer(b)
            done += take
            chunk_idx += 1
        if bi < len(block_sizes) - 1:
            b.block(f"transition{bi + 1}")
            _transition(b)
    b.block("head").global_pool().fc(1000, act=Activation.SOFTMAX)
    return b.build()


def densenet121() -> ModelSpec:
    """DenseNet-121 (Huang et al., 2017): dense blocks of 6/12/24/16 layers."""
    return _densenet("densenet121", (6, 12, 24, 16))


def densenet169() -> ModelSpec:
    """DenseNet-169: dense blocks of 6/12/32/32 layers."""
    return _densenet("densenet169", (6, 12, 32, 32))
