"""Inception family: GoogleNet, Inception-V3/V4, Inception-ResNet V1/V2.

These are the branch-heavy architectures; their many small kernels make
them dispatch-overhead-bound on the GPU, which is why the paper's Fig. 2
finds Inception-V4 the most starvation-prone model.  Branches are emitted
in execution order followed by a concat join (see ``NetBuilder.branches``).
"""

from __future__ import annotations

from ..builder import NetBuilder
from ..layers import Activation, ModelSpec

__all__ = [
    "googlenet",
    "inception_v3",
    "inception_v4",
    "inception_resnet_v1",
    "inception_resnet_v2",
]

NONE = Activation.NONE


# ----------------------------------------------------------------------
# GoogleNet (Inception V1)
# ----------------------------------------------------------------------
def _v1_module(b: NetBuilder, c1: int, r3: int, c3: int, r5: int, c5: int,
               pool_proj: int) -> None:
    b.branches(
        lambda nb: nb.pwconv(c1),
        lambda nb: nb.pwconv(r3).conv(c3, 3),
        lambda nb: nb.pwconv(r5).conv(c5, 5),
        lambda nb: nb.maxpool(3, 1, pad=1).pwconv(pool_proj),
    )


def googlenet() -> ModelSpec:
    """GoogleNet (Szegedy et al., 2015): stem + 9 inception modules + head."""
    b = NetBuilder("googlenet", (3, 224, 224))
    b.block("stem")
    b.conv(64, 7, stride=2, pad=3).maxpool(3, 2, pad=1).lrn()
    b.pwconv(64).conv(192, 3).lrn().maxpool(3, 2, pad=1)

    params = [
        ("3a", 64, 96, 128, 16, 32, 32),
        ("3b", 128, 128, 192, 32, 96, 64),
        ("4a", 192, 96, 208, 16, 48, 64),
        ("4b", 160, 112, 224, 24, 64, 64),
        ("4c", 128, 128, 256, 24, 64, 64),
        ("4d", 112, 144, 288, 32, 64, 64),
        ("4e", 256, 160, 320, 32, 128, 128),
        ("5a", 256, 160, 320, 32, 128, 128),
        ("5b", 384, 192, 384, 48, 128, 128),
    ]
    for name, *cfg in params:
        b.block(f"inception_{name}")
        _v1_module(b, *cfg)
        if name in ("3b", "4e"):
            b.maxpool(3, 2, pad=1)
    b.block("head").global_pool().fc(1000, act=Activation.SOFTMAX)
    return b.build()


# ----------------------------------------------------------------------
# Inception V3
# ----------------------------------------------------------------------
def inception_v3() -> ModelSpec:
    """Inception-V3 (Szegedy et al., 2016), 299x299 input."""
    b = NetBuilder("inception_v3", (3, 299, 299))
    b.block("stem")
    b.conv(32, 3, stride=2, pad=0).conv(32, 3, pad=0).conv(64, 3)
    b.maxpool(3, 2).pwconv(80).conv(192, 3, pad=0).maxpool(3, 2)

    # 3 x InceptionA at 35x35
    for i, pool_c in enumerate((32, 64, 64)):
        b.block(f"mixed_a{i}")
        b.branches(
            lambda nb: nb.pwconv(64),
            lambda nb: nb.pwconv(48).conv(64, 5),
            lambda nb: nb.pwconv(64).conv(96, 3).conv(96, 3),
            lambda nb, pc=pool_c: nb.avgpool(3, 1, pad=1).pwconv(pc),
        )

    # Reduction A -> 17x17
    b.block("reduction_a")
    b.branches(
        lambda nb: nb.conv(384, 3, stride=2, pad=0),
        lambda nb: nb.pwconv(64).conv(96, 3).conv(96, 3, stride=2, pad=0),
        lambda nb: nb.maxpool(3, 2),
    )

    # 4 x InceptionB with factorised 1x7 / 7x1 convolutions
    for i, width in enumerate((128, 160, 160, 192)):
        b.block(f"mixed_b{i}")
        b.branches(
            lambda nb: nb.pwconv(192),
            lambda nb, c=width: (
                nb.pwconv(c).conv(c, (1, 7)).conv(192, (7, 1))
            ),
            lambda nb, c=width: (
                nb.pwconv(c).conv(c, (7, 1)).conv(c, (1, 7))
                .conv(c, (7, 1)).conv(192, (1, 7))
            ),
            lambda nb: nb.avgpool(3, 1, pad=1).pwconv(192),
        )

    # Reduction B -> 8x8
    b.block("reduction_b")
    b.branches(
        lambda nb: nb.pwconv(192).conv(320, 3, stride=2, pad=0),
        lambda nb: (
            nb.pwconv(192).conv(192, (1, 7)).conv(192, (7, 1))
            .conv(192, 3, stride=2, pad=0)
        ),
        lambda nb: nb.maxpool(3, 2),
    )

    # 2 x InceptionC at 8x8
    for i in range(2):
        b.block(f"mixed_c{i}")
        b.branches(
            lambda nb: nb.pwconv(320),
            lambda nb: nb.pwconv(384).conv(768, 3),
            lambda nb: nb.pwconv(448).conv(384, 3).conv(768, 3),
            lambda nb: nb.avgpool(3, 1, pad=1).pwconv(192),
        )

    b.block("head").global_pool().fc(1000, act=Activation.SOFTMAX)
    return b.build()


# ----------------------------------------------------------------------
# Inception V4
# ----------------------------------------------------------------------
def _v4_stem(b: NetBuilder) -> None:
    b.conv(32, 3, stride=2, pad=0).conv(32, 3, pad=0).conv(64, 3)
    b.branches(
        lambda nb: nb.maxpool(3, 2, pad=0),
        lambda nb: nb.conv(96, 3, stride=2, pad=0),
    )
    b.branches(
        lambda nb: nb.pwconv(64).conv(96, 3, pad=0),
        lambda nb: (
            nb.pwconv(64).conv(64, (1, 7)).conv(64, (7, 1)).conv(96, 3, pad=0)
        ),
    )
    b.branches(
        lambda nb: nb.conv(192, 3, stride=2, pad=0),
        lambda nb: nb.maxpool(3, 2, pad=0),
    )


def inception_v4() -> ModelSpec:
    """Inception-V4 (Szegedy et al., 2017): the heaviest pool classifier."""
    b = NetBuilder("inception_v4", (3, 299, 299))
    b.block("stem")
    _v4_stem(b)

    for i in range(4):  # 4 x InceptionA (35x35, 384ch)
        b.block(f"a{i}")
        b.branches(
            lambda nb: nb.pwconv(96),
            lambda nb: nb.pwconv(64).conv(96, 3),
            lambda nb: nb.pwconv(64).conv(96, 3).conv(96, 3),
            lambda nb: nb.avgpool(3, 1, pad=1).pwconv(96),
        )

    b.block("reduction_a")
    b.branches(
        lambda nb: nb.conv(384, 3, stride=2, pad=0),
        lambda nb: nb.pwconv(192).conv(224, 3).conv(256, 3, stride=2, pad=0),
        lambda nb: nb.maxpool(3, 2),
    )

    for i in range(7):  # 7 x InceptionB (17x17, 1024ch)
        b.block(f"b{i}")
        b.branches(
            lambda nb: nb.pwconv(384),
            lambda nb: nb.pwconv(192).conv(224, (1, 7)).conv(256, (7, 1)),
            lambda nb: (
                nb.pwconv(192).conv(192, (1, 7)).conv(224, (7, 1))
                .conv(224, (1, 7)).conv(256, (7, 1))
            ),
            lambda nb: nb.avgpool(3, 1, pad=1).pwconv(128),
        )

    b.block("reduction_b")
    b.branches(
        lambda nb: nb.pwconv(192).conv(192, 3, stride=2, pad=0),
        lambda nb: (
            nb.pwconv(256).conv(256, (1, 7)).conv(320, (7, 1))
            .conv(320, 3, stride=2, pad=0)
        ),
        lambda nb: nb.maxpool(3, 2),
    )

    for i in range(3):  # 3 x InceptionC (8x8, 1536ch)
        b.block(f"c{i}")
        b.branches(
            lambda nb: nb.pwconv(256),
            lambda nb: nb.pwconv(384).conv(512, 3),
            lambda nb: nb.pwconv(384).conv(448, 3).conv(512, 3),
            lambda nb: nb.avgpool(3, 1, pad=1).pwconv(256),
        )

    b.block("head").global_pool().fc(1000, act=Activation.SOFTMAX)
    return b.build()


# ----------------------------------------------------------------------
# Inception-ResNet V1 / V2
# ----------------------------------------------------------------------
def _ir_stem(b: NetBuilder, v2: bool) -> None:
    if v2:
        _v4_stem(b)
    else:
        b.conv(32, 3, stride=2, pad=0).conv(32, 3, pad=0).conv(64, 3)
        b.maxpool(3, 2).pwconv(80).conv(192, 3, pad=0).conv(256, 3, stride=2, pad=0)


def _ir_block(b: NetBuilder, branch_fns, out_c: int) -> None:
    """Inception-ResNet unit: branches -> 1x1 projection -> residual add."""

    def body(nb: NetBuilder) -> None:
        nb.branches(*branch_fns)
        nb.pwconv(out_c, act=NONE)

    b.residual(body)


def _inception_resnet(name: str, v2: bool) -> ModelSpec:
    b = NetBuilder(name, (3, 299, 299))
    b.block("stem")
    _ir_stem(b, v2)
    base = b.shape[0]  # 256 (v1) or 384 (v2)

    n_a, n_b, n_c = 5, 10, 5
    wa = 32

    for i in range(n_a):  # block35
        b.block(f"a{i}")
        _ir_block(
            b,
            (
                lambda nb: nb.pwconv(wa),
                lambda nb: nb.pwconv(wa).conv(wa, 3),
                lambda nb: nb.pwconv(wa).conv(wa + wa // 2, 3).conv(2 * wa, 3),
            ),
            base,
        )

    b.block("reduction_a")
    k = 256 if not v2 else 288
    b.branches(
        lambda nb: nb.conv(384, 3, stride=2, pad=0),
        lambda nb, kk=k: nb.pwconv(192).conv(192, 3).conv(kk, 3, stride=2, pad=0),
        lambda nb: nb.maxpool(3, 2),
    )
    mid = b.shape[0]

    wb = 128 if not v2 else 160
    for i in range(n_b):  # block17
        b.block(f"b{i}")
        _ir_block(
            b,
            (
                lambda nb: nb.pwconv(wb),
                lambda nb: nb.pwconv(wb).conv(wb, (1, 7)).conv(wb, (7, 1)),
            ),
            mid,
        )

    b.block("reduction_b")
    b.branches(
        lambda nb: nb.pwconv(256).conv(384, 3, stride=2, pad=0),
        lambda nb: nb.pwconv(256).conv(256, 3, stride=2, pad=0),
        lambda nb: nb.pwconv(256).conv(256, 3).conv(256, 3, stride=2, pad=0),
        lambda nb: nb.maxpool(3, 2),
    )
    top = b.shape[0]

    wc = 192
    for i in range(n_c):  # block8
        b.block(f"c{i}")
        _ir_block(
            b,
            (
                lambda nb: nb.pwconv(wc),
                lambda nb: nb.pwconv(wc).conv(wc, 3),
            ),
            top,
        )

    b.block("head").global_pool().fc(1000, act=Activation.SOFTMAX)
    return b.build()


def inception_resnet_v1() -> ModelSpec:
    """Inception-ResNet-V1 (Szegedy et al., 2017); Fig. 8's heavy arrival."""
    return _inception_resnet("inception_resnet_v1", v2=False)


def inception_resnet_v2() -> ModelSpec:
    """Inception-ResNet-V2: wider stem and cells than V1."""
    return _inception_resnet("inception_resnet_v2", v2=True)
