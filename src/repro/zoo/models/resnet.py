"""ResNet family: ResNet-12, ResNet-50, ResNet-50 V2, ResNeXt-50.

ResNet-50 and ResNeXt-50 expose 18 blocks (stem + 16 bottleneck units +
head), matching the partition-point count the paper quotes for ResNet-50.
"""

from __future__ import annotations

from ..builder import NetBuilder
from ..layers import Activation, ModelSpec

__all__ = ["resnet12", "resnet50", "resnet50_v2", "resnext50"]


def _bottleneck(b: NetBuilder, width: int, out_c: int, stride: int,
                project: bool, groups: int = 1, preact: bool = False) -> None:
    """1x1 reduce -> 3x3 (optionally grouped) -> 1x1 expand + shortcut."""
    act_mid = Activation.RELU
    act_last = Activation.NONE if not preact else Activation.RELU

    def body(nb: NetBuilder) -> None:
        nb.pwconv(width, act=act_mid)
        nb.conv(width, 3, stride=stride, act=act_mid, groups=groups)
        nb.pwconv(out_c, act=act_last)

    if project:
        def projection(nb: NetBuilder) -> None:
            nb.conv(out_c, 1, stride=stride, pad=0, act=Activation.NONE)

        b.residual(body, projection)
    else:
        b.residual(body)


def _resnet50_like(name: str, groups: int, base_width: int,
                   preact: bool = False) -> ModelSpec:
    b = NetBuilder(name, (3, 224, 224))
    b.block("stem").conv(64, 7, stride=2, pad=3).maxpool(3, 2, pad=1)
    stages = ((256, 3, 1), (512, 4, 2), (1024, 6, 2), (2048, 3, 2))
    unit = 1
    for stage_idx, (out_c, n_units, first_stride) in enumerate(stages):
        width = base_width * (2**stage_idx)
        for i in range(n_units):
            stride = first_stride if i == 0 else 1
            b.block(f"unit{unit}")
            _bottleneck(b, width, out_c, stride, project=(i == 0),
                        groups=groups, preact=preact)
            unit += 1
    b.block("head").global_pool().fc(1000, act=Activation.SOFTMAX)
    return b.build()


def resnet50() -> ModelSpec:
    """ResNet-50 (He et al., 2016): 18 blocks."""
    return _resnet50_like("resnet50", groups=1, base_width=64)


def resnet50_v2() -> ModelSpec:
    """ResNet-50 V2 (pre-activation variant; identical tensor shapes)."""
    return _resnet50_like("resnet50_v2", groups=1, base_width=64, preact=True)


def resnext50() -> ModelSpec:
    """ResNeXt-50 32x4d: grouped 3x3 convolutions, doubled bottleneck width."""
    return _resnet50_like("resnext50", groups=32, base_width=128)


def resnet12() -> ModelSpec:
    """ResNet-12 (the compact 4-stage variant popular on edge devices).

    Four residual stages of three 3x3 convs each, stage-level maxpool, then
    a classifier; 5 blocks total.  Uses the standard 84x84 input of the
    few-shot literature where this architecture originates.
    """
    b = NetBuilder("resnet12", (3, 84, 84))
    channels = (64, 128, 256, 512)
    for i, out_c in enumerate(channels):
        b.block(f"stage{i + 1}")

        def body(nb: NetBuilder, c=out_c) -> None:
            nb.conv(c, 3).conv(c, 3).conv(c, 3, act=Activation.NONE)

        def projection(nb: NetBuilder, c=out_c) -> None:
            nb.conv(c, 1, pad=0, act=Activation.NONE)

        b.residual(body, projection)
        b.maxpool(2, 2)
    b.block("head").global_pool().fc(1000, act=Activation.SOFTMAX)
    return b.build()
