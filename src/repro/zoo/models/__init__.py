"""Concrete model definitions, grouped by architecture family."""

from . import classic, densenet, detection, inception, mobile, resnet

__all__ = ["classic", "densenet", "detection", "inception", "mobile", "resnet"]
