"""Mobile-first architectures: MobileNet V1/V2, ShuffleNet, SqueezeNet V1/V2,
EfficientNet-B0/B1/B2.

MobileNet (V1) exposes exactly 20 partitionable blocks and ShuffleNet exactly
18, matching the counts the paper quotes in its solution-space example: for
MobileNet the five widest depthwise-separable units are split into separate
depthwise and pointwise blocks (documented granularity choice).
"""

from __future__ import annotations

from ..builder import NetBuilder
from ..layers import Activation, ModelSpec

__all__ = [
    "mobilenet",
    "mobilenet_v2",
    "shufflenet",
    "squeezenet",
    "squeezenet_v2",
    "efficientnet_b0",
    "efficientnet_b1",
    "efficientnet_b2",
]

RELU6 = Activation.RELU6
SWISH = Activation.SWISH
NONE = Activation.NONE


# ----------------------------------------------------------------------
# MobileNet V1
# ----------------------------------------------------------------------
# (out_channels, stride) of the 13 depthwise-separable units.
_MOBILENET_UNITS = [
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
    (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1),
]
# Units whose dw / pw halves become separate blocks (granularity chosen so
# the model exposes the paper's 20 partition points).
_MOBILENET_SPLIT = {1, 3, 5, 11, 12}


def mobilenet() -> ModelSpec:
    """MobileNet V1 (Howard et al., 2017): 20 blocks."""
    b = NetBuilder("mobilenet", (3, 224, 224))
    b.block("stem").conv(32, 3, stride=2)
    for i, (out_c, stride) in enumerate(_MOBILENET_UNITS):
        if i in _MOBILENET_SPLIT:
            b.block(f"sep{i + 1}_dw").dwconv(3, stride=stride)
            b.block(f"sep{i + 1}_pw").pwconv(out_c)
        else:
            b.block(f"sep{i + 1}").dwconv(3, stride=stride).pwconv(out_c)
    b.block("head").global_pool().fc(1000, act=Activation.SOFTMAX)
    return b.build()


# ----------------------------------------------------------------------
# MobileNet V2
# ----------------------------------------------------------------------
# (expansion, out_channels, repeats, first_stride)
_MOBILENET_V2_STAGES = [
    (1, 16, 1, 1), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2),
    (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1),
]


def _inverted_residual(b: NetBuilder, expansion: int, out_c: int,
                       stride: int) -> None:
    in_c = b.shape[0]
    hidden = in_c * expansion

    def body(nb: NetBuilder) -> None:
        if expansion != 1:
            nb.pwconv(hidden, act=RELU6)
        nb.dwconv(3, stride=stride, act=RELU6)
        nb.pwconv(out_c, act=NONE)

    if stride == 1 and in_c == out_c:
        b.residual(body, act=NONE)
    else:
        body(b)


def mobilenet_v2() -> ModelSpec:
    """MobileNet V2 (Sandler et al., 2018): 19 blocks."""
    b = NetBuilder("mobilenet_v2", (3, 224, 224))
    b.block("stem").conv(32, 3, stride=2, act=RELU6)
    unit = 1
    for expansion, out_c, repeats, first_stride in _MOBILENET_V2_STAGES:
        for i in range(repeats):
            b.block(f"bottleneck{unit}")
            _inverted_residual(b, expansion, out_c,
                               first_stride if i == 0 else 1)
            unit += 1
    b.block("head").pwconv(1280, act=RELU6).global_pool()
    b.fc(1000, act=Activation.SOFTMAX)
    return b.build()


# ----------------------------------------------------------------------
# ShuffleNet V1 (groups = 3)
# ----------------------------------------------------------------------
def _shuffle_unit(b: NetBuilder, out_c: int, stride: int, groups: int,
                  first_of_net: bool) -> None:
    in_c = b.shape[0]
    mid = out_c // 4
    # First pointwise group conv of the whole net is ungrouped (paper detail).
    g1 = 1 if first_of_net else groups

    if stride == 1:
        def body(nb: NetBuilder) -> None:
            nb.conv(mid, 1, pad=0, groups=g1)
            nb.channel_shuffle(groups)
            nb.dwconv(3, act=NONE)
            nb.conv(out_c, 1, pad=0, groups=groups, act=NONE)

        if in_c != out_c:
            raise ValueError("stride-1 shuffle unit needs matching channels")
        b.residual(body)
    else:
        # Stride-2 unit concatenates the body with an avg-pooled shortcut.
        branch_c = out_c - in_c

        def body_branch(nb: NetBuilder) -> None:
            nb.conv(mid, 1, pad=0, groups=g1)
            nb.channel_shuffle(groups)
            nb.dwconv(3, stride=2, act=NONE)
            nb.conv(branch_c, 1, pad=0, groups=groups, act=NONE)

        b.branches(
            body_branch,
            lambda nb: nb.avgpool(3, 2, pad=1),
        )


def shufflenet() -> ModelSpec:
    """ShuffleNet V1 g=3 (Zhang et al., 2018): 18 blocks."""
    b = NetBuilder("shufflenet", (3, 224, 224))
    groups = 3
    b.block("stem").conv(24, 3, stride=2).maxpool(3, 2, pad=1)
    stage_cfg = [(240, 4), (480, 8), (960, 4)]
    unit = 1
    first = True
    for out_c, repeats in stage_cfg:
        for i in range(repeats):
            b.block(f"unit{unit}")
            _shuffle_unit(b, out_c, stride=2 if i == 0 else 1, groups=groups,
                          first_of_net=first)
            first = False
            unit += 1
    b.block("head").global_pool().fc(1000, act=Activation.SOFTMAX)
    return b.build()


# ----------------------------------------------------------------------
# SqueezeNet V1.0 ("squeezenet") and V1.1 ("squeezenet_v2")
# ----------------------------------------------------------------------
def _fire(b: NetBuilder, squeeze: int, expand: int) -> None:
    b.pwconv(squeeze)
    b.branches(
        lambda nb: nb.pwconv(expand),
        lambda nb: nb.conv(expand, 3),
    )


def squeezenet() -> ModelSpec:
    """SqueezeNet V1.0 (Iandola et al., 2016): 10 blocks."""
    b = NetBuilder("squeezenet", (3, 224, 224))
    b.block("stem").conv(96, 7, stride=2, pad=3).maxpool(3, 2)
    fire_cfg = [(16, 64), (16, 64), (32, 128), (32, 128),
                (48, 192), (48, 192), (64, 256), (64, 256)]
    for i, (s, e) in enumerate(fire_cfg):
        b.block(f"fire{i + 2}")
        _fire(b, s, e)
        if i in (2, 6):  # pool after fire4 and fire8
            b.maxpool(3, 2)
    b.block("head").pwconv(1000).global_pool()
    return b.build()


def squeezenet_v2() -> ModelSpec:
    """SqueezeNet V1.1 (the lighter revision the paper calls V2): 10 blocks."""
    b = NetBuilder("squeezenet_v2", (3, 224, 224))
    b.block("stem").conv(64, 3, stride=2, pad=0).maxpool(3, 2)
    fire_cfg = [(16, 64), (16, 64), (32, 128), (32, 128),
                (48, 192), (48, 192), (64, 256), (64, 256)]
    for i, (s, e) in enumerate(fire_cfg):
        b.block(f"fire{i + 2}")
        _fire(b, s, e)
        if i in (1, 3):  # pool after fire3 and fire5
            b.maxpool(3, 2)
    b.block("head").pwconv(1000).global_pool()
    return b.build()


# ----------------------------------------------------------------------
# EfficientNet B0/B1/B2
# ----------------------------------------------------------------------
# Baseline (B0) stage table: (expansion, out_channels, repeats, stride, kernel)
_EFFICIENTNET_STAGES = [
    (1, 16, 1, 1, 3), (6, 24, 2, 2, 3), (6, 40, 2, 2, 5), (6, 80, 3, 2, 3),
    (6, 112, 3, 1, 5), (6, 192, 4, 2, 5), (6, 320, 1, 1, 3),
]


def _round_channels(c: float, multiplier: float, divisor: int = 8) -> int:
    c *= multiplier
    new_c = max(divisor, int(c + divisor / 2) // divisor * divisor)
    if new_c < 0.9 * c:
        new_c += divisor
    return new_c


def _round_repeats(r: int, multiplier: float) -> int:
    import math

    return int(math.ceil(r * multiplier))


def _mbconv(b: NetBuilder, expansion: int, out_c: int, stride: int,
            kernel: int) -> None:
    """MBConv without the SE branch (SE is <1 % of MACs; see DESIGN.md)."""
    in_c = b.shape[0]
    hidden = in_c * expansion

    def body(nb: NetBuilder) -> None:
        if expansion != 1:
            nb.pwconv(hidden, act=SWISH)
        nb.dwconv(kernel, stride=stride, act=SWISH)
        nb.pwconv(out_c, act=NONE)

    if stride == 1 and in_c == out_c:
        b.residual(body, act=NONE)
    else:
        body(b)


def _efficientnet(name: str, width: float, depth: float,
                  resolution: int) -> ModelSpec:
    b = NetBuilder(name, (3, resolution, resolution))
    stem_c = _round_channels(32, width)
    b.block("stem").conv(stem_c, 3, stride=2, act=SWISH)
    unit = 1
    for expansion, out_c, repeats, stride, kernel in _EFFICIENTNET_STAGES:
        c = _round_channels(out_c, width)
        for i in range(_round_repeats(repeats, depth)):
            b.block(f"mbconv{unit}")
            _mbconv(b, expansion, c, stride if i == 0 else 1, kernel)
            unit += 1
    head_c = _round_channels(1280, width)
    b.block("head").pwconv(head_c, act=SWISH).global_pool()
    b.fc(1000, act=Activation.SOFTMAX)
    return b.build()


def efficientnet_b0() -> ModelSpec:
    """EfficientNet-B0 (Tan & Le, 2019), 224x224."""
    return _efficientnet("efficientnet_b0", 1.0, 1.0, 224)


def efficientnet_b1() -> ModelSpec:
    """EfficientNet-B1: depth x1.1, 240x240."""
    return _efficientnet("efficientnet_b1", 1.0, 1.1, 240)


def efficientnet_b2() -> ModelSpec:
    """EfficientNet-B2: width x1.1, depth x1.2, 260x260."""
    return _efficientnet("efficientnet_b2", 1.1, 1.2, 260)
