"""Detection models: SSD with MobileNet backbone, and YOLO V3.

Multi-scale prediction heads are emitted immediately after their source
feature map using ``NetBuilder.set_shape`` to restore the trunk shape, so
the layer list remains a valid sequential execution order.
"""

from __future__ import annotations

from ..builder import NetBuilder
from ..layers import Activation, ModelSpec

from .mobile import _MOBILENET_UNITS

__all__ = ["ssd_mobilenet", "yolo_v3"]

LEAKY = Activation.LEAKY_RELU


# ----------------------------------------------------------------------
# SSD-MobileNet (300x300, COCO-style 90 classes)
# ----------------------------------------------------------------------
def ssd_mobilenet() -> ModelSpec:
    """SSD300 with a MobileNet-V1 feature extractor and 6 box heads."""
    classes = 90
    b = NetBuilder("ssd_mobilenet", (3, 300, 300))
    b.block("stem").conv(32, 3, stride=2)
    for i, (out_c, stride) in enumerate(_MOBILENET_UNITS):
        b.block(f"sep{i + 1}").dwconv(3, stride=stride).pwconv(out_c)
        if i == 10:  # conv11 feature map (19x19): first SSD source
            src = b.shape
            b.detect_head(3, classes, name="head_conv11")
            b.set_shape(src)
    # conv13 (10x10) is the second source.
    src = b.shape
    b.block("head13").detect_head(6, classes, name="head_conv13")
    b.set_shape(src)

    # SSD extra feature layers, each followed by its prediction head.
    extra_cfg = [(256, 512), (128, 256), (128, 256), (64, 128)]
    for i, (mid_c, out_c) in enumerate(extra_cfg):
        b.block(f"extra{i + 1}")
        b.pwconv(mid_c)
        b.conv(out_c, 3, stride=2)
        src = b.shape
        b.detect_head(6, classes, name=f"head_extra{i + 1}")
        b.set_shape(src)
    return b.build()


# ----------------------------------------------------------------------
# YOLO V3 (416x416, Darknet-53 backbone)
# ----------------------------------------------------------------------
def _dark_residual(b: NetBuilder, channels: int) -> None:
    def body(nb: NetBuilder) -> None:
        nb.pwconv(channels // 2, act=LEAKY)
        nb.conv(channels, 3, act=LEAKY)

    b.residual(body, act=Activation.NONE)


def _dark_stage(b: NetBuilder, out_c: int, n_res: int, stage: int) -> None:
    b.block(f"dark{stage}_down").conv(out_c, 3, stride=2, act=LEAKY)
    for i in range(n_res):
        b.block(f"dark{stage}_res{i}")
        _dark_residual(b, out_c)


def _yolo_neck(b: NetBuilder, channels: int, name: str) -> None:
    """The 5-conv block preceding each YOLO detection head."""
    b.pwconv(channels, act=LEAKY)
    b.conv(channels * 2, 3, act=LEAKY)
    b.pwconv(channels, act=LEAKY)
    b.conv(channels * 2, 3, act=LEAKY)
    b.pwconv(channels, act=LEAKY, name=name)


def yolo_v3() -> ModelSpec:
    """YOLOv3 (Redmon & Farhadi, 2018): the heaviest model in the pool."""
    classes = 80
    b = NetBuilder("yolo_v3", (3, 416, 416))
    b.block("stem").conv(32, 3, act=LEAKY)
    _dark_stage(b, 64, 1, 1)    # 208
    _dark_stage(b, 128, 2, 2)   # 104
    _dark_stage(b, 256, 8, 3)   # 52  <- routed to head 3
    _dark_stage(b, 512, 8, 4)   # 26  <- routed to head 2
    _dark_stage(b, 1024, 4, 5)  # 13

    # Head 1 at 13x13.
    b.block("neck13")
    _yolo_neck(b, 512, "neck13_out")
    neck13 = b.shape
    b.block("head13").conv(1024, 3, act=LEAKY).detect_head(3, classes,
                                                           kernel=1,
                                                           name="yolo13")
    # Head 2 at 26x26: upsample neck13 output and concat with dark4 output.
    b.set_shape(neck13)
    b.block("neck26")
    b.pwconv(256, act=LEAKY).upsample(2)
    b.concat_with(512, name="route26")  # skip from dark4 (512ch @ 26x26)
    _yolo_neck(b, 256, "neck26_out")
    neck26 = b.shape
    b.block("head26").conv(512, 3, act=LEAKY).detect_head(3, classes,
                                                          kernel=1,
                                                          name="yolo26")
    # Head 3 at 52x52.
    b.set_shape(neck26)
    b.block("neck52")
    b.pwconv(128, act=LEAKY).upsample(2)
    b.concat_with(256, name="route52")  # skip from dark3 (256ch @ 52x52)
    _yolo_neck(b, 128, "neck52_out")
    b.block("head52").conv(256, 3, act=LEAKY).detect_head(3, classes,
                                                          kernel=1,
                                                          name="yolo52")
    return b.build()
