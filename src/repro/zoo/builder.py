"""Declarative network builder used by the model zoo.

:class:`NetBuilder` tracks the current feature-map shape and emits
:class:`~repro.zoo.layers.LayerSpec` records.  Branching topologies
(inception cells, residual units, fire modules) are supported through
:meth:`branches` / :meth:`residual`: each branch is built from a fork of the
current shape and the join (concat or add) is emitted as its own layer.  The
layer list is a valid sequential execution order, which is what the hardware
model and the Eq. 1 vectorisation need.
"""

from __future__ import annotations

from typing import Callable

from .layers import Activation, BlockSpec, LayerSpec, LayerType, ModelSpec

__all__ = ["NetBuilder"]

Shape = tuple[int, int, int]  # (channels, height, width)


def _conv_out(size: int, kernel: int, stride: int, pad: int) -> int:
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size: in={size} k={kernel} s={stride} p={pad}"
        )
    return out


def _same_pad(kernel: int) -> int:
    return (kernel - 1) // 2


class NetBuilder:
    """Incremental builder for a :class:`ModelSpec`.

    Parameters
    ----------
    name:
        Model name (registry key).
    input_shape:
        (channels, height, width) of the network input.
    """

    def __init__(self, name: str, input_shape: Shape):
        self.name = name
        self.input_shape = input_shape
        self.shape: Shape = input_shape
        self._blocks: list[BlockSpec] = []
        self._current: list[LayerSpec] | None = None
        self._block_name = ""
        self._index = 0

    # ------------------------------------------------------------------
    # Block management
    # ------------------------------------------------------------------
    def block(self, name: str) -> "NetBuilder":
        """Start a new partitionable block; closes the previous one."""
        self._flush()
        self._current = []
        self._block_name = name
        return self

    def _flush(self) -> None:
        if self._current is not None:
            if not self._current:
                raise ValueError(f"block {self._block_name!r} has no layers")
            self._blocks.append(BlockSpec(self._block_name, self._current))
            self._current = None

    def build(self) -> ModelSpec:
        """Finalise and return the model."""
        self._flush()
        if not self._blocks:
            raise ValueError("model has no blocks")
        return ModelSpec(self.name, self.input_shape, self._blocks)

    # ------------------------------------------------------------------
    # Layer emission
    # ------------------------------------------------------------------
    def _emit(self, op_type: int, ofm: Shape, weight_shape=(0, 0, 0, 0),
              biases: int = 0, act: int = Activation.NONE,
              pad: tuple[int, int] = (0, 0), stride: tuple[int, int] = (1, 1),
              groups: int = 1, name: str = "", ifm: Shape | None = None) -> LayerSpec:
        if self._current is None:
            raise RuntimeError("call block(...) before adding layers")
        layer = LayerSpec(
            index=self._index, op_type=op_type, ifm=ifm or self.shape, ofm=ofm,
            weight_shape=weight_shape, biases=biases, activation=act,
            pad=pad, stride=stride, groups=groups, name=name,
        )
        self._current.append(layer)
        self._index += 1
        self.shape = ofm
        return layer

    def conv(self, out_c: int, kernel: int | tuple[int, int], stride: int = 1,
             pad: int | None = None, act: int = Activation.RELU,
             bias: bool = True, groups: int = 1, name: str = "") -> "NetBuilder":
        """Standard or grouped convolution ('same' padding when pad is None).

        ``kernel`` may be an int or an (kh, kw) pair — rectangular kernels
        cover the Inception family's factorised 1x7 / 7x1 convolutions.
        """
        c, h, w = self.shape
        if c % groups or out_c % groups:
            raise ValueError(f"channels {c}->{out_c} not divisible by groups={groups}")
        kh, kw = (kernel, kernel) if isinstance(kernel, int) else kernel
        ph = _same_pad(kh) if pad is None else pad
        pw = _same_pad(kw) if pad is None else pad
        oh, ow = _conv_out(h, kh, stride, ph), _conv_out(w, kw, stride, pw)
        op = LayerType.GROUP_CONV if groups > 1 else LayerType.CONV
        self._emit(op, (out_c, oh, ow), (out_c, c // groups, kh, kw),
                   biases=out_c if bias else 0, act=act, pad=(ph, pw),
                   stride=(stride, stride), groups=groups, name=name)
        return self

    def dwconv(self, kernel: int, stride: int = 1, pad: int | None = None,
               act: int = Activation.RELU, name: str = "") -> "NetBuilder":
        """Depthwise convolution (channels preserved)."""
        c, h, w = self.shape
        p = _same_pad(kernel) if pad is None else pad
        oh, ow = _conv_out(h, kernel, stride, p), _conv_out(w, kernel, stride, p)
        self._emit(LayerType.DWCONV, (c, oh, ow), (c, 1, kernel, kernel),
                   biases=c, act=act, pad=(p, p), stride=(stride, stride),
                   groups=c, name=name)
        return self

    def pwconv(self, out_c: int, act: int = Activation.RELU,
               name: str = "") -> "NetBuilder":
        """Pointwise (1x1) convolution."""
        return self.conv(out_c, 1, stride=1, pad=0, act=act, name=name)

    def maxpool(self, kernel: int, stride: int | None = None,
                pad: int = 0, name: str = "") -> "NetBuilder":
        c, h, w = self.shape
        s = stride or kernel
        oh, ow = _conv_out(h, kernel, s, pad), _conv_out(w, kernel, s, pad)
        self._emit(LayerType.MAXPOOL, (c, oh, ow), (0, 0, kernel, kernel),
                   pad=(pad, pad), stride=(s, s), name=name)
        return self

    def avgpool(self, kernel: int, stride: int | None = None,
                pad: int = 0, name: str = "") -> "NetBuilder":
        c, h, w = self.shape
        s = stride or kernel
        oh, ow = _conv_out(h, kernel, s, pad), _conv_out(w, kernel, s, pad)
        self._emit(LayerType.AVGPOOL, (c, oh, ow), (0, 0, kernel, kernel),
                   pad=(pad, pad), stride=(s, s), name=name)
        return self

    def global_pool(self, name: str = "gap") -> "NetBuilder":
        c, _, _ = self.shape
        self._emit(LayerType.GLOBALPOOL, (c, 1, 1), name=name)
        return self

    def fc(self, out_features: int, act: int = Activation.NONE,
           name: str = "") -> "NetBuilder":
        c, h, w = self.shape
        in_features = c * h * w
        self._emit(LayerType.FC, (out_features, 1, 1),
                   (out_features, in_features, 1, 1), biases=out_features,
                   act=act, name=name)
        return self

    def lrn(self, name: str = "lrn") -> "NetBuilder":
        self._emit(LayerType.LRN, self.shape, name=name)
        return self

    def channel_shuffle(self, groups: int, name: str = "shuffle") -> "NetBuilder":
        c, _, _ = self.shape
        if c % groups:
            raise ValueError(f"{c} channels not divisible by {groups} shuffle groups")
        self._emit(LayerType.CHANNEL_SHUFFLE, self.shape, groups=groups, name=name)
        return self

    def upsample(self, factor: int = 2, name: str = "upsample") -> "NetBuilder":
        c, h, w = self.shape
        self._emit(LayerType.UPSAMPLE, (c, h * factor, w * factor),
                   stride=(factor, factor), name=name)
        return self

    def detect_head(self, anchors: int, classes: int, kernel: int = 3,
                    name: str = "detect") -> "NetBuilder":
        """SSD/YOLO style prediction head (boxes + class scores per anchor)."""
        c, h, w = self.shape
        out_c = anchors * (classes + 5)
        p = _same_pad(kernel)
        self._emit(LayerType.DETECT_HEAD, (out_c, h, w),
                   (out_c, c, kernel, kernel), biases=out_c,
                   act=Activation.SIGMOID, pad=(p, p), name=name)
        return self

    # ------------------------------------------------------------------
    # Branching topologies
    # ------------------------------------------------------------------
    def branches(self, *branch_fns: Callable[["NetBuilder"], None],
                 name: str = "concat") -> "NetBuilder":
        """Build parallel branches from the current shape; concat channels.

        Each callable receives a forked builder positioned at the current
        shape; branch layers are appended to the current block in branch
        order, followed by a CONCAT join layer.
        """
        base_shape = self.shape
        out_shapes: list[Shape] = []
        for fn in branch_fns:
            self.shape = base_shape
            fn(self)
            out_shapes.append(self.shape)
        heights = {s[1] for s in out_shapes}
        widths = {s[2] for s in out_shapes}
        if len(heights) != 1 or len(widths) != 1:
            raise ValueError(f"branch spatial shapes differ: {out_shapes}")
        total_c = sum(s[0] for s in out_shapes)
        ofm = (total_c, out_shapes[0][1], out_shapes[0][2])
        self._emit(LayerType.CONCAT, ofm, ifm=base_shape, name=name)
        return self

    def concat_with(self, extra_channels: int, name: str = "route") -> "NetBuilder":
        """Concatenate an earlier feature map (YOLO route / skip connection).

        The earlier tensor is identified only by its channel count; spatial
        dims must match the current shape (guaranteed by upsampling in YOLO).
        """
        c, h, w = self.shape
        self._emit(LayerType.CONCAT, (c + extra_channels, h, w), name=name)
        return self

    def set_shape(self, shape: Shape) -> "NetBuilder":
        """Rewind the tracked shape to an earlier tensor (multi-scale heads).

        Used by SSD/YOLO definitions where prediction heads hang off interior
        feature maps: emit the head, then restore the trunk shape.
        """
        self.shape = shape
        return self

    def residual(self, body_fn: Callable[["NetBuilder"], None],
                 projection: Callable[["NetBuilder"], None] | None = None,
                 act: int = Activation.RELU, name: str = "add") -> "NetBuilder":
        """Residual unit: body branch + identity (or projection) shortcut."""
        base_shape = self.shape
        body_fn(self)
        body_shape = self.shape
        if projection is not None:
            self.shape = base_shape
            projection(self)
            if self.shape != body_shape:
                raise ValueError(
                    f"projection shape {self.shape} != body shape {body_shape}"
                )
        elif base_shape != body_shape:
            raise ValueError(
                f"identity shortcut needs matching shapes: {base_shape} vs {body_shape}"
            )
        self._emit(LayerType.ADD, body_shape, ifm=body_shape, act=act, name=name)
        return self
