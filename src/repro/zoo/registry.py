"""Model registry: the paper's 23-DNN training pool plus Fig. 8's extra model.

``MODEL_POOL`` is exactly the pool of Sec. V used to build the estimator's
training workloads.  ``get_model`` memoises builds — model specs are
immutable in practice, so sharing one instance per name is safe and keeps
workload generation fast.
"""

from __future__ import annotations

import functools
from typing import Callable

from .layers import ModelSpec
from .models import classic, densenet, detection, inception, mobile, resnet

__all__ = ["MODEL_POOL", "ALL_MODELS", "get_model", "list_models", "pool_models"]

_BUILDERS: dict[str, Callable[[], ModelSpec]] = {
    "alexnet": classic.alexnet,
    "densenet121": densenet.densenet121,
    "densenet169": densenet.densenet169,
    "efficientnet_b0": mobile.efficientnet_b0,
    "efficientnet_b1": mobile.efficientnet_b1,
    "efficientnet_b2": mobile.efficientnet_b2,
    "googlenet": inception.googlenet,
    "inception_resnet_v2": inception.inception_resnet_v2,
    "inception_v3": inception.inception_v3,
    "inception_v4": inception.inception_v4,
    "mobilenet": mobile.mobilenet,
    "mobilenet_v2": mobile.mobilenet_v2,
    "resnet12": resnet.resnet12,
    "resnet50": resnet.resnet50,
    "resnet50_v2": resnet.resnet50_v2,
    "resnext50": resnet.resnext50,
    "shufflenet": mobile.shufflenet,
    "squeezenet": mobile.squeezenet,
    "squeezenet_v2": mobile.squeezenet_v2,
    "ssd_mobilenet": detection.ssd_mobilenet,
    "yolo_v3": detection.yolo_v3,
    "vgg16": classic.vgg16,
    "vgg19": classic.vgg19,
    # Not in the training pool; used by the paper's Fig. 8 dynamic scenario.
    "inception_resnet_v1": inception.inception_resnet_v1,
}

#: The paper's 23-model estimator-training pool (Sec. V).
MODEL_POOL: tuple[str, ...] = tuple(
    name for name in sorted(_BUILDERS) if name != "inception_resnet_v1"
)

#: Every model this zoo can build.
ALL_MODELS: tuple[str, ...] = tuple(sorted(_BUILDERS))


@functools.lru_cache(maxsize=None)
def get_model(name: str) -> ModelSpec:
    """Build (once) and return the named model spec."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(ALL_MODELS)}"
        ) from None
    return builder()


def list_models() -> list[str]:
    """Names of all available models."""
    return list(ALL_MODELS)


def pool_models() -> list[ModelSpec]:
    """Build the full 23-model training pool."""
    return [get_model(name) for name in MODEL_POOL]
