"""DNN model zoo: the paper's 23-model pool, layer IR, and Eq. 1 vectors."""

from .builder import NetBuilder
from .layers import Activation, BlockSpec, LayerSpec, LayerType, ModelSpec
from .registry import ALL_MODELS, MODEL_POOL, get_model, list_models, pool_models
from .vectorize import (
    LAYER_VECTOR_DIM,
    normalize_features,
    vectorize_layer,
    vectorize_model,
)

__all__ = [
    "NetBuilder",
    "Activation",
    "BlockSpec",
    "LayerSpec",
    "LayerType",
    "ModelSpec",
    "ALL_MODELS",
    "MODEL_POOL",
    "get_model",
    "list_models",
    "pool_models",
    "LAYER_VECTOR_DIM",
    "normalize_features",
    "vectorize_layer",
    "vectorize_model",
]
