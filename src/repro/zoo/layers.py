"""Layer and block intermediate representation for the DNN zoo.

The paper characterises every DNN layer with the 22-dimensional vector of
Eq. 1 (layer index, layer type, input/output feature maps, weight tensor,
bias count, activation type, pad/stride).  :class:`LayerSpec` is the typed
version of that record, enriched with derived compute/memory quantities the
hardware model consumes (MACs, element ops, tensor byte sizes).

Models are sequences of :class:`BlockSpec`; blocks are the partitioning
granularity — a mapping assigns one computing component per block, and runs
of equal components merge into pipeline stages (Sec. IV).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "LayerType",
    "Activation",
    "LayerSpec",
    "BlockSpec",
    "ModelSpec",
    "BYTES_PER_ELEMENT",
]

# All tensors are fp32 on the board (ARM Compute Library default path).
BYTES_PER_ELEMENT = 4


class LayerType:
    """Integer codes for the layer-type field of the Eq. 1 vector."""

    CONV = 1
    DWCONV = 2        # depthwise convolution
    GROUP_CONV = 3    # grouped convolution (ResNeXt / ShuffleNet)
    FC = 4
    MAXPOOL = 5
    AVGPOOL = 6
    GLOBALPOOL = 7
    ADD = 8           # residual elementwise add
    CONCAT = 9        # channel concatenation
    CHANNEL_SHUFFLE = 10
    LRN = 11          # local response normalisation (AlexNet/GoogleNet era)
    UPSAMPLE = 12     # nearest-neighbour upsample (YOLO)
    DETECT_HEAD = 13  # SSD/YOLO box+class prediction head

    ALL = (CONV, DWCONV, GROUP_CONV, FC, MAXPOOL, AVGPOOL, GLOBALPOOL, ADD,
           CONCAT, CHANNEL_SHUFFLE, LRN, UPSAMPLE, DETECT_HEAD)

    NAMES = {
        CONV: "conv", DWCONV: "dwconv", GROUP_CONV: "group_conv", FC: "fc",
        MAXPOOL: "maxpool", AVGPOOL: "avgpool", GLOBALPOOL: "globalpool",
        ADD: "add", CONCAT: "concat", CHANNEL_SHUFFLE: "channel_shuffle",
        LRN: "lrn", UPSAMPLE: "upsample", DETECT_HEAD: "detect_head",
    }


class Activation:
    """Integer codes for the activation-type field of the Eq. 1 vector."""

    NONE = 0
    RELU = 1
    RELU6 = 2
    SWISH = 3
    SIGMOID = 4
    LEAKY_RELU = 5
    SOFTMAX = 6

    NAMES = {NONE: "none", RELU: "relu", RELU6: "relu6", SWISH: "swish",
             SIGMOID: "sigmoid", LEAKY_RELU: "leaky_relu", SOFTMAX: "softmax"}


@dataclass
class LayerSpec:
    """One DNN layer in the Eq. 1 representation, plus derived costs.

    Shapes are (channels, height, width) with an implicit minibatch of 1,
    matching the paper's single-image edge-inference setting.
    """

    index: int
    op_type: int
    ifm: tuple[int, int, int]
    ofm: tuple[int, int, int]
    weight_shape: tuple[int, int, int, int]  # (out_c, in_c_per_group, kh, kw)
    biases: int
    activation: int
    pad: tuple[int, int]      # symmetric (pad_h, pad_w)
    stride: tuple[int, int]   # (stride_h, stride_w)
    groups: int = 1
    name: str = ""

    # Derived (filled in __post_init__)
    macs: int = field(init=False, default=0)
    elem_ops: int = field(init=False, default=0)
    params: int = field(init=False, default=0)

    def __post_init__(self):
        oc, ic_g, kh, kw = self.weight_shape
        out_elems = _volume(self.ofm)
        in_elems = _volume(self.ifm)
        if self.op_type in (LayerType.CONV, LayerType.GROUP_CONV):
            self.macs = kh * kw * ic_g * oc * self.ofm[1] * self.ofm[2]
            self.params = oc * ic_g * kh * kw + self.biases
        elif self.op_type == LayerType.DWCONV:
            self.macs = kh * kw * out_elems
            self.params = oc * kh * kw + self.biases
        elif self.op_type == LayerType.FC:
            self.macs = oc * ic_g
            self.params = oc * ic_g + self.biases
        elif self.op_type in (LayerType.MAXPOOL, LayerType.AVGPOOL):
            self.elem_ops = kh * kw * out_elems
        elif self.op_type == LayerType.GLOBALPOOL:
            self.elem_ops = in_elems
        elif self.op_type in (LayerType.ADD,):
            self.elem_ops = out_elems
        elif self.op_type in (LayerType.CONCAT, LayerType.CHANNEL_SHUFFLE,
                              LayerType.UPSAMPLE):
            self.elem_ops = out_elems
        elif self.op_type == LayerType.LRN:
            self.elem_ops = 5 * out_elems
        elif self.op_type == LayerType.DETECT_HEAD:
            # Treated as a light convolutional predictor over the grid.
            self.macs = kh * kw * ic_g * oc * self.ofm[1] * self.ofm[2]
            self.params = oc * ic_g * kh * kw + self.biases
        else:
            raise ValueError(f"unknown layer type {self.op_type}")
        if self.activation != Activation.NONE:
            self.elem_ops += out_elems

    # -- byte sizes ------------------------------------------------------
    @property
    def input_bytes(self) -> int:
        return _volume(self.ifm) * BYTES_PER_ELEMENT

    @property
    def output_bytes(self) -> int:
        return _volume(self.ofm) * BYTES_PER_ELEMENT

    @property
    def weight_bytes(self) -> int:
        return self.params * BYTES_PER_ELEMENT

    @property
    def type_name(self) -> str:
        return LayerType.NAMES[self.op_type]

    def __repr__(self) -> str:
        return (f"LayerSpec({self.index}:{self.type_name} {self.ifm}->{self.ofm} "
                f"macs={self.macs:,})")


def _volume(shape: tuple[int, int, int]) -> int:
    c, h, w = shape
    return c * h * w


@dataclass
class BlockSpec:
    """A partitionable group of layers (the mapping granularity)."""

    name: str
    layers: list[LayerSpec]

    @property
    def macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def elem_ops(self) -> int:
        return sum(l.elem_ops for l in self.layers)

    @property
    def params(self) -> int:
        return sum(l.params for l in self.layers)

    @property
    def input_bytes(self) -> int:
        """Bytes entering the block (first layer's input feature map)."""
        return self.layers[0].input_bytes if self.layers else 0

    @property
    def output_bytes(self) -> int:
        return self.layers[-1].output_bytes if self.layers else 0

    def __repr__(self) -> str:
        return f"BlockSpec({self.name!r}, {len(self.layers)} layers, macs={self.macs:,})"


@dataclass
class ModelSpec:
    """A complete DNN: named, shaped, and partitioned into blocks."""

    name: str
    input_shape: tuple[int, int, int]
    blocks: list[BlockSpec]

    def layers(self) -> list[LayerSpec]:
        """All layers in execution order."""
        return [l for b in self.blocks for l in b.layers]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_layers(self) -> int:
        return sum(len(b.layers) for b in self.blocks)

    @property
    def macs(self) -> int:
        return sum(b.macs for b in self.blocks)

    @property
    def params(self) -> int:
        return sum(b.params for b in self.blocks)

    def __repr__(self) -> str:
        return (f"ModelSpec({self.name!r}, blocks={self.num_blocks}, "
                f"layers={self.num_layers}, macs={self.macs:,})")
