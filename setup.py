"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on this offline image lacks ``wheel`` for PEP 660
editable builds; ``pip install -e . --no-use-pep517 --no-build-isolation``
or ``python setup.py develop`` both work through this shim.
"""

from setuptools import setup

setup()
