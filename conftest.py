"""Repo-level pytest config.

pytest.ini's ``addopts = --benchmark-disable`` puts the benchmark suite in
smoke mode for tier-1 runs.  When pytest-benchmark is not installed that
flag would abort *every* pytest invocation at argument parsing, so the
fallback below registers it as a no-op (the ``benchmarks/`` tests
themselves still require the plugin for their ``benchmark`` fixture; plain
``pytest tests/`` keeps working without it)."""


def pytest_addoption(parser):
    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        parser.addoption("--benchmark-disable", action="store_true",
                         help="no-op fallback: pytest-benchmark not installed")
