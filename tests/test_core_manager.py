"""Unit tests for priorities, predictors, and the RankMap manager."""

import numpy as np
import pytest

from repro.core import (
    OraclePredictor,
    RankMap,
    RankMapConfig,
    dynamic_priorities,
    normalize_priorities,
    static_priorities,
)
from repro.hw import orange_pi_5
from repro.mapping import gpu_only_mapping, uniform_block_mapping
from repro.search import MCTSConfig, RewardConfig
from repro.sim import simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()
FAST_MCTS = MCTSConfig(iterations=25, rollouts_per_leaf=3)


def wl(*names):
    return [get_model(n) for n in names]


class TestPriorities:
    def test_normalize(self):
        p = normalize_priorities([2.0, 6.0])
        np.testing.assert_allclose(p, [0.25, 0.75])

    @pytest.mark.parametrize("bad", [[], [-1.0, 2.0], [0.0, 0.0]])
    def test_normalize_validation(self, bad):
        with pytest.raises(ValueError):
            normalize_priorities(bad)

    def test_static_shape(self):
        p = static_priorities(4, critical_index=2, critical_weight=0.7)
        assert p[2] == pytest.approx(0.7)
        assert p.sum() == pytest.approx(1.0)
        assert np.allclose(np.delete(p, 2), 0.1)

    def test_static_single_dnn(self):
        np.testing.assert_allclose(static_priorities(1, 0), [1.0])

    def test_static_validation(self):
        with pytest.raises(ValueError):
            static_priorities(3, 5)
        with pytest.raises(ValueError):
            static_priorities(3, 0, critical_weight=1.5)

    def test_dynamic_proportional_to_demand(self):
        workload = wl("squeezenet_v2", "vgg16")
        p = dynamic_priorities(workload)
        assert p[1] > p[0]  # VGG-16 is far heavier
        assert p.sum() == pytest.approx(1.0)

    def test_dynamic_fig8_narrative(self):
        """Inception-ResNet-V1 must out-rank AlexNet/SqueezeNet (Fig. 8)."""
        workload = wl("inception_resnet_v1", "alexnet", "squeezenet")
        p = dynamic_priorities(workload)
        assert p.argmax() == 0

    def test_dynamic_empty_rejected(self):
        with pytest.raises(ValueError):
            dynamic_priorities([])


class TestOraclePredictor:
    def test_matches_simulator(self):
        workload = wl("alexnet", "squeezenet_v2")
        oracle = OraclePredictor(PLATFORM)
        mapping = gpu_only_mapping(workload)
        rates = oracle.predict(workload, [mapping])
        expected = simulate(workload, mapping, PLATFORM).rates
        np.testing.assert_allclose(rates[0], expected)

    def test_batch_shape(self):
        workload = wl("alexnet", "squeezenet_v2")
        rng = np.random.default_rng(0)
        mappings = [uniform_block_mapping(workload, 3, rng) for _ in range(4)]
        rates = OraclePredictor(PLATFORM).predict(workload, mappings)
        assert rates.shape == (4, 2)

    def test_board_latency_is_measurement_window(self):
        oracle = OraclePredictor(PLATFORM, measurement_window_s=1.5)
        assert oracle.board_latency_per_eval == 1.5


class TestRankMapConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            RankMapConfig(mode="hybrid")

    def test_resolved_reward_dynamic_weights_raw_rates(self):
        """Dynamic mode runs the paper's literal Sec. IV-E objective."""
        cfg = RankMapConfig().resolved_reward()
        assert cfg.kind == "weighted"
        assert not cfg.normalize_by_ideal

    def test_resolved_reward_static_weights_potentials(self):
        cfg = RankMapConfig(mode="static").resolved_reward()
        assert cfg.kind == "weighted"
        assert cfg.normalize_by_ideal

    def test_explicit_reward_passthrough(self):
        cfg = RankMapConfig(reward=RewardConfig(kind="weighted"))
        assert cfg.resolved_reward().kind == "weighted"


class TestRankMapManager:
    def _dynamic(self):
        return RankMap(PLATFORM, OraclePredictor(PLATFORM),
                       RankMapConfig(mode="dynamic", mcts=FAST_MCTS))

    def _static(self):
        return RankMap(PLATFORM, OraclePredictor(PLATFORM),
                       RankMapConfig(mode="static", mcts=FAST_MCTS))

    def test_plan_returns_valid_mapping(self):
        workload = wl("alexnet", "squeezenet_v2", "resnet50")
        decision = self._dynamic().plan(workload)
        decision.mapping.validate_against(workload, 3)
        assert decision.decision_seconds > 0

    def test_dynamic_mode_never_starves(self):
        workload = wl("squeezenet_v2", "inception_v4", "resnet50", "vgg16")
        decision = self._dynamic().plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        assert (result.potentials >= 0.02).all()

    def test_static_mode_requires_priorities(self):
        with pytest.raises(ValueError):
            self._static().plan(wl("alexnet"))

    def test_static_mode_boosts_critical_dnn(self):
        workload = wl("squeezenet_v2", "inception_v4", "resnet50", "vgg16")
        manager = RankMap(
            PLATFORM, OraclePredictor(PLATFORM),
            RankMapConfig(mode="static",
                          mcts=MCTSConfig(iterations=70, rollouts_per_leaf=4)),
        )
        p = static_priorities(4, critical_index=1)
        decision = manager.plan(workload, p)
        result = simulate(workload, decision.mapping, PLATFORM)
        base = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        assert result.potentials[1] > 1.5 * base.potentials[1]

    def test_static_priority_length_validated(self):
        with pytest.raises(ValueError):
            self._static().plan(wl("alexnet"), np.array([0.5, 0.5]))

    def test_outperforms_baseline_throughput(self):
        workload = wl("squeezenet_v2", "resnet50", "mobilenet")
        decision = self._dynamic().plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        base = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        assert result.average_throughput > base.average_throughput

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            self._dynamic().plan([])

    def test_stats_and_wall_clock_recorded(self):
        manager = self._dynamic()
        manager.plan(wl("alexnet", "mobilenet"))
        assert manager.last_stats is not None
        assert manager.last_stats.evaluations > 0
        assert manager.last_wall_seconds > 0
        assert manager.last_priorities is not None

    def test_names_reflect_mode(self):
        assert self._static().name == "rankmap_s"
        assert self._dynamic().name == "rankmap_d"
