"""Unit tests for priorities, predictors, and the RankMap manager."""

import numpy as np
import pytest

from repro.core import (
    OraclePredictor,
    RankMap,
    RankMapConfig,
    dynamic_priorities,
    normalize_priorities,
    static_priorities,
)
from repro.core.predictor import RatePredictor
from repro.hw import orange_pi_5
from repro.mapping import gpu_only_mapping, uniform_block_mapping
from repro.search import MCTSConfig, RewardConfig
from repro.search.reward import DISQUALIFIED
from repro.sim import simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()
FAST_MCTS = MCTSConfig(iterations=25, rollouts_per_leaf=3)
TINY_MCTS = MCTSConfig(iterations=6, rollouts_per_leaf=2)


def wl(*names):
    return [get_model(n) for n in names]


class ConstantPredictor(RatePredictor):
    """Always predicts the same rate vector; counts predict() calls."""

    def __init__(self, rates):
        self.rates = np.asarray(rates, dtype=np.float64)
        self.calls = 0

    def predict(self, workload, mappings):
        self.calls += 1
        return np.tile(self.rates, (len(mappings), 1))

    @property
    def board_latency_per_eval(self):
        return 0.01


class InflatingOracle(RatePredictor):
    """Estimator-error stand-in: reports the simulator's rates x ``gain``."""

    def __init__(self, platform, gain=1000.0):
        self.oracle = OraclePredictor(platform)
        self.gain = gain

    def predict(self, workload, mappings):
        return self.oracle.predict(workload, mappings) * self.gain

    @property
    def board_latency_per_eval(self):
        return 0.01


class TestPriorities:
    def test_normalize(self):
        p = normalize_priorities([2.0, 6.0])
        np.testing.assert_allclose(p, [0.25, 0.75])

    @pytest.mark.parametrize("bad", [[], [-1.0, 2.0], [0.0, 0.0]])
    def test_normalize_validation(self, bad):
        with pytest.raises(ValueError):
            normalize_priorities(bad)

    def test_static_shape(self):
        p = static_priorities(4, critical_index=2, critical_weight=0.7)
        assert p[2] == pytest.approx(0.7)
        assert p.sum() == pytest.approx(1.0)
        assert np.allclose(np.delete(p, 2), 0.1)

    def test_static_single_dnn(self):
        np.testing.assert_allclose(static_priorities(1, 0), [1.0])

    def test_static_validation(self):
        with pytest.raises(ValueError):
            static_priorities(3, 5)
        with pytest.raises(ValueError):
            static_priorities(3, 0, critical_weight=1.5)

    def test_dynamic_proportional_to_demand(self):
        workload = wl("squeezenet_v2", "vgg16")
        p = dynamic_priorities(workload)
        assert p[1] > p[0]  # VGG-16 is far heavier
        assert p.sum() == pytest.approx(1.0)

    def test_dynamic_fig8_narrative(self):
        """Inception-ResNet-V1 must out-rank AlexNet/SqueezeNet (Fig. 8)."""
        workload = wl("inception_resnet_v1", "alexnet", "squeezenet")
        p = dynamic_priorities(workload)
        assert p.argmax() == 0

    def test_dynamic_empty_rejected(self):
        with pytest.raises(ValueError):
            dynamic_priorities([])


class TestOraclePredictor:
    def test_matches_simulator(self):
        workload = wl("alexnet", "squeezenet_v2")
        oracle = OraclePredictor(PLATFORM)
        mapping = gpu_only_mapping(workload)
        rates = oracle.predict(workload, [mapping])
        expected = simulate(workload, mapping, PLATFORM).rates
        np.testing.assert_allclose(rates[0], expected)

    def test_batch_shape(self):
        workload = wl("alexnet", "squeezenet_v2")
        rng = np.random.default_rng(0)
        mappings = [uniform_block_mapping(workload, 3, rng) for _ in range(4)]
        rates = OraclePredictor(PLATFORM).predict(workload, mappings)
        assert rates.shape == (4, 2)

    def test_board_latency_is_measurement_window(self):
        oracle = OraclePredictor(PLATFORM, measurement_window_s=1.5)
        assert oracle.board_latency_per_eval == 1.5


class TestRankMapConfig:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            RankMapConfig(mode="hybrid")

    def test_resolved_reward_dynamic_weights_raw_rates(self):
        """Dynamic mode runs the paper's literal Sec. IV-E objective."""
        cfg = RankMapConfig().resolved_reward()
        assert cfg.kind == "weighted"
        assert not cfg.normalize_by_ideal

    def test_resolved_reward_static_weights_potentials(self):
        cfg = RankMapConfig(mode="static").resolved_reward()
        assert cfg.kind == "weighted"
        assert cfg.normalize_by_ideal

    def test_explicit_reward_passthrough(self):
        cfg = RankMapConfig(reward=RewardConfig(kind="weighted"))
        assert cfg.resolved_reward().kind == "weighted"


class TestRankMapManager:
    def _dynamic(self):
        return RankMap(PLATFORM, OraclePredictor(PLATFORM),
                       RankMapConfig(mode="dynamic", mcts=FAST_MCTS))

    def _static(self):
        return RankMap(PLATFORM, OraclePredictor(PLATFORM),
                       RankMapConfig(mode="static", mcts=FAST_MCTS))

    def test_plan_returns_valid_mapping(self):
        workload = wl("alexnet", "squeezenet_v2", "resnet50")
        decision = self._dynamic().plan(workload)
        decision.mapping.validate_against(workload, 3)
        assert decision.decision_seconds > 0

    def test_dynamic_mode_never_starves(self):
        workload = wl("squeezenet_v2", "inception_v4", "resnet50", "vgg16")
        decision = self._dynamic().plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        assert (result.potentials >= 0.02).all()

    def test_static_mode_requires_priorities(self):
        with pytest.raises(ValueError):
            self._static().plan(wl("alexnet"))

    def test_static_mode_boosts_critical_dnn(self):
        workload = wl("squeezenet_v2", "inception_v4", "resnet50", "vgg16")
        manager = RankMap(
            PLATFORM, OraclePredictor(PLATFORM),
            RankMapConfig(mode="static",
                          mcts=MCTSConfig(iterations=70, rollouts_per_leaf=4)),
        )
        p = static_priorities(4, critical_index=1)
        decision = manager.plan(workload, p)
        result = simulate(workload, decision.mapping, PLATFORM)
        base = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        assert result.potentials[1] > 1.5 * base.potentials[1]

    def test_static_priority_length_validated(self):
        with pytest.raises(ValueError):
            self._static().plan(wl("alexnet"), np.array([0.5, 0.5]))

    def test_outperforms_baseline_throughput(self):
        workload = wl("squeezenet_v2", "resnet50", "mobilenet")
        decision = self._dynamic().plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        base = simulate(workload, gpu_only_mapping(workload), PLATFORM)
        assert result.average_throughput > base.average_throughput

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            self._dynamic().plan([])

    def test_stats_and_wall_clock_recorded(self):
        manager = self._dynamic()
        manager.plan(wl("alexnet", "mobilenet"))
        assert manager.last_stats is not None
        assert manager.last_stats.evaluations > 0
        assert manager.last_wall_seconds > 0
        assert manager.last_priorities is not None

    def test_names_reflect_mode(self):
        assert self._static().name == "rankmap_s"
        assert self._dynamic().name == "rankmap_d"

    def test_config_instances_not_shared(self):
        """Defaulted configs must be fresh per manager (no mutable-default
        aliasing between instances)."""
        a = RankMap(PLATFORM, OraclePredictor(PLATFORM))
        b = RankMap(PLATFORM, OraclePredictor(PLATFORM))
        assert a.config is not b.config


class TestThresholdRelaxation:
    """The plan() retry loop when nothing clears the starvation floors."""

    def _manager(self, predictor, threshold, relaxations=2):
        reward = RewardConfig(kind="weighted", mode="absolute",
                              threshold=threshold, normalize_by_ideal=False)
        return RankMap(PLATFORM, predictor,
                       RankMapConfig(mode="dynamic", mcts=TINY_MCTS,
                                     reward=reward,
                                     threshold_relaxations=relaxations))

    def test_relaxation_exhausts_and_returns_best_effort(self):
        """Floors no mapping can clear: every relaxation retry runs, and
        the decision still returns a valid (best-effort) mapping."""
        workload = wl("alexnet", "mobilenet")
        predictor = ConstantPredictor([10.0, 10.0])
        manager = self._manager(predictor, threshold=1e9, relaxations=2)
        decision = manager.plan(workload)
        decision.mapping.validate_against(workload, PLATFORM.num_components)
        assert manager.last_stats.best_reward <= DISQUALIFIED
        # 1 initial search + 2 relaxation retries, each TINY_MCTS budget.
        assert predictor.calls == 3 * TINY_MCTS.iterations

    def test_relaxation_recovers_qualifying_mapping(self):
        """A floor just above the achievable rate qualifies after one
        halving."""
        workload = wl("alexnet", "mobilenet")
        predictor = ConstantPredictor([10.0, 10.0])
        manager = self._manager(predictor, threshold=15.0, relaxations=2)
        decision = manager.plan(workload)
        decision.mapping.validate_against(workload, PLATFORM.num_components)
        assert manager.last_stats.best_reward > DISQUALIFIED
        # Initial search failed (10 <= 15), one retry succeeded (10 > 7.5).
        assert predictor.calls == 2 * TINY_MCTS.iterations

    def test_no_relaxation_when_first_search_qualifies(self):
        workload = wl("alexnet", "mobilenet")
        predictor = ConstantPredictor([10.0, 10.0])
        manager = self._manager(predictor, threshold=5.0)
        manager.plan(workload)
        assert manager.last_stats.best_reward > DISQUALIFIED
        assert predictor.calls == TINY_MCTS.iterations


class TestBoardValidationMarginFallback:
    """_validate_on_board when every candidate *measures* disqualified."""

    def _plan(self, threshold):
        workload = wl("alexnet", "mobilenet")
        reward = RewardConfig(kind="weighted", mode="absolute",
                              threshold=threshold, normalize_by_ideal=False)
        manager = RankMap(
            PLATFORM, InflatingOracle(PLATFORM),
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS, reward=reward,
                          threshold_relaxations=0,
                          board_validation_top_k=4),
        )
        return workload, manager, manager.plan(workload)

    def test_margin_fallback_selects_least_starved_candidate(self):
        # The inflated predictor qualifies candidates that the board
        # measurement (true simulator) cannot: rates sit far below the
        # absolute floor, so validation must fall back to the best-margin
        # candidate instead of trusting the estimator's reward order.
        workload, manager, decision = self._plan(threshold=500.0)
        stats = manager.last_stats
        assert stats.best_reward > DISQUALIFIED  # search believed it passed
        candidates = [m for _, m in stats.top_candidates[:4]]
        measured = [simulate(workload, m, PLATFORM) for m in candidates]
        thresholds = np.full(len(workload), 500.0)
        assert all(
            (r.rates <= thresholds).any() for r in measured
        ), "test setup must make every candidate measure disqualified"
        margins = [float((r.rates / thresholds).min()) for r in measured]
        expected = candidates[int(np.argmax(margins))]
        assert decision.mapping == expected

    def test_validation_keeps_reward_best_when_measurable(self):
        # With an achievable floor the normal path deploys the candidate
        # whose *measured* reward is best.
        workload, manager, decision = self._plan(threshold=0.01)
        stats = manager.last_stats
        candidates = [m for _, m in stats.top_candidates[:4]]
        thresholds = np.full(len(workload), 0.01)
        p = manager.last_priorities
        rewards = []
        for m in candidates:
            rates = simulate(workload, m, PLATFORM).rates
            rewards.append(DISQUALIFIED if (rates <= thresholds).any()
                           else float(rates @ p))
        expected = candidates[int(np.argmax(rewards))]
        assert decision.mapping == expected
