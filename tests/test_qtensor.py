"""Unit tests for Q-tensor assembly."""

import numpy as np
import pytest

from repro.mapping import (
    Mapping,
    build_q_tensor,
    gpu_only_mapping,
    layer_component_vector,
    scatter_layers,
)
from repro.zoo import get_model


class TestLayerComponentVector:
    def test_expands_blocks_to_layers(self):
        m = get_model("alexnet")
        assignment = tuple([1] * m.num_blocks)
        vec = layer_component_vector(m, assignment)
        assert vec.shape == (m.num_layers,)
        assert (vec == 1).all()

    def test_block_boundaries_respected(self):
        m = get_model("alexnet")
        assignment = tuple(
            0 if i < 4 else 2 for i in range(m.num_blocks)
        )
        vec = layer_component_vector(m, assignment)
        first_layers = sum(len(b.layers) for b in m.blocks[:4])
        assert (vec[:first_layers] == 0).all()
        assert (vec[first_layers:] == 2).all()

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            layer_component_vector(get_model("alexnet"), (0, 0))


class TestScatter:
    def test_scatter_places_by_component(self):
        emb = np.arange(6.0).reshape(3, 2)
        comps = np.array([0, 2, 1])
        out = scatter_layers(emb, comps, 3)
        assert out.shape == (3, 6)
        np.testing.assert_array_equal(out[0, 0:2], emb[0])
        np.testing.assert_array_equal(out[1, 4:6], emb[1])
        np.testing.assert_array_equal(out[2, 2:4], emb[2])
        # Everything else is zero.
        assert out.sum() == emb.sum()

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            scatter_layers(np.zeros((3, 2)), np.zeros(4, dtype=int), 3)


class TestBuildQ:
    def _embeddings(self, workload, dim=4):
        return [np.ones((m.num_layers, dim)) for m in workload]

    def test_shape(self):
        wl = [get_model("alexnet"), get_model("squeezenet_v2")]
        q = build_q_tensor(wl, gpu_only_mapping(wl), self._embeddings(wl),
                           num_components=3, max_dnns=5, max_layers=64)
        assert q.shape == (5, 64, 12)

    def test_unused_channels_zero(self):
        wl = [get_model("alexnet")]
        q = build_q_tensor(wl, gpu_only_mapping(wl), self._embeddings(wl),
                           3, max_dnns=5, max_layers=64)
        assert np.abs(q[1:]).max() == 0.0

    def test_component_column_blocks(self):
        wl = [get_model("alexnet")]
        m = Mapping((tuple([2] * wl[0].num_blocks),))
        q = build_q_tensor(wl, m, self._embeddings(wl, dim=4), 3,
                           max_dnns=2, max_layers=32)
        # All mass must be in the third column block.
        assert np.abs(q[0, :, :8]).max() == 0.0
        assert np.abs(q[0, :, 8:]).sum() > 0

    def test_long_model_resampled(self):
        wl = [get_model("densenet169")]  # 256 layers
        q = build_q_tensor(wl, gpu_only_mapping(wl), self._embeddings(wl),
                           3, max_dnns=1, max_layers=64)
        assert q.shape[1] == 64
        # Bucket-averaging preserves total mass approximately.
        assert q.sum() > 0

    def test_short_model_padded(self):
        wl = [get_model("alexnet")]  # 13 layers
        q = build_q_tensor(wl, gpu_only_mapping(wl), self._embeddings(wl),
                           3, max_dnns=1, max_layers=64)
        assert np.abs(q[0, 13:]).max() == 0.0

    def test_too_many_dnns_rejected(self):
        wl = [get_model("alexnet")] * 3
        with pytest.raises(ValueError):
            build_q_tensor(wl, gpu_only_mapping(wl), self._embeddings(wl),
                           3, max_dnns=2, max_layers=16)

    def test_mismatched_embeddings_rejected(self):
        wl = [get_model("alexnet")]
        with pytest.raises(ValueError):
            build_q_tensor(wl, gpu_only_mapping(wl),
                           [np.ones((5, 4))], 3, max_dnns=1, max_layers=16)

    def test_placement_changes_tensor(self):
        wl = [get_model("alexnet")]
        emb = self._embeddings(wl)
        q_gpu = build_q_tensor(wl, gpu_only_mapping(wl), emb, 3, 1, 32)
        q_big = build_q_tensor(
            wl, Mapping((tuple([1] * wl[0].num_blocks),)), emb, 3, 1, 32
        )
        assert not np.allclose(q_gpu, q_big)
