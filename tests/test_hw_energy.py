"""Tests for the power/energy model and the power-aware RankMap extension."""

import numpy as np
import pytest

from repro.core import OraclePredictor, PowerAwareRankMap, RankMap, RankMapConfig
from repro.hw import (
    ComponentPower,
    DvfsState,
    PlatformPower,
    dvfs_ladder,
    energy_report,
    inflated_component_utilisation,
    interference_inflation,
    orange_pi_5,
    orange_pi_5_power,
)
from repro.mapping import (gpu_only_mapping, random_partition_mapping,
                           single_component_mapping)
from repro.search import MCTSConfig
from repro.sim import compute_stage_demands, simulate
from repro.zoo import get_model

PLATFORM = orange_pi_5()
POWER = orange_pi_5_power()
FAST_MCTS = MCTSConfig(iterations=25, rollouts_per_leaf=3)


def wl(*names):
    return [get_model(n) for n in names]


class TestComponentPower:
    def test_watts_monotone_in_utilisation(self):
        cp = ComponentPower("gpu", idle_w=0.3, dynamic_w=4.0)
        samples = [cp.watts(u) for u in (0.0, 0.25, 0.5, 1.0)]
        assert samples == sorted(samples)
        assert samples[0] == pytest.approx(0.3)
        assert samples[-1] == pytest.approx(4.3)

    def test_watts_clips_utilisation(self):
        cp = ComponentPower("gpu", idle_w=0.5, dynamic_w=2.0)
        assert cp.watts(-1.0) == pytest.approx(0.5)
        assert cp.watts(3.0) == pytest.approx(cp.watts(1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ComponentPower("x", idle_w=-0.1, dynamic_w=1.0)
        with pytest.raises(ValueError):
            ComponentPower("x", idle_w=0.1, dynamic_w=-1.0)
        with pytest.raises(ValueError):
            ComponentPower("x", idle_w=0.1, dynamic_w=1.0, util_exponent=0)


class TestPlatformPower:
    def test_preset_matches_platform(self):
        assert POWER.matches(PLATFORM)

    def test_mismatch_detection(self):
        scrambled = PlatformPower(components=(
            ComponentPower("big", 0.3, 4.0),
            ComponentPower("gpu", 0.3, 4.5),
            ComponentPower("little", 0.15, 1.3),
        ))
        assert not scrambled.matches(PLATFORM)
        short = PlatformPower(components=(ComponentPower("gpu", 0.3, 4.0),))
        assert not short.matches(PLATFORM)

    def test_system_watts_includes_overhead(self):
        idle = POWER.system_watts(np.zeros(3))
        expected = POWER.board_overhead_w + sum(c.idle_w
                                                for c in POWER.components)
        assert idle == pytest.approx(expected)

    def test_system_watts_shape_check(self):
        with pytest.raises(ValueError):
            POWER.system_watts(np.zeros(2))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            PlatformPower(components=(ComponentPower("gpu", 0.1, 1.0),
                                      ComponentPower("gpu", 0.1, 1.0)))

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            PlatformPower(components=(ComponentPower("gpu", 0.1, 1.0),),
                          board_overhead_w=-1.0)


class TestJetsonPowerPreset:
    def test_matches_jetson_platform(self):
        from repro.hw import jetson_class, jetson_class_power

        assert jetson_class_power().matches(jetson_class())
        # A Jetson-class module has a much bigger envelope than the
        # Orange Pi at full tilt.
        assert jetson_class_power().system_watts(np.ones(3)) > \
            POWER.system_watts(np.ones(3))

    def test_power_aware_manager_on_jetson(self):
        from repro.hw import jetson_class, jetson_class_power

        platform = jetson_class()
        manager = PowerAwareRankMap(
            platform, OraclePredictor(platform), jetson_class_power(),
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS),
            objective="efficiency",
        )
        workload = wl("alexnet", "squeezenet")
        decision = manager.plan(workload)
        report = manager.measured_energy(workload, decision.mapping)
        assert report.inferences_per_joule > 0


class TestEnergyReport:
    def test_report_basic_accounting(self):
        workload = wl("alexnet", "squeezenet")
        mapping = gpu_only_mapping(workload)
        report = energy_report(workload, mapping, PLATFORM, POWER)
        assert report.system_watts > POWER.board_overhead_w
        assert report.total_throughput == pytest.approx(
            simulate(workload, mapping, PLATFORM).rates.sum(), rel=1e-9)
        assert report.inferences_per_joule > 0
        assert np.all(report.dnn_joules_per_inference > 0)

    def test_gpu_only_mapping_leaves_cpu_clusters_idle(self):
        workload = wl("alexnet")
        report = energy_report(workload, gpu_only_mapping(workload),
                               PLATFORM, POWER)
        # big/little draw exactly their idle watts.
        assert report.component_watts[1] == pytest.approx(
            POWER.components[1].idle_w)
        assert report.component_watts[2] == pytest.approx(
            POWER.components[2].idle_w)
        assert report.component_utilisation[1] == 0.0

    def test_little_mapping_draws_less_than_big(self):
        workload = wl("mobilenet")
        little = energy_report(workload,
                               single_component_mapping(workload, 2),
                               PLATFORM, POWER)
        big = energy_report(workload, single_component_mapping(workload, 1),
                            PLATFORM, POWER)
        assert little.system_watts < big.system_watts

    def test_heavier_dnn_costs_more_joules_per_inference(self):
        workload = wl("squeezenet", "vgg16")
        report = energy_report(workload, gpu_only_mapping(workload),
                               PLATFORM, POWER)
        by_name = dict(zip(report.workload_names,
                           report.dnn_joules_per_inference))
        assert by_name["vgg16"] > by_name["squeezenet"]

    def test_mismatched_power_model_rejected(self):
        workload = wl("alexnet")
        bad = PlatformPower(components=(ComponentPower("gpu", 0.1, 1.0),))
        with pytest.raises(ValueError, match="does not match"):
            energy_report(workload, gpu_only_mapping(workload), PLATFORM, bad)


class TestPowerAwareRankMap:
    def _manager(self, objective="penalty", power_weight=0.5, top_k=0):
        return PowerAwareRankMap(
            PLATFORM, OraclePredictor(PLATFORM), POWER,
            RankMapConfig(mode="dynamic", mcts=FAST_MCTS,
                          board_validation_top_k=top_k),
            objective=objective, power_weight=power_weight,
        )

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="objective"):
            self._manager(objective="carbon")
        with pytest.raises(ValueError):
            self._manager(power_weight=-1.0)
        bad_power = PlatformPower(
            components=(ComponentPower("gpu", 0.1, 1.0),))
        with pytest.raises(ValueError, match="does not match"):
            PowerAwareRankMap(PLATFORM, OraclePredictor(PLATFORM), bad_power)

    def test_plan_returns_valid_mapping(self):
        workload = wl("alexnet", "squeezenet")
        decision = self._manager().plan(workload)
        decision.mapping.validate_against(workload, PLATFORM.num_components)

    def test_no_starvation_with_power_objective(self):
        workload = wl("alexnet", "squeezenet", "resnet50")
        decision = self._manager(power_weight=2.0).plan(workload)
        result = simulate(workload, decision.mapping, PLATFORM)
        assert np.all(result.potentials > 0.02)

    def test_power_weight_trades_throughput_for_watts(self):
        """A strongly power-penalised plan must not draw more watts than
        the power-oblivious plan (same search budget and seed)."""
        workload = wl("alexnet", "squeezenet", "mobilenet")
        plain = RankMap(PLATFORM, OraclePredictor(PLATFORM),
                        RankMapConfig(mode="dynamic", mcts=FAST_MCTS))
        frugal = self._manager(power_weight=10.0)
        plain_watts = energy_report(
            workload, plain.plan(workload).mapping, PLATFORM, POWER
        ).system_watts
        frugal_watts = frugal.measured_energy(
            workload, frugal.plan(workload).mapping).system_watts
        assert frugal_watts <= plain_watts * 1.05

    def test_efficiency_objective_runs(self):
        workload = wl("alexnet", "squeezenet")
        manager = self._manager(objective="efficiency")
        decision = manager.plan(workload)
        report = manager.measured_energy(workload, decision.mapping)
        assert report.inferences_per_joule > 0

    def test_board_validation_uses_measured_power(self):
        workload = wl("alexnet", "squeezenet")
        manager = self._manager(top_k=3)
        decision = manager.plan(workload)
        decision.mapping.validate_against(workload, PLATFORM.num_components)
        # Board validation adds measurement windows to the modeled latency.
        assert decision.decision_seconds > 0

    def test_estimated_watts_matches_measured_at_true_rates(self):
        """Regression (search-vs-board power divergence): the search-side
        estimate now applies the same interference inflation the
        board-side :func:`energy_report` measures with, so at the
        simulator's true rates the two agree exactly — on a *contended*
        mapping, where the old inflation-free estimate diverged."""
        workload = wl("alexnet", "squeezenet", "mobilenet")
        mapping = random_partition_mapping(
            workload, PLATFORM.num_components, np.random.default_rng(3))
        manager = self._manager()
        rates = simulate(workload, mapping, PLATFORM).rates
        estimate = manager.estimated_watts(workload, mapping, rates)
        measured = manager.measured_energy(workload, mapping).system_watts
        assert estimate == pytest.approx(measured, rel=1e-9)

    def test_estimated_utilisation_matches_energy_report(self):
        """The shared inflation helper keeps the search's utilisation
        view and the board report's in lockstep, component by component."""
        workload = wl("alexnet", "squeezenet", "mobilenet")
        mapping = random_partition_mapping(
            workload, PLATFORM.num_components, np.random.default_rng(3))
        manager = self._manager()
        rates = simulate(workload, mapping, PLATFORM).rates
        estimated = manager.estimated_utilisation(workload, mapping, rates)
        report = manager.measured_energy(workload, mapping)
        np.testing.assert_allclose(
            estimated, report.component_raw_utilisation, rtol=1e-9)

    def test_oversubscribed_prediction_estimates_above_one(self):
        """Predicted rates are not feasibility-constrained: the raw
        estimate may exceed 1.0, and estimated_watts must clip it to the
        capacity draw rather than extrapolating past full utilisation."""
        workload = wl("alexnet", "squeezenet")
        mapping = gpu_only_mapping(workload)
        manager = self._manager()
        rates = simulate(workload, mapping, PLATFORM).rates * 5.0
        raw = manager.estimated_utilisation(workload, mapping, rates)
        assert raw.max() > 1.0
        capped = manager.estimated_watts(workload, mapping, rates)
        assert capped == pytest.approx(
            POWER.system_watts(np.clip(raw, 0.0, 1.0)))


class TestInterferenceHelpers:
    def test_inflation_matches_context_counts(self):
        workload = wl("alexnet", "squeezenet")
        demands = compute_stage_demands(workload, gpu_only_mapping(workload),
                                        PLATFORM)
        inflation = interference_inflation(PLATFORM, demands)
        # Two DNNs share the GPU; the CPU clusters host nothing.
        assert inflation[0] == pytest.approx(
            PLATFORM.component(0).interference_factor(2))
        assert inflation[1] == 1.0 and inflation[2] == 1.0

    def test_inflated_utilisation_sums_demand(self):
        workload = wl("alexnet")
        demands = compute_stage_demands(workload, gpu_only_mapping(workload),
                                        PLATFORM)
        rates = np.array([2.0])
        util = inflated_component_utilisation(demands, rates, PLATFORM)
        expected = 2.0 * sum(d.seconds_per_inference for d in demands)
        # A single context draws no interference penalty.
        assert util[0] == pytest.approx(expected)
        assert util[1] == 0.0 and util[2] == 0.0


class TestEnergyReportRawUtilisation:
    def test_raw_matches_clipped_when_feasible(self):
        workload = wl("alexnet", "squeezenet")
        report = energy_report(workload, gpu_only_mapping(workload),
                               PLATFORM, POWER)
        np.testing.assert_allclose(
            np.clip(report.component_raw_utilisation, 0.0, 1.0),
            report.component_utilisation)

    def test_priced_utilisation_never_exceeds_one(self):
        workload = wl("alexnet", "squeezenet", "resnet50", "vgg16")
        mapping = gpu_only_mapping(workload)
        report = energy_report(workload, mapping, PLATFORM, POWER)
        assert np.all(report.component_utilisation <= 1.0 + 1e-9)
        assert np.all(report.component_raw_utilisation
                      >= report.component_utilisation - 1e-12)


class TestInferencesPerJoule:
    def _report(self, throughput, watts):
        from repro.hw.energy import EnergyReport

        return EnergyReport(
            component_names=("gpu",),
            component_utilisation=np.zeros(1),
            component_raw_utilisation=np.zeros(1),
            component_watts=np.zeros(1),
            system_watts=watts,
            workload_names=("x",),
            rates=np.array([throughput]),
            dnn_joules_per_inference=np.zeros(1))

    def test_zero_throughput_is_zero_not_nan(self):
        assert self._report(0.0, 5.0).inferences_per_joule == 0.0

    def test_degenerate_watts_guarded(self):
        """Regression: watts <= 0 used to return inf — a starved power
        model must report zero efficiency, not infinite."""
        assert self._report(10.0, 0.0).inferences_per_joule == 0.0
        assert self._report(0.0, 0.0).inferences_per_joule == 0.0

    def test_normal_case_is_ratio(self):
        assert self._report(10.0, 5.0).inferences_per_joule \
            == pytest.approx(2.0)


class TestDvfs:
    def test_state_validation(self):
        with pytest.raises(ValueError, match="speed_multiplier"):
            DvfsState(speed_multiplier=0.0, power=POWER)
        with pytest.raises(ValueError, match="speed_multiplier"):
            DvfsState(speed_multiplier=1.2, power=POWER)

    def test_node_watts_monotone_in_occupancy(self):
        state = DvfsState(speed_multiplier=1.0, power=POWER)
        draws = [state.node_watts(u) for u in (0.0, 0.3, 0.7, 1.0)]
        assert draws == sorted(draws)
        assert draws[0] > 0.0        # idle + board overhead, not zero

    def test_ladder_validation(self):
        with pytest.raises(ValueError, match="start"):
            dvfs_ladder(POWER, (0.9, 0.5))
        with pytest.raises(ValueError, match="decrease"):
            dvfs_ladder(POWER, (1.0, 0.8, 0.8))
        with pytest.raises(ValueError):
            dvfs_ladder(POWER, ())

    def test_ladder_scales_dynamic_cubically(self):
        """Throttling follows the DVFS rule of thumb: dynamic power
        drops with the cube of the clock, idle linearly, the board
        overhead not at all."""
        ladder = dvfs_ladder(POWER, (1.0, 0.5))
        nominal, throttled = ladder
        assert nominal.power == POWER
        for base, scaled in zip(POWER.components,
                                throttled.power.components):
            assert scaled.dynamic_w == pytest.approx(base.dynamic_w * 0.125)
            assert scaled.idle_w == pytest.approx(base.idle_w * 0.5)
            assert scaled.util_exponent == base.util_exponent
        assert throttled.power.board_overhead_w \
            == pytest.approx(POWER.board_overhead_w)

    def test_throttled_state_draws_less(self):
        full = DvfsState(speed_multiplier=1.0, power=POWER)
        ladder = dvfs_ladder(POWER, (1.0, 0.6))
        for occupancy in (0.0, 0.5, 1.0):
            assert ladder[1].node_watts(occupancy) \
                < full.node_watts(occupancy)
