"""Unit tests for ASCII rendering utilities."""

import numpy as np

from repro.utils import render_bars, render_histogram, render_table, to_csv


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(["name", "value"], [["a", 1.5], ["bb", 22.125]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.500" in out
        assert "22.125" in out

    def test_empty_rows(self):
        out = render_table(["x"], [])
        assert "x" in out

    def test_numpy_floats_formatted(self):
        out = render_table(["v"], [[np.float64(0.123456)]])
        assert "0.123" in out


class TestRenderBars:
    def test_bar_lengths_proportional(self):
        out = render_bars(["a", "b"], [1.0, 2.0], width=10)
        line_a, line_b = out.splitlines()
        assert line_b.count("#") == 10
        assert line_a.count("#") == 5

    def test_zero_values(self):
        out = render_bars(["a"], [0.0])
        assert "0.000" in out

    def test_unit_suffix(self):
        out = render_bars(["a"], [3.0], unit=" inf/s")
        assert "3.000 inf/s" in out


class TestRenderHistogram:
    def test_counts_sum(self):
        values = np.arange(100.0)
        out = render_histogram(values, bins=5)
        counts = [int(line.split("|")[0].split()[-1])
                  for line in out.splitlines()]
        assert sum(counts) == 100

    def test_fixed_range(self):
        out = render_histogram([0.5], bins=2, value_range=(0.0, 1.0))
        assert "[  0.00,  0.50)" in out


class TestToCsv:
    def test_roundtrip_shape(self):
        csv = to_csv(["a", "b"], [[1, 2.5], ["x", 3]])
        lines = csv.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "x,3"

    def test_trailing_newline(self):
        assert to_csv(["a"], [[1]]).endswith("\n")
