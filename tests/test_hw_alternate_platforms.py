"""Tests for the alternate (Jetson-class) platform preset: the manager
stack must generalise beyond the paper's board."""

import numpy as np
import pytest

from repro.core import OraclePredictor, RankMap, RankMapConfig
from repro.hw import jetson_class, orange_pi_5, solo_throughput
from repro.mapping import gpu_only_mapping
from repro.search import MCTSConfig, RewardConfig
from repro.sim import simulate
from repro.zoo import get_model

JETSON = jetson_class()
ORANGE = orange_pi_5()


class TestJetsonPreset:
    def test_structure(self):
        assert JETSON.num_components == 3
        assert JETSON.gpu.kind == "gpu"

    def test_gpu_much_faster_than_orange_pi(self):
        for name in ("resnet50", "vgg16", "inception_v4"):
            model = get_model(name)
            assert (solo_throughput(model, JETSON.gpu)
                    > 2.0 * solo_throughput(model, ORANGE.gpu)), name

    def test_gpu_dominates_cpu_groups_harder(self):
        """CUDA-class GPU: the GPU/CPU gap exceeds the Mali board's."""
        model = get_model("resnet50")

        def gap(platform):
            return (solo_throughput(model, platform.components[0])
                    / solo_throughput(model, platform.components[1]))

        assert gap(JETSON) > gap(ORANGE)

    def test_cpu_groups_nearly_symmetric(self):
        model = get_model("mobilenet_v2")
        a = solo_throughput(model, JETSON.components[1])
        b = solo_throughput(model, JETSON.components[2])
        assert 0.7 < b / a < 1.0

    def test_simulator_runs_on_jetson(self):
        workload = [get_model(n) for n in ("squeezenet_v2", "resnet50")]
        result = simulate(workload, gpu_only_mapping(workload), JETSON)
        assert (result.rates > 0).all()
        assert result.solution.converged


class TestManagerOnJetson:
    def test_rankmap_plans_without_starvation(self):
        workload = [get_model(n) for n in
                    ("squeezenet_v2", "inception_v4", "resnet50", "vgg16")]
        manager = RankMap(
            JETSON, OraclePredictor(JETSON),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=40,
                                          rollouts_per_leaf=4)),
        )
        decision = manager.plan(workload)
        result = simulate(workload, decision.mapping, JETSON)
        assert (result.potentials >= 0.02).all()

    def test_rankmap_beats_baseline_on_jetson_too(self):
        """With the throughput-oriented floor reward, RankMap must match
        or beat all-on-GPU even where the GPU dominates.  (The default
        priority-weighted objective may legitimately trade mean T for the
        heavy DNN's rate on this platform.)"""
        workload = [get_model(n) for n in
                    ("squeezenet_v2", "mobilenet", "resnet50")]
        manager = RankMap(
            JETSON, OraclePredictor(JETSON),
            RankMapConfig(mode="dynamic",
                          reward=RewardConfig(kind="floor"),
                          mcts=MCTSConfig(iterations=40,
                                          rollouts_per_leaf=4)),
        )
        decision = manager.plan(workload)
        ours = simulate(workload, decision.mapping, JETSON)
        base = simulate(workload, gpu_only_mapping(workload), JETSON)
        assert ours.average_throughput >= base.average_throughput

    def test_good_jetson_mappings_lean_on_the_gpu(self):
        """With a dominant GPU, RankMap should keep heavy work there."""
        workload = [get_model("vgg16"), get_model("resnet50")]
        manager = RankMap(
            JETSON, OraclePredictor(JETSON),
            RankMapConfig(mode="dynamic",
                          mcts=MCTSConfig(iterations=40,
                                          rollouts_per_leaf=4)),
        )
        decision = manager.plan(workload)
        flat = [c for a in decision.mapping.assignments for c in a]
        gpu_frac = flat.count(0) / len(flat)
        assert gpu_frac > 0.4
